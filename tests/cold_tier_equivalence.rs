//! The cold-tier residency contract: a budgeted pipeline is **bit-identical**
//! to the never-evicted pipeline at every commit — same retained pairs, same
//! delta stream, same repair tier — at *any* budget and eviction cadence,
//! from evict-everything-every-commit down to evict-nothing, in-memory or
//! spilled to disk.
//!
//! The harness runs two pipelines in lockstep over the same mutation
//! sequence: one under a [`ResidencyPolicy`], one unbudgeted (the reference,
//! whose own batch parity is pinned by `tests/incremental_equivalence.rs`).
//! Property tests drive random mutation streams; scripted tests sweep the
//! full pruning × scheme grid and the shard counts.

use blast_core::weighting::ChiSquaredWeigher;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::{EdgeWeigher, WeightingScheme};
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning, ResidencyPolicy};
use proptest::prelude::*;

const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

/// One generated mutation: kind (insert/update/delete), a target selector
/// for update/delete, and the token indices of the new value.
type Op = (u8, u8, Vec<u8>);

fn value_of(tokens: &[u8]) -> String {
    tokens
        .iter()
        .map(|&t| VOCAB[t as usize % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

fn all_prunings() -> Vec<IncrementalPruning> {
    let mut v: Vec<IncrementalPruning> = PruningAlgorithm::ALL
        .iter()
        .map(|&a| IncrementalPruning::Traditional(a))
        .collect();
    v.push(IncrementalPruning::blast());
    v
}

/// The budget/cadence extremes the sweep covers. Budget 0 + idle 0 demotes
/// every evictable row after every commit (so every later read crosses the
/// cold tier); `usize::MAX` never demotes anything (the policy machinery
/// runs but the cold tier stays empty); the small budget lands in between,
/// with rows oscillating across the boundary.
fn policies() -> Vec<ResidencyPolicy> {
    vec![
        ResidencyPolicy {
            budget_bytes: 0,
            idle_commits: 0,
            spill: false,
        },
        ResidencyPolicy {
            budget_bytes: 0,
            idle_commits: 0,
            spill: true,
        },
        ResidencyPolicy {
            budget_bytes: 2048,
            idle_commits: 1,
            spill: false,
        },
        ResidencyPolicy {
            budget_bytes: usize::MAX,
            idle_commits: 8,
            spill: false,
        },
    ]
}

/// Applies `ops` to a budgeted pipeline and an unbudgeted reference in
/// lockstep, committing every `commit_every` mutations, and asserts at
/// every commit that the retained set, the delta stream and the repair
/// tier are identical. Returns the budgeted pipeline's final cold stats
/// so callers can assert the cold tier was actually exercised.
#[allow(clippy::too_many_arguments)]
fn check_budget_equivalence(
    ops: &[Op],
    commit_every: usize,
    weigher: impl EdgeWeigher + Send + Clone + 'static,
    pruning: IncrementalPruning,
    cleaning: CleaningConfig,
    policy: ResidencyPolicy,
    shards: usize,
    label: &str,
) -> blast_graph::ColdStats {
    let mut budgeted = IncrementalPipeline::dirty(weigher.clone(), pruning, cleaning.clone())
        .with_residency(policy)
        .with_shards(shards);
    let mut reference = IncrementalPipeline::dirty(weigher, pruning, cleaning).with_shards(shards);
    let mut ids: Vec<ProfileId> = Vec::new();
    let mut since = 0usize;

    let commit_and_check =
        |budgeted: &mut IncrementalPipeline, reference: &mut IncrementalPipeline, step: usize| {
            let ob = budgeted.commit();
            let or = reference.commit();
            assert_eq!(
                ob.delta.added, or.delta.added,
                "{label}: added pairs diverged at step {step}"
            );
            assert_eq!(
                ob.delta.retracted, or.delta.retracted,
                "{label}: retracted pairs diverged at step {step}"
            );
            assert_eq!(
                ob.stats.tier, or.stats.tier,
                "{label}: repair tier diverged at step {step} — eviction must never \
                 change which ladder rung a commit lands on"
            );
            assert_eq!(
                budgeted.retained().pairs(),
                reference.retained().pairs(),
                "{label}: retained set diverged at step {step}"
            );
        };

    for (step, (kind, target, tokens)) in ops.iter().enumerate() {
        let value = value_of(tokens);
        let live: Vec<ProfileId> = ids
            .iter()
            .copied()
            .filter(|&id| budgeted.store().is_live(id))
            .collect();
        match kind % 3 {
            1 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                budgeted.update(id, [("text", value.as_str())]);
                reference.update(id, [("text", value.as_str())]);
            }
            2 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                budgeted.delete(id);
                reference.delete(id);
            }
            _ => {
                let ext = format!("p{}", ids.len());
                let id = budgeted.insert(SourceId(0), &ext, [("text", value.as_str())]);
                let rid = reference.insert(SourceId(0), &ext, [("text", value.as_str())]);
                assert_eq!(id, rid, "{label}: id assignment diverged");
                ids.push(id);
            }
        }
        since += 1;
        if since >= commit_every {
            since = 0;
            commit_and_check(&mut budgeted, &mut reference, step);
        }
    }
    if budgeted.has_pending() {
        commit_and_check(&mut budgeted, &mut reference, ops.len());
    }
    // Belt and braces: the budgeted pipeline also matches its own
    // from-scratch batch run (the reference's parity is pinned elsewhere).
    assert_eq!(
        budgeted.retained().pairs(),
        budgeted.batch_retained().pairs(),
        "{label}: budgeted pipeline diverged from batch"
    );
    budgeted.cold_stats()
}

/// A scripted sequence exercising insert, co-occurrence growth, update and
/// delete (the same shape the batch-equivalence grid uses).
fn scripted_ops() -> Vec<Op> {
    vec![
        (0, 0, vec![0, 1, 2]),    // insert p0: alpha beta gamma
        (0, 0, vec![0, 1, 3]),    // insert p1: alpha beta delta
        (0, 0, vec![2, 3, 4]),    // insert p2: gamma delta epsilon
        (0, 0, vec![0, 1, 2, 3]), // insert p3: alpha beta gamma delta
        (1, 1, vec![5, 6]),       // update p1: zeta eta (leaves the community)
        (0, 0, vec![5, 6, 7]),    // insert p4: zeta eta theta
        (2, 0, vec![0]),          // delete p0
        (0, 0, vec![0, 2, 8]),    // insert p5: alpha gamma iota
        (1, 2, vec![0, 1]),       // update some live profile
        (2, 1, vec![0]),          // delete another
        (0, 0, vec![1, 2, 9]),    // insert p6: beta gamma kappa
    ]
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..6, 0u8..16, proptest::collection::vec(0u8..10, 1..5)),
        3..12,
    )
}

/// The acceptance grid under the adversarial evict-everything policy: all
/// 6 traditional prunings + BLAST's own, all 5 traditional schemes + χ²,
/// cleaning on and off.
#[test]
fn scripted_grid_under_evict_everything() {
    let ops = scripted_ops();
    let policy = ResidencyPolicy {
        budget_bytes: 0,
        idle_commits: 0,
        spill: false,
    };
    for cleaning in [CleaningConfig::none(), CleaningConfig::default()] {
        for pruning in all_prunings() {
            for scheme in WeightingScheme::ALL {
                let stats = check_budget_equivalence(
                    &ops,
                    1,
                    scheme,
                    pruning,
                    cleaning.clone(),
                    policy,
                    1,
                    &format!("grid {}/{}", scheme.name(), pruning.label()),
                );
                assert!(
                    stats.evictions > 0,
                    "{}/{}: the evict-everything policy never evicted",
                    scheme.name(),
                    pruning.label()
                );
            }
            let stats = check_budget_equivalence(
                &ops,
                1,
                ChiSquaredWeigher::without_entropy(),
                pruning,
                cleaning.clone(),
                policy,
                1,
                &format!("grid chi2/{}", pruning.label()),
            );
            assert!(stats.evictions > 0);
        }
    }
}

/// The full budget/cadence/spill sweep on one weight- and one node-centric
/// pruning, at commit cadences 1 and 4.
#[test]
fn scripted_budget_sweep() {
    let ops = scripted_ops();
    for policy in policies() {
        for commit_every in [1usize, 4] {
            for pruning in [
                IncrementalPruning::Traditional(PruningAlgorithm::Wep),
                IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
            ] {
                let stats = check_budget_equivalence(
                    &ops,
                    commit_every,
                    WeightingScheme::Cbs,
                    pruning,
                    CleaningConfig::default(),
                    policy,
                    1,
                    &format!(
                        "sweep {} budget={} idle={} spill={} every={commit_every}",
                        pruning.label(),
                        policy.budget_bytes,
                        policy.idle_commits,
                        policy.spill
                    ),
                );
                if policy.budget_bytes == 0 {
                    assert!(stats.evictions > 0, "zero budget must evict");
                    assert!(stats.rehydrations > 0, "later commits must rehydrate");
                    if policy.spill {
                        assert!(
                            stats.cold_bytes == 0,
                            "spilled frames must not stay in memory"
                        );
                    }
                }
                if policy.budget_bytes == usize::MAX {
                    assert_eq!(
                        stats.evictions, 0,
                        "an unbounded budget with long idle must evict nothing"
                    );
                }
            }
        }
    }
}

/// The sharded commit path under a budget: identical outcomes at 1 and 4
/// owner shards, budgeted and unbudgeted alike.
#[test]
fn sharded_commits_match_under_budget() {
    let ops = scripted_ops();
    let policy = ResidencyPolicy {
        budget_bytes: 0,
        idle_commits: 0,
        spill: false,
    };
    for shards in [1usize, 4] {
        for scheme in [WeightingScheme::Ejs, WeightingScheme::Cbs] {
            check_budget_equivalence(
                &ops,
                1,
                scheme,
                IncrementalPruning::Traditional(PruningAlgorithm::Wep),
                CleaningConfig::default(),
                policy,
                shards,
                &format!("sharded {} shards={shards}", scheme.name()),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random mutation streams under the evict-everything and the partial
    /// budget, against weight-, cardinality- and node-centric prunings.
    #[test]
    fn prop_budgeted_matches_unbudgeted(ops in op_strategy(), commit_every in 1usize..4) {
        for policy in [
            ResidencyPolicy { budget_bytes: 0, idle_commits: 0, spill: false },
            ResidencyPolicy { budget_bytes: 2048, idle_commits: 1, spill: false },
        ] {
            for algorithm in [
                PruningAlgorithm::Wep,
                PruningAlgorithm::Cep,
                PruningAlgorithm::Wnp1,
                PruningAlgorithm::Cnp1,
            ] {
                check_budget_equivalence(
                    &ops,
                    commit_every,
                    WeightingScheme::Cbs,
                    IncrementalPruning::Traditional(algorithm),
                    CleaningConfig::default(),
                    policy,
                    1,
                    &format!("prop cbs/{} budget={}", algorithm.label(), policy.budget_bytes),
                );
            }
        }
    }

    /// Random streams under a spilled zero budget: every cold frame makes a
    /// disk round-trip, and the global-statistic schemes (whose reweigh
    /// sweeps touch *every* row) still match the reference bit for bit.
    #[test]
    fn prop_spilled_global_schemes_match(ops in op_strategy(), commit_every in 1usize..3) {
        let policy = ResidencyPolicy { budget_bytes: 0, idle_commits: 0, spill: true };
        for scheme in [WeightingScheme::Ejs, WeightingScheme::Ecbs] {
            check_budget_equivalence(
                &ops,
                commit_every,
                scheme,
                IncrementalPruning::Traditional(PruningAlgorithm::Wnp2),
                CleaningConfig::default(),
                policy,
                1,
                &format!("prop spilled {}", scheme.name()),
            );
        }
    }
}
