//! Delta-maintained degrees ≡ from-scratch `ensure_degrees`.
//!
//! EJS reads node degrees and the total edge count; since the repair
//! ladder, the incremental pipeline maintains both as exact-integer deltas
//! on the owned [`blast_graph::GraphSnapshot`] (patched from the cached
//! edge adjacency's existence diffs) instead of re-running the full degree
//! pass per commit. This suite pins the maintained values **bit-equal** to
//! a from-scratch [`GraphSnapshot::ensure_degrees`] over the materialised
//! collection after every commit — across random mutation histories
//! (property tests, dirty + clean-clean, cleaning on/off) and the scripted
//! edge cases the diff machinery must not fumble: tombstone deletes and
//! same-commit oscillation (a profile mutated twice inside one
//! micro-batch).

use blast_datamodel::entity::{ProfileId, SourceId};
use blast_graph::context::GraphSnapshot;
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::WeightingScheme;
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};
use proptest::prelude::*;

const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

type Op = (u8, u8, Vec<u8>);

fn value_of(tokens: &[u8]) -> String {
    tokens
        .iter()
        .map(|&t| VOCAB[t as usize % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

/// The maintained degrees/edge count of the pipeline's snapshot must equal
/// a snapshot built from scratch on the materialised collection.
fn assert_degrees_match_batch(p: &IncrementalPipeline, label: &str) {
    let input = p.materialize();
    let blocks = p.batch_blocks(&input);
    let mut batch = GraphSnapshot::build(&blocks);
    batch.ensure_degrees();
    let snap = p.snapshot();
    assert!(
        snap.has_degrees(),
        "{label}: EJS pipeline must maintain degrees"
    );
    assert_eq!(
        snap.total_edges(),
        batch.total_edges(),
        "{label}: total edge count"
    );
    assert_eq!(snap.total_profiles(), batch.total_profiles(), "{label}");
    for u in 0..snap.total_profiles() {
        assert_eq!(
            snap.degree(u),
            batch.degree(u),
            "{label}: degree of node {u}"
        );
    }
}

fn drive(ops: &[Op], commit_every: usize, cleaning: CleaningConfig, label: &str) {
    let mut p = IncrementalPipeline::dirty(
        WeightingScheme::Ejs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        cleaning,
    );
    let mut ids: Vec<ProfileId> = Vec::new();
    let mut since = 0usize;
    for (step, (kind, target, tokens)) in ops.iter().enumerate() {
        let value = value_of(tokens);
        let live: Vec<ProfileId> = ids
            .iter()
            .copied()
            .filter(|&id| p.store().is_live(id))
            .collect();
        match kind % 3 {
            1 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.update(id, [("text", value.as_str())]);
            }
            2 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.delete(id);
            }
            _ => {
                let id = p.insert(
                    SourceId(0),
                    &format!("p{}", ids.len()),
                    [("text", value.as_str())],
                );
                ids.push(id);
            }
        }
        since += 1;
        if since >= commit_every {
            since = 0;
            p.commit();
            assert_degrees_match_batch(&p, &format!("{label} step {step}"));
        }
    }
    if p.has_pending() {
        p.commit();
        assert_degrees_match_batch(&p, &format!("{label} final"));
    }
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..6, 0u8..16, proptest::collection::vec(0u8..10, 1..5)),
        3..14,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random dirty-ER mutation histories, cleaning on and off, micro-batch
    /// sizes 1–3: maintained degrees bit-equal to a from-scratch pass at
    /// every commit.
    #[test]
    fn prop_degrees_track_batch_dirty(ops in op_strategy(), commit_every in 1usize..4) {
        drive(&ops, commit_every, CleaningConfig::default(), "cleaned");
        drive(&ops, commit_every, CleaningConfig::none(), "raw");
    }

    /// Clean-clean streams: inserts land on either side of the fixed
    /// separator; bipartite degree maintenance must agree with batch too.
    #[test]
    fn prop_degrees_track_batch_clean_clean(ops in op_strategy(), commit_every in 1usize..4) {
        const CAPACITY: u32 = 8;
        let mut p = IncrementalPipeline::clean_clean(
            CAPACITY,
            WeightingScheme::Ejs,
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp2),
            CleaningConfig::default(),
        );
        let mut ids: Vec<ProfileId> = Vec::new();
        let mut inserted0 = 0u32;
        let mut since = 0usize;
        for (step, (kind, target, tokens)) in ops.iter().enumerate() {
            let value = value_of(tokens);
            let live: Vec<ProfileId> = ids
                .iter()
                .copied()
                .filter(|&id| p.store().is_live(id))
                .collect();
            match kind % 4 {
                0 | 3 => {
                    let source = if kind % 4 == 0 && inserted0 < CAPACITY {
                        inserted0 += 1;
                        SourceId(0)
                    } else {
                        SourceId(1)
                    };
                    let id = p.insert(
                        source,
                        &format!("s{}p{}", source.0, ids.len()),
                        [("text", value.as_str())],
                    );
                    ids.push(id);
                }
                1 if !live.is_empty() => {
                    let id = live[*target as usize % live.len()];
                    p.update(id, [("text", value.as_str())]);
                }
                2 if !live.is_empty() => {
                    let id = live[*target as usize % live.len()];
                    p.delete(id);
                }
                _ => {}
            }
            since += 1;
            if since >= commit_every {
                since = 0;
                p.commit();
                assert_degrees_match_batch(&p, &format!("clean-clean step {step}"));
            }
        }
        if p.has_pending() {
            p.commit();
            assert_degrees_match_batch(&p, "clean-clean final");
        }
    }
}

/// A tombstone delete must subtract exactly the dead node's edges — its
/// own degree drops to zero and every former neighbour loses one.
#[test]
fn tombstone_delete_subtracts_degrees() {
    let mut p = IncrementalPipeline::dirty(
        WeightingScheme::Ejs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        CleaningConfig::none(),
    );
    let a = p.insert(SourceId(0), "a", [("t", "alpha beta")]);
    let _b = p.insert(SourceId(0), "b", [("t", "alpha beta gamma")]);
    let _c = p.insert(SourceId(0), "c", [("t", "gamma delta")]);
    p.commit();
    assert_degrees_match_batch(&p, "seeded triangle-ish");
    assert_eq!(p.snapshot().degree(a.0), 1);

    p.delete(a);
    p.commit();
    assert_degrees_match_batch(&p, "after tombstone");
    assert_eq!(p.snapshot().degree(a.0), 0, "dead node isolated");
    assert_eq!(p.snapshot().total_edges(), 1, "only (b, c) survives");
}

/// Same-commit oscillation: a profile updated twice (ending where it
/// started) inside one micro-batch, plus an insert+delete pair, must leave
/// the maintained degrees exactly where a from-scratch pass lands.
#[test]
fn same_commit_oscillation_keeps_degrees_exact() {
    let mut p = IncrementalPipeline::dirty(
        WeightingScheme::Ejs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        CleaningConfig::default(),
    );
    let a = p.insert(SourceId(0), "a", [("t", "alpha beta gamma")]);
    let _b = p.insert(SourceId(0), "b", [("t", "alpha beta")]);
    let _c = p.insert(SourceId(0), "c", [("t", "gamma delta")]);
    p.commit();
    assert_degrees_match_batch(&p, "seed");

    // Oscillate a away and back, and churn a transient profile, all in
    // one micro-batch: the commit-level diff must see no net change from
    // the oscillation and exactly the transient's (empty) contribution.
    p.update(a, [("t", "zeta eta")]);
    let d = p.insert(SourceId(0), "d", [("t", "alpha zeta")]);
    p.update(a, [("t", "alpha beta gamma")]);
    p.delete(d);
    p.commit();
    assert_degrees_match_batch(&p, "after oscillation");

    // And the candidate set stayed batch-identical throughout.
    assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
}
