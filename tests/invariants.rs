//! Cross-crate invariants, property-tested on randomly generated inputs.

use blast::blocking::{BlockFiltering, BlockPurging, TokenBlocking};
use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::datamodel::{EntityCollection, ErInput, GroundTruth, ProfileId, SourceId};
use blast::metrics::{evaluate_blocks, evaluate_pairs};
use proptest::prelude::*;

/// Random small clean-clean inputs: profiles with 1–4 attributes drawn from
/// tiny vocabularies so blocks actually form.
fn arb_input() -> impl Strategy<Value = (ErInput, GroundTruth)> {
    let word = prop_oneof![
        Just("alpha"),
        Just("beta"),
        Just("gamma"),
        Just("delta"),
        Just("epsilon"),
        Just("zeta"),
        Just("one"),
        Just("two"),
    ];
    let value = proptest::collection::vec(word, 1..4).prop_map(|ws| ws.join(" "));
    let profile = proptest::collection::vec(value, 1..4);
    let side = proptest::collection::vec(profile, 1..8);
    (
        side.clone(),
        side,
        proptest::collection::vec((0u32..8, 0u32..8), 0..6),
    )
        .prop_map(|(s1, s2, matches)| {
            let attrs = ["name", "info", "place", "misc"];
            let mut d1 = EntityCollection::new(SourceId(0));
            for (i, values) in s1.iter().enumerate() {
                d1.push_pairs(
                    &format!("a{i}"),
                    values
                        .iter()
                        .enumerate()
                        .map(|(j, v)| (attrs[j % 4], v.as_str())),
                );
            }
            let mut d2 = EntityCollection::new(SourceId(1));
            for (i, values) in s2.iter().enumerate() {
                d2.push_pairs(
                    &format!("b{i}"),
                    values
                        .iter()
                        .enumerate()
                        .map(|(j, v)| (attrs[j % 4], v.as_str())),
                );
            }
            let sep = d1.len() as u32;
            let total2 = d2.len() as u32;
            let mut gt = GroundTruth::new();
            for (a, b) in matches {
                if a < sep && b < total2 {
                    gt.insert(ProfileId(a), ProfileId(sep + b));
                }
            }
            (ErInput::clean_clean(d1, d2), gt)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pipeline never panics and always produces valid cross-separator
    /// pairs, whatever the input.
    #[test]
    fn pipeline_robust_on_arbitrary_inputs((input, gt) in arb_input()) {
        let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
        let sep = input.separator();
        for (a, b) in outcome.pairs.iter() {
            prop_assert!(a.0 < sep);
            prop_assert!(b.0 >= sep);
            prop_assert!((b.0 as usize) < input.total_profiles());
        }
        // Metrics are well-defined.
        let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
        prop_assert!((0.0..=1.0).contains(&q.pc));
        prop_assert!((0.0..=1.0).contains(&q.pq));
    }

    /// Purging and filtering never *add* comparisons and never increase PC.
    #[test]
    fn cleaning_is_monotone((input, gt) in arb_input()) {
        let blocks = TokenBlocking::new().build(&input);
        let purged = BlockPurging::new().purge(&blocks);
        let filtered = BlockFiltering::new().filter(&purged);

        prop_assert!(purged.aggregate_cardinality() <= blocks.aggregate_cardinality());
        prop_assert!(filtered.aggregate_cardinality() <= purged.aggregate_cardinality());

        let q0 = evaluate_blocks(&blocks, &gt);
        let q1 = evaluate_blocks(&purged, &gt);
        let q2 = evaluate_blocks(&filtered, &gt);
        prop_assert!(q1.detected <= q0.detected);
        prop_assert!(q2.detected <= q1.detected);
    }

    /// Meta-blocking never retains more comparisons than the blocks imply,
    /// and never any redundant pair.
    #[test]
    fn meta_blocking_shrinks_comparisons((input, _gt) in arb_input()) {
        use blast::graph::{MetaBlocker, PruningAlgorithm, WeightingScheme};
        let blocks = TokenBlocking::new().build(&input);
        let distinct_upper = blocks.aggregate_cardinality();
        for algorithm in PruningAlgorithm::ALL {
            let retained = MetaBlocker::new(WeightingScheme::Cbs, algorithm).run(&blocks);
            prop_assert!(retained.len() as u64 <= distinct_upper);
            // RetainedPairs is sorted+deduped: verify strictly increasing.
            let pairs = retained.pairs();
            for w in pairs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}

/// Deterministic reruns produce identical outputs (the whole stack is
/// seeded and the parallel merges are ordered).
#[test]
fn end_to_end_determinism() {
    use blast::datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
    let spec = clean_clean_preset(CleanCleanPreset::Prd).scaled(0.1);
    let (input, _) = generate_clean_clean(&spec);
    let a = BlastPipeline::new(BlastConfig::default()).run(&input);
    let b = BlastPipeline::new(BlastConfig::default()).run(&input);
    assert_eq!(a.pairs.pairs(), b.pairs.pairs());
    assert_eq!(a.schema.clusters, b.schema.clusters);
}

/// Graph passes return bit-identical results regardless of the worker-thread
/// count (per-node float accumulation is ordered, chunk merges are ordered).
#[test]
fn graph_results_independent_of_thread_count() {
    use blast::core::pruning::BlastPruning;
    use blast::core::weighting::ChiSquaredWeigher;
    use blast::datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
    use blast::graph::GraphSnapshot;

    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.05);
    let (input, _) = generate_clean_clean(&spec);
    let blocks = TokenBlocking::new().build(&input);
    let run = |threads: usize| {
        let ctx = GraphSnapshot::build(&blocks).with_threads(threads);
        BlastPruning::new().prune(&ctx, &ChiSquaredWeigher::without_entropy())
    };
    let single = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(single.pairs(), run(threads).pairs(), "threads = {threads}");
    }
}
