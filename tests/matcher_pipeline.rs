//! Blocking → matching → clustering: the complete ER stack, asserting that
//! BLAST's pruning does not cost matching quality (§4.2.2's claim).

use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast::matcher::{evaluate_matches, resolve_entities, JaccardMatcher};

#[test]
fn matching_on_blast_pairs_equals_matching_on_blocks() {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.05);
    let (input, gt) = generate_clean_clean(&spec);
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    let matcher = JaccardMatcher::new(0.35);

    let on_blocks = matcher.match_blocks(&input, &outcome.blocks);
    let on_pairs = matcher.match_pairs(&input, &outcome.pairs);

    let q_blocks = evaluate_matches(&on_blocks.matches, &gt);
    let q_pairs = evaluate_matches(&on_pairs.matches, &gt);

    // Far fewer comparisons…
    assert!(
        on_pairs.comparisons * 5 < on_blocks.comparisons,
        "{} vs {}",
        on_pairs.comparisons,
        on_blocks.comparisons
    );
    // …at (near-)identical recall: BLAST prunes comparisons the matcher
    // would reject anyway.
    assert!(
        q_pairs.recall >= q_blocks.recall - 0.02,
        "recall {} vs {}",
        q_pairs.recall,
        q_blocks.recall
    );
    // Precision can only improve when superfluous comparisons are gone.
    assert!(q_pairs.precision >= q_blocks.precision - 1e-9);
}

#[test]
fn resolved_entities_cover_matched_pairs() {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.05);
    let (input, _) = generate_clean_clean(&spec);
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    let decision = JaccardMatcher::new(0.35).match_pairs(&input, &outcome.pairs);
    let clusters = resolve_entities(&decision.matches, input.total_profiles());

    let mut owner = vec![usize::MAX; input.total_profiles()];
    for (ci, cluster) in clusters.iter().enumerate() {
        for p in cluster {
            owner[p.index()] = ci;
        }
    }
    for (a, b) in &decision.matches {
        assert_eq!(owner[a.index()], owner[b.index()]);
        assert_ne!(owner[a.index()], usize::MAX);
    }
}

#[test]
fn threshold_monotonicity() {
    let spec = clean_clean_preset(CleanCleanPreset::Prd).scaled(0.1);
    let (input, _) = generate_clean_clean(&spec);
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    let mut last = usize::MAX;
    for threshold in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let decision = JaccardMatcher::new(threshold).match_pairs(&input, &outcome.pairs);
        assert!(
            decision.matches.len() <= last,
            "matches must shrink as the threshold rises"
        );
        last = decision.matches.len();
    }
}
