//! End-to-end observability: the `--trace` JSONL journal, the `--metrics`
//! Prometheus page, the registry-vs-outcome accounting contract, and the
//! process-wide deep instruments.

use blast::datagen::{dirty_preset, generate_dirty, DirtyPreset};
use blast::datamodel::{ErInput, SourceId};
use blast::graph::{PruningAlgorithm, WeightingScheme};
use blast::incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};
use blast::obs::trace::is_valid_json;
use blast::obs::CommitTotals;
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blast-obs-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
    blast_cli::run(&args).unwrap_or_else(|e| panic!("cli failed: {e}"))
}

/// Dirty census rows in the `(external_id, [(attr, value)])` shape the
/// incremental pipeline ingests.
fn census_rows(scale: f64) -> Vec<(String, Vec<(String, String)>)> {
    let spec = dirty_preset(DirtyPreset::Census).scaled(scale);
    let (input, _) = generate_dirty(&spec);
    let ErInput::Dirty(d) = &input else {
        unreachable!()
    };
    d.profiles()
        .iter()
        .map(|p| {
            (
                p.external_id.to_string(),
                p.values
                    .iter()
                    .map(|(a, v)| (d.attribute_name(*a).to_string(), v.to_string()))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn stream_trace_emits_one_valid_event_per_commit() {
    let dir = temp_dir("trace");
    let d = dir.to_str().unwrap();
    run(&[
        "generate",
        "--preset",
        "census",
        "--scale",
        "0.1",
        "--out-dir",
        d,
    ]);
    let trace_path = dir.join("trace.jsonl");
    let prom_path = dir.join("metrics.prom");
    let report = run(&[
        "stream",
        "--input",
        &format!("{d}/data.csv"),
        "--id-column",
        "_id",
        "--batch-size",
        "16",
        "--trace",
        trace_path.to_str().unwrap(),
        "--metrics",
        prom_path.to_str().unwrap(),
    ]);
    let commits = report.lines().filter(|l| l.starts_with("batch ")).count();
    assert!(commits > 1, "expected several commits:\n{report}");

    // One schema-valid JSONL event per commit, in sequence order.
    let journal = fs::read_to_string(&trace_path).unwrap();
    let events: Vec<&str> = journal.lines().collect();
    assert_eq!(events.len(), commits, "one event per commit");
    for (i, line) in events.iter().enumerate() {
        assert!(is_valid_json(line), "event {i} is not valid JSON: {line}");
        assert!(
            line.contains(&format!("\"seq\": {}", i + 1)),
            "seq order: {line}"
        );
        for key in [
            "\"tier\"",
            "\"added\"",
            "\"retained\"",
            "\"dirty_nodes\"",
            "\"retention_flips\"",
            "\"total_secs\"",
            "\"phases\"",
            "\"decision_secs\"",
            "\"live_edges\"",
            "\"resident_bytes\"",
        ] {
            assert!(line.contains(key), "event {i} missing {key}: {line}");
        }
    }

    // The Prometheus page carries the commit series and parses line-wise.
    let prom = fs::read_to_string(&prom_path).unwrap();
    assert!(prom.contains("# TYPE blast_commit_count counter"), "{prom}");
    assert!(
        prom.contains("# TYPE blast_commit_total_secs histogram"),
        "{prom}"
    );
    let count_line = prom
        .lines()
        .find(|l| l.starts_with("blast_commit_count "))
        .expect("commit count sample");
    assert_eq!(count_line, format!("blast_commit_count {commits}"));
    for line in prom.lines().filter(|l| !l.starts_with('#')) {
        let (_, value) = line.rsplit_once(' ').expect("sample line");
        assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn registry_totals_match_hand_accumulated_outcomes() {
    let rows = census_rows(0.05);
    let mut pipeline = IncrementalPipeline::dirty(
        WeightingScheme::Cbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        CleaningConfig::default(),
    );

    let mut commits = 0u64;
    let mut dirty_nodes = 0u64;
    let mut patched_rows = 0u64;
    let mut retention_flips = 0u64;
    let mut threshold_crossers = 0u64;
    let mut pairs_added = 0u64;
    let mut pairs_retracted = 0u64;
    let mut tier_commits = [0u64; 3];
    for chunk in rows.chunks(24) {
        for (id, pairs) in chunk {
            pipeline.insert(
                SourceId(0),
                id,
                pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
            );
        }
        let out = pipeline.commit();
        commits += 1;
        dirty_nodes += out.stats.dirty_nodes as u64;
        patched_rows += out.stats.patched_rows as u64;
        retention_flips += out.stats.retention_flips as u64;
        threshold_crossers += out.stats.threshold_crossers as u64;
        pairs_added += out.delta.added.len() as u64;
        pairs_retracted += out.delta.retracted.len() as u64;
        tier_commits[out.stats.tier.index().min(2)] += 1;
    }

    let totals = CommitTotals::from_snapshot(&pipeline.metrics().snapshot());
    assert_eq!(totals.commits, commits);
    assert_eq!(totals.dirty_nodes, dirty_nodes);
    assert_eq!(totals.patched_rows, patched_rows);
    assert_eq!(totals.retention_flips, retention_flips);
    assert_eq!(totals.threshold_crossers, threshold_crossers);
    assert_eq!(totals.pairs_added, pairs_added);
    assert_eq!(totals.pairs_retracted, pairs_retracted);
    assert_eq!(totals.tier_commits, tier_commits);
    assert_eq!(totals.tier_commits.iter().sum::<u64>(), commits);
    // The phase histograms saw every commit and accrued real time.
    let snap = pipeline.metrics().snapshot();
    let decision = snap.histogram("commit.phase.decision_secs").unwrap();
    assert_eq!(decision.count, commits);
    assert!(totals.phases.total_secs() > 0.0);
}

#[test]
fn deep_instruments_record_into_the_global_registry() {
    // Counters on the process-wide registry are shared across the whole
    // test binary, so the contract is monotone growth, never equality.
    let before = blast::obs::global().snapshot();

    // The work-stealing scheduler instruments itself.
    let sums = blast::datamodel::parallel::parallel_work_steal(
        10_000,
        4,
        256,
        || 0u64,
        |acc, range| {
            *acc += range.len() as u64;
            range.len() as u64
        },
    );
    assert_eq!(sums.iter().sum::<u64>(), 10_000);

    // A streamed pipeline reaches the CSR splice/compaction and treap
    // rebuild instruments.
    let rows = census_rows(0.05);
    let mut pipeline = IncrementalPipeline::dirty(
        WeightingScheme::Cbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        CleaningConfig::default(),
    );
    let mut patched = 0usize;
    for chunk in rows.chunks(24) {
        for (id, pairs) in chunk {
            pipeline.insert(
                SourceId(0),
                id,
                pairs.iter().map(|(a, v)| (a.as_str(), v.as_str())),
            );
        }
        patched += pipeline.commit().stats.patched_rows;
    }

    let after = blast::obs::global().snapshot();
    assert!(after.counter("scheduler.invocations") > before.counter("scheduler.invocations"));
    assert!(after.counter("scheduler.chunks") > before.counter("scheduler.chunks"));
    if patched > 0 {
        assert!(after.counter("csr.splices") >= before.counter("csr.splices") + patched as u64);
    }
    for name in ["treap.bulk_rebuilds", "csr.splices", "csr.compactions"] {
        assert!(
            after.counter(name) >= before.counter(name),
            "{name} must be monotone"
        );
    }
}
