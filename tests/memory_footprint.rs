//! Memory-footprint regression tests at the census preset.
//!
//! The million-profile memory diet (compact u32 ids, interned postings,
//! packed edge accumulators) pins the per-profile resident footprint of a
//! streamed census run. The estimates come from
//! `IncrementalPipeline::footprint()` — capacity-based byte counts per
//! structure — so they are deterministic and immune to allocator noise,
//! unlike RSS. A regression that reintroduces owned strings in postings or
//! fattens the per-edge cache shows up here as a bytes-per-profile blowout.

use blast_datagen::{dirty_preset, generate_dirty, DirtyPreset};
use blast_datamodel::entity::SourceId;
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::WeightingScheme;
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning, ResidencyPolicy};

/// Streams the full census preset (1000 profiles) and returns the pipeline
/// after the final commit.
fn stream_census(pruning: IncrementalPruning) -> (IncrementalPipeline, usize) {
    stream_census_with(pruning, None)
}

fn stream_census_with(
    pruning: IncrementalPruning,
    residency: Option<ResidencyPolicy>,
) -> (IncrementalPipeline, usize) {
    let (input, _) = generate_dirty(&dirty_preset(DirtyPreset::Census));
    let d = input.collection(SourceId(0));
    // Same cleaning shape as the memory phase of `exp_incremental`: bound
    // block sizes at ~64 members so the footprint tracks the structures.
    let cleaning = CleaningConfig {
        purging: true,
        purge_fraction: 64.0 / d.len() as f64,
        filtering: true,
        filter_ratio: 0.8,
    };
    let mut p = IncrementalPipeline::dirty(WeightingScheme::Cbs, pruning, cleaning);
    if let Some(policy) = residency {
        p = p.with_residency(policy);
    }
    let quarter = (d.len() / 4).max(1);
    for (i, profile) in d.profiles().iter().enumerate() {
        p.insert(
            SourceId(0),
            &profile.external_id,
            profile
                .values
                .iter()
                .map(|(a, v)| (d.attribute_name(*a), &**v)),
        );
        if (i + 1) % quarter == 0 || i + 1 == d.len() {
            p.commit();
        }
    }
    let n = d.len();
    (p, n)
}

/// Node-centric census run stays under the bytes-per-profile ceiling.
///
/// Measured ~1.12 KiB/profile after the diet; the ceiling leaves ~40%
/// headroom for incidental capacity growth while still catching a
/// return of per-posting owned strings (estimated +0.5 KiB/profile).
#[test]
fn census_bytes_per_profile_stays_under_ceiling_node_centric() {
    let (p, n) = stream_census(IncrementalPruning::Traditional(PruningAlgorithm::Wnp1));
    let fp = p.footprint();
    let per_profile = fp.total_bytes() as f64 / n as f64;
    assert!(
        per_profile < 1600.0,
        "census WNP1 footprint regressed: {per_profile:.1} B/profile (ceiling 1600)"
    );
    assert!(fp.interned_tokens > 0, "tokens must be interned");
}

/// Edge-centric census run (live edge cache + treap) has its own ceiling:
/// measured ~1.87 KiB/profile with ~6k live edges at 24 packed bytes of
/// accumulator each plus the ordered-weight index.
#[test]
fn census_bytes_per_profile_stays_under_ceiling_edge_centric() {
    let (p, n) = stream_census(IncrementalPruning::Traditional(PruningAlgorithm::Wep));
    let fp = p.footprint();
    let per_profile = fp.total_bytes() as f64 / n as f64;
    assert!(
        per_profile < 2600.0,
        "census WEP footprint regressed: {per_profile:.1} B/profile (ceiling 2600)"
    );
    assert!(fp.live_edges > 0, "WEP must keep a live edge set");
    // Packed accumulator layout: the blocker's bytes per live edge stay
    // bounded (cache entry + treap node + retained view « 160 B).
    let per_edge = fp.blocker_bytes as f64 / fp.live_edges as f64;
    assert!(
        per_edge < 160.0,
        "per-edge cache regressed: {per_edge:.1} B/edge (ceiling 160)"
    );
}

/// The footprint estimate moves with the data: an empty pipeline's
/// structures are a small fraction of the loaded one.
#[test]
fn footprint_grows_from_empty_to_loaded() {
    let empty = IncrementalPipeline::dirty(
        WeightingScheme::Cbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        CleaningConfig::default(),
    )
    .footprint();
    let (p, _) = stream_census(IncrementalPruning::Traditional(PruningAlgorithm::Wnp1));
    let loaded = p.footprint();
    assert!(loaded.total_bytes() > 10 * empty.total_bytes().max(1));
    assert!(loaded.store_bytes > 0);
    assert!(loaded.index_bytes > 0);
    assert!(loaded.snapshot_bytes > 0);
    assert!(loaded.blocker_bytes > 0);
    // An unbudgeted pipeline has no cold tier at all.
    assert_eq!(loaded.cold_bytes, 0);
    assert_eq!(loaded.spilled_bytes, 0);
}

/// The hot/cold split of the footprint: a budgeted census run demotes most
/// evictable bytes out of the hot structures into the cold arena, the two
/// tiers are counted exactly once, and the budgeted hot footprint lands
/// well under the unbudgeted one.
#[test]
fn budgeted_footprint_splits_hot_and_cold_without_double_counting() {
    let pruning = IncrementalPruning::Traditional(PruningAlgorithm::Wnp1);
    let (unbudgeted, n) = stream_census(pruning);
    let base = unbudgeted.footprint();
    let policy = ResidencyPolicy {
        budget_bytes: 0,
        idle_commits: 0,
        spill: false,
    };
    let (budgeted, _) = stream_census_with(pruning, Some(policy));
    let fp = budgeted.footprint();

    // The cold tier exists and holds real bytes…
    assert!(
        fp.cold_bytes > 0,
        "zero budget must leave frames in the cold arena"
    );
    assert_eq!(fp.spilled_bytes, 0, "spill is off for this run");
    // …and the demoted postings really left the hot index. (The snapshot's
    // hot estimate *grows* at this scale: per-slot residency bookkeeping —
    // a cold `FrameRef` and a touch epoch — outweighs the small census
    // membership rows it frees; only at 10⁵–10⁶ profiles do the rows
    // dominate. The index's posting lists are big enough to win already.)
    assert!(
        fp.index_bytes < base.index_bytes,
        "eviction freed no posting bytes: {} B vs unbudgeted {} B",
        fp.index_bytes,
        base.index_bytes
    );
    // No double counting: hot + cold stays within the unbudgeted total
    // plus a modest delta-encoding/arena-bookkeeping allowance.
    assert!(
        fp.total_bytes() <= base.total_bytes() + base.total_bytes() / 4,
        "hot+cold exceeds the unbudgeted footprint: {} vs {}",
        fp.total_bytes(),
        base.total_bytes()
    );
    // The headline ceiling holds with the cold tier counted in.
    let per_profile = fp.total_bytes() as f64 / n as f64;
    assert!(
        per_profile < 1600.0,
        "budgeted census footprint regressed: {per_profile:.1} B/profile"
    );
    // And the run was not a no-op residency-wise.
    let stats = budgeted.cold_stats();
    assert!(stats.evictions > 0 && stats.rehydrations > 0);
}

/// With spill enabled the cold bytes leave the process entirely: the
/// in-memory cold arena stays empty and the spilled ledger carries the
/// frames instead — total_bytes() (a *resident* estimate) excludes them.
#[test]
fn spilled_footprint_moves_cold_bytes_out_of_memory() {
    let pruning = IncrementalPruning::Traditional(PruningAlgorithm::Wnp1);
    let policy = ResidencyPolicy {
        budget_bytes: 0,
        idle_commits: 0,
        spill: true,
    };
    let (p, _) = stream_census_with(pruning, Some(policy));
    let fp = p.footprint();
    assert_eq!(
        fp.cold_bytes, 0,
        "spilled frames must not be memory-resident"
    );
    assert!(
        fp.spilled_bytes > 0,
        "the spill ledger must carry the frames"
    );
}
