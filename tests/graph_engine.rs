//! Equivalence and determinism guarantees of the dense scratch-array graph
//! engine, checked at the pipeline level on realistic datagen collections.
//!
//! * Every pruning algorithm × weighting scheme must retain exactly the
//!   pairs a naive hashmap-reference meta-blocker retains (the pre-engine
//!   semantics): bit-exact weights, same tie-breaking.
//! * Every pruning algorithm must produce identical output at 1, 2 and 8
//!   threads — the work-stealing chunk geometry is thread-independent, so
//!   even floating-point folds cannot drift.

use blast::blocking::{BlockFiltering, BlockPurging, TokenBlocking};
use blast::core::pruning::BlastPruning;
use blast::core::weighting::ChiSquaredWeigher;
use blast::datagen::{clean_clean_preset, dirty_preset, CleanCleanPreset, DirtyPreset};
use blast::datamodel::hash::FastMap;
use blast::datamodel::ProfileId;
use blast::graph::context::EdgeAccum;
use blast::graph::{EdgeWeigher, GraphSnapshot, PruningAlgorithm, WeightingScheme};
use blast_blocking::collection::BlockCollection;

/// Token blocking + cleaning on a small Zipf-skewed dirty collection.
fn dirty_blocks() -> BlockCollection {
    let spec = dirty_preset(DirtyPreset::Cora).scaled(0.05);
    let (input, _) = blast::datagen::generate_dirty(&spec);
    let b = TokenBlocking::new().build(&input);
    BlockFiltering::new().filter(&BlockPurging::new().purge(&b))
}

/// The same for a clean-clean collection.
fn clean_blocks() -> BlockCollection {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.05);
    let (input, _) = blast::datagen::generate_clean_clean(&spec);
    let b = TokenBlocking::new().build(&input);
    BlockFiltering::new().filter(&BlockPurging::new().purge(&b))
}

/// The naive reference adjacency of one node, sorted by neighbour id —
/// exactly what the pre-engine hashmap accumulation produced.
fn naive_adjacency(ctx: &GraphSnapshot, node: u32) -> Vec<(u32, EdgeAccum)> {
    let mut map: FastMap<u32, EdgeAccum> = FastMap::default();
    ctx.accumulate_neighbors(node, &mut map);
    let mut adj: Vec<(u32, EdgeAccum)> = map.into_iter().collect();
    adj.sort_unstable_by_key(|(v, _)| *v);
    adj
}

/// Naive sequential edge enumeration (ascending u then v), weighted.
fn naive_edges(ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> Vec<(u32, u32, f64)> {
    let clean = ctx.is_clean_clean();
    let mut out = Vec::new();
    for u in ctx.edge_owner_range() {
        for (v, acc) in naive_adjacency(ctx, u) {
            if !clean && v <= u {
                continue;
            }
            out.push((u, v, weigher.weight(ctx, u, v, &acc)));
        }
    }
    out
}

/// A naive, sequential re-implementation of all six pruning algorithms on
/// the hashmap reference path, mirroring the reference semantics
/// (thresholds, budgets, tie-breaking).
fn naive_prune(
    ctx: &GraphSnapshot,
    weigher: &dyn EdgeWeigher,
    algorithm: PruningAlgorithm,
) -> Vec<(ProfileId, ProfileId)> {
    let edges = naive_edges(ctx, weigher);
    let mut pairs: Vec<(ProfileId, ProfileId)> = match algorithm {
        PruningAlgorithm::Wep => {
            if edges.is_empty() {
                return Vec::new();
            }
            let theta = edges.iter().map(|&(_, _, w)| w).sum::<f64>() / edges.len() as f64;
            edges
                .iter()
                .filter(|&&(_, _, w)| w >= theta)
                .map(|&(u, v, _)| (ProfileId(u), ProfileId(v)))
                .collect()
        }
        PruningAlgorithm::Cep => {
            let k = (ctx.index().total_assignments() / 2) as usize;
            if k == 0 || edges.is_empty() {
                return Vec::new();
            }
            let mut ranked: Vec<(f64, u32, u32)> =
                edges.iter().map(|&(u, v, w)| (w, u, v)).collect();
            // Weight descending, then ascending (u, v): the deterministic
            // top-K order.
            ranked.sort_by(|a, b| {
                b.0.partial_cmp(&a.0)
                    .unwrap()
                    .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
            });
            ranked.truncate(k);
            ranked
                .into_iter()
                .map(|(_, u, v)| (ProfileId(u), ProfileId(v)))
                .collect()
        }
        PruningAlgorithm::Wnp1 | PruningAlgorithm::Wnp2 => {
            let n = ctx.total_profiles();
            let mut thresholds = vec![f64::INFINITY; n as usize];
            for node in 0..n {
                let adj = naive_adjacency(ctx, node);
                if !adj.is_empty() {
                    let sum: f64 = adj
                        .iter()
                        .map(|&(v, acc)| weigher.weight(ctx, node, v, &acc))
                        .sum();
                    thresholds[node as usize] = sum / adj.len() as f64;
                }
            }
            edges
                .iter()
                .filter(|&&(u, v, w)| {
                    let pu = w >= thresholds[u as usize];
                    let pv = w >= thresholds[v as usize];
                    if algorithm == PruningAlgorithm::Wnp1 {
                        pu || pv
                    } else {
                        pu && pv
                    }
                })
                .map(|&(u, v, _)| (ProfileId(u), ProfileId(v)))
                .collect()
        }
        PruningAlgorithm::Cnp1 | PruningAlgorithm::Cnp2 => {
            let n = ctx.total_profiles();
            let profiles = n.max(1) as u64;
            let k = ((ctx.index().total_assignments() / profiles) as usize).max(1);
            let mut lists: Vec<Vec<u32>> = Vec::with_capacity(n as usize);
            for node in 0..n {
                let mut ranked: Vec<(u32, f64)> = naive_adjacency(ctx, node)
                    .into_iter()
                    .map(|(v, acc)| (v, weigher.weight(ctx, node, v, &acc)))
                    .collect();
                ranked.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                ranked.truncate(k);
                lists.push(ranked.into_iter().map(|(v, _)| v).collect());
            }
            let mut pairs = Vec::new();
            match algorithm {
                PruningAlgorithm::Cnp1 => {
                    for (u, list) in lists.iter().enumerate() {
                        for &v in list {
                            pairs.push((ProfileId(u as u32), ProfileId(v)));
                        }
                    }
                }
                _ => {
                    for (u, list) in lists.iter().enumerate() {
                        let u = u as u32;
                        for &v in list {
                            if v > u && lists[v as usize].contains(&u) {
                                pairs.push((ProfileId(u), ProfileId(v)));
                            }
                        }
                    }
                }
            }
            pairs
        }
    };
    normalize(&mut pairs);
    pairs
}

/// Canonical pair-set form: each pair (min, max), sorted, deduplicated.
fn normalize(pairs: &mut Vec<(ProfileId, ProfileId)>) {
    for p in pairs.iter_mut() {
        if p.1 .0 < p.0 .0 {
            *p = (p.1, p.0);
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
}

fn engine_prune(
    ctx: &GraphSnapshot,
    weigher: &dyn EdgeWeigher,
    algorithm: PruningAlgorithm,
) -> Vec<(ProfileId, ProfileId)> {
    let mut pairs: Vec<(ProfileId, ProfileId)> = algorithm.prune(ctx, weigher).iter().collect();
    normalize(&mut pairs);
    pairs
}

fn assert_engine_matches_naive(blocks: &BlockCollection) {
    for scheme in WeightingScheme::ALL {
        let mut ctx = GraphSnapshot::build(blocks);
        if scheme.requires_degrees() {
            ctx.ensure_degrees();
        }
        for algorithm in PruningAlgorithm::ALL {
            let fast = engine_prune(&ctx, &scheme, algorithm);
            let naive = naive_prune(&ctx, &scheme, algorithm);
            assert_eq!(
                fast,
                naive,
                "{} × {} diverged from the hashmap reference",
                scheme.name(),
                algorithm.label()
            );
        }
    }
}

#[test]
fn engine_matches_hashmap_reference_on_dirty_collection() {
    assert_engine_matches_naive(&dirty_blocks());
}

#[test]
fn engine_matches_hashmap_reference_on_clean_clean_collection() {
    assert_engine_matches_naive(&clean_blocks());
}

#[test]
fn degrees_match_naive_reference() {
    for blocks in [dirty_blocks(), clean_blocks()] {
        let mut ctx = GraphSnapshot::build(&blocks);
        ctx.ensure_degrees();
        let mut total = 0u64;
        for node in 0..ctx.total_profiles() {
            let naive = naive_adjacency(&ctx, node).len() as u32;
            assert_eq!(ctx.degree(node), naive, "degree of node {node}");
            total += naive as u64;
        }
        assert_eq!(ctx.total_edges(), total / 2);
    }
}

/// Pipeline-level determinism: blocking → cleaning → graph → every pruning
/// algorithm, at 1, 2 and 8 threads, must be identical (not just
/// set-equal — the retained vectors are compared directly).
#[test]
fn pruning_deterministic_across_thread_counts() {
    for blocks in [dirty_blocks(), clean_blocks()] {
        for scheme in [
            WeightingScheme::Cbs,
            WeightingScheme::Arcs,
            WeightingScheme::Ejs,
        ] {
            for algorithm in PruningAlgorithm::ALL {
                let results: Vec<Vec<(ProfileId, ProfileId)>> = [1usize, 2, 8]
                    .iter()
                    .map(|&t| {
                        let mut ctx = GraphSnapshot::build(&blocks).with_threads(t);
                        if scheme.requires_degrees() {
                            ctx.ensure_degrees();
                        }
                        algorithm.prune(&ctx, &scheme).iter().collect()
                    })
                    .collect();
                assert_eq!(
                    results[0],
                    results[1],
                    "{} × {}: 1 vs 2 threads",
                    scheme.name(),
                    algorithm.label()
                );
                assert_eq!(
                    results[0],
                    results[2],
                    "{} × {}: 1 vs 8 threads",
                    scheme.name(),
                    algorithm.label()
                );
            }
        }
    }
}

/// BLAST's own pruning (χ² weighting) through the same engine is also
/// thread-count invariant.
#[test]
fn blast_pruning_deterministic_across_thread_counts() {
    let blocks = dirty_blocks();
    let weigher = ChiSquaredWeigher::without_entropy();
    let results: Vec<Vec<(ProfileId, ProfileId)>> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            let ctx = GraphSnapshot::build(&blocks).with_threads(t);
            BlastPruning::new().prune(&ctx, &weigher).iter().collect()
        })
        .collect();
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}
