//! Concurrency contract of the serving layer.
//!
//! Eight reader threads hammer [`blast_serve::Epoch`] pins while the
//! writer thread streams a randomly generated mutation sequence through a
//! [`ServePipeline`], committing and publishing every few mutations. The
//! properties:
//!
//! - **Internal consistency** — every observed snapshot is well-formed in
//!   itself: candidate lists are exactly mirrored (same weight on both
//!   endpoints), every candidate endpoint is live, `pairs()` matches the
//!   enumerated pair count, and `top_k` agrees with the full lists.
//! - **Version exactness** — a snapshot tagged seq N carries *exactly* the
//!   candidate set the writer published at commit N (no torn or blended
//!   views), checked against the writer's per-seq reference log.
//! - **Monotonic versions** — consecutive pins on one reader never observe
//!   a seq going backwards.
//! - **Batch equivalence** — after the stream drains, the final published
//!   view still equals the engine's retained set and its from-scratch
//!   batch counterpart ([`ServePipeline::verify_equivalence`]).

use blast_datamodel::entity::{ProfileId, SourceId};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::WeightingScheme;
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning, ResidencyPolicy};
use blast_serve::{ServePipeline, ServeSnapshot};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const READERS: usize = 8;

const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

/// One generated mutation: kind (insert/update/delete), a target selector
/// for update/delete, and the token indices of the new value.
type Op = (u8, u8, Vec<u8>);

fn value_of(tokens: &[u8]) -> String {
    tokens
        .iter()
        .map(|&t| VOCAB[t as usize % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..6, 0u8..16, proptest::collection::vec(0u8..10, 1..5)),
        6..20,
    )
}

/// A snapshot must be consistent *in itself*, whenever it was pinned.
fn assert_internally_consistent(snap: &ServeSnapshot) {
    let pairs = snap.all_pairs();
    assert_eq!(
        pairs.len() as u64,
        snap.pairs(),
        "seq {}: pair count diverges from the enumeration",
        snap.seq()
    );
    for &(u, v) in &pairs {
        assert!(u < v, "seq {}: unnormalised pair ({u},{v})", snap.seq());
        assert!(
            snap.is_live(u) && snap.is_live(v),
            "seq {}: candidate pair ({u},{v}) touches a tombstone",
            snap.seq()
        );
        let forward = snap
            .candidates(u)
            .and_then(|c| c.iter().find(|c| c.id == v).map(|c| c.weight));
        let backward = snap
            .candidates(v)
            .and_then(|c| c.iter().find(|c| c.id == u).map(|c| c.weight));
        assert!(
            forward.is_some() && forward == backward,
            "seq {}: pair ({u},{v}) not mirrored ({forward:?} vs {backward:?})",
            snap.seq()
        );
    }
    // top_k is a prefix of the weight-sorted candidate list.
    for id in 0..snap.nodes() {
        let Some(cands) = snap.candidates(id) else {
            continue;
        };
        let top = snap.top_k(id, 3);
        assert!(top.len() <= 3 && top.len() <= cands.len());
        for w in top.windows(2) {
            assert!(
                w[0].weight >= w[1].weight,
                "seq {}: top_k out of order at node {id}",
                snap.seq()
            );
        }
    }
}

/// Streams `ops` through a serve pipeline while `READERS` threads pin and
/// check every version they observe. With a `residency` policy the writer
/// runs under a memory budget — readers must still never observe a torn,
/// stale or panicking view (the writer rehydrates published neighbourhoods
/// before every swap).
fn hammer(ops: &[Op], commit_every: usize, residency: Option<ResidencyPolicy>) {
    let mut engine = IncrementalPipeline::dirty(
        WeightingScheme::Cbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        CleaningConfig::none(),
    );
    if let Some(policy) = residency {
        engine = engine.with_residency(policy);
    }
    let mut p = ServePipeline::new(engine);
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let mut reader = p.epoch().register().expect("a free epoch slot");
            let done = Arc::clone(&done);
            thread::spawn(move || {
                // Observation log: (seq, pairs) for every *new* version
                // this reader saw — verified against the writer's
                // references after the join.
                let mut log: Vec<(u64, Vec<(u32, u32)>)> = Vec::new();
                let mut last_seq = 0u64;
                loop {
                    // Load the stop flag before pinning so the final
                    // published version cannot slip past the last pin.
                    let finished = done.load(Ordering::Acquire);
                    {
                        let guard = reader.pin();
                        assert!(
                            guard.seq() >= last_seq,
                            "reader went back in time: {} after {last_seq}",
                            guard.seq()
                        );
                        if guard.seq() > last_seq {
                            last_seq = guard.seq();
                            assert_internally_consistent(&guard);
                            log.push((guard.seq(), guard.all_pairs()));
                        }
                    }
                    if finished {
                        return log;
                    }
                    thread::yield_now();
                }
            })
        })
        .collect();

    // The writer thread: apply the mutation stream, publishing every
    // `commit_every` ops, and record the reference pair set per seq.
    let mut references: Vec<Vec<(u32, u32)>> = vec![Vec::new()]; // seq 0
    let mut ids: Vec<ProfileId> = Vec::new();
    let mut since = 0usize;
    for (kind, target, tokens) in ops {
        let value = value_of(tokens);
        let live: Vec<ProfileId> = ids
            .iter()
            .copied()
            .filter(|&id| p.inner().store().is_live(id))
            .collect();
        match kind % 3 {
            1 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.update(id, [("text", value.as_str())]);
            }
            2 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.delete(id);
            }
            _ => {
                let id = p.insert(
                    SourceId(0),
                    &format!("p{}", ids.len()),
                    [("text", value.as_str())],
                );
                ids.push(id);
            }
        }
        since += 1;
        if since >= commit_every {
            since = 0;
            p.commit_and_publish();
            references.push(p.latest().all_pairs());
            assert_eq!(references.len() as u64 - 1, p.seq());
        }
    }
    if since > 0 {
        p.commit_and_publish();
        references.push(p.latest().all_pairs());
    }
    // The read-your-writes gate: published == retained == batch.
    assert!(
        p.verify_equivalence(),
        "final published snapshot diverges from the engine/batch run"
    );
    if let Some(policy) = residency {
        let stats = p.inner().cold_stats();
        if policy.budget_bytes == 0 {
            assert!(stats.evictions > 0, "zero budget must demote rows");
            assert!(
                stats.rehydrations > 0,
                "later commits must read back demoted rows"
            );
        }
    }
    done.store(true, Ordering::Release);

    for handle in readers {
        let log = handle.join().expect("reader thread panicked");
        for (seq, pairs) in log {
            assert_eq!(
                pairs, references[seq as usize],
                "a reader observed a candidate set that was never published at seq {seq}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full concurrent contract under random mutation streams and
    /// micro-batch sizes.
    #[test]
    fn prop_concurrent_reads_observe_published_versions_only(
        ops in op_strategy(),
        commit_every in 1usize..4,
    ) {
        hammer(&ops, commit_every, None);
    }

    /// The same contract with the writer under the tightest possible
    /// memory budget (evict everything after every commit, spilled to
    /// disk): publication must rehydrate whatever a reader could touch,
    /// so pinned views stay complete and bit-identical while the engine's
    /// working set lives in the cold tier.
    #[test]
    fn prop_concurrent_reads_survive_a_tight_budget(
        ops in op_strategy(),
        commit_every in 1usize..4,
    ) {
        hammer(
            &ops,
            commit_every,
            Some(ResidencyPolicy { budget_bytes: 0, idle_commits: 0, spill: true }),
        );
    }
}

/// A deterministic long-stream variant (no generator) so the hammer runs
/// even if the property harness is filtered out, with enough commits to
/// force epoch reclamation of many retired snapshots.
#[test]
fn scripted_stream_hammers_reclamation() {
    let ops: Vec<Op> = (0..40u8)
        .map(|i| (i % 3, i / 3, vec![i % 10, (i / 2) % 10]))
        .collect();
    hammer(&ops, 1, None);
}

/// Deterministic tight-budget variant of the hammer: every commit demotes
/// the full working set, every publish rehydrates what readers can reach.
#[test]
fn scripted_stream_hammers_under_zero_budget() {
    let ops: Vec<Op> = (0..40u8)
        .map(|i| (i % 3, i / 3, vec![i % 10, (i / 2) % 10]))
        .collect();
    hammer(
        &ops,
        1,
        Some(ResidencyPolicy {
            budget_bytes: 0,
            idle_commits: 0,
            spill: false,
        }),
    );
}
