//! CSR/snapshot maintenance contract: a [`GraphSnapshot`] patched through
//! an arbitrary insert/update/delete history must be **field-for-field**
//! identical to `GraphSnapshot::build` + fresh statistics on the
//! materialised, batch-cleaned collection — same per-profile block
//! sequence (membership, split, cardinality, entropy — bit-exact), same
//! aggregate statistics (|B|, Σ|b|, profile space), same edge accumulators
//! and same degrees.
//!
//! This is the layer *below* `tests/incremental_equivalence.rs`: that suite
//! pins the retained candidate set, this one pins the graph substrate every
//! pruning reads, so a divergence is caught at the field that moved rather
//! than as a downstream pair diff.

use blast::blocking::collection::BlockCollection;
use blast::graph::GraphSnapshot;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::WeightingScheme;
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};
use proptest::prelude::*;

const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

type Op = (u8, u8, Vec<u8>);

fn value_of(tokens: &[u8]) -> String {
    tokens
        .iter()
        .map(|&t| VOCAB[t as usize % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

/// Asserts the maintained snapshot equals a freshly built one on the
/// batch-cleaned collection: every statistic a graph pass can read.
fn assert_snapshot_matches_batch(snap: &GraphSnapshot, blocks: &BlockCollection, label: &str) {
    let batch = GraphSnapshot::build(blocks);
    assert_eq!(
        snap.total_profiles(),
        batch.total_profiles(),
        "{label}: |E|"
    );
    assert_eq!(snap.total_blocks(), batch.total_blocks(), "{label}: |B|");
    assert_eq!(
        snap.index().total_assignments(),
        batch.index().total_assignments(),
        "{label}: assignments"
    );
    assert_eq!(snap.is_clean_clean(), batch.is_clean_clean(), "{label}");
    assert_eq!(snap.edge_owner_range(), batch.edge_owner_range(), "{label}");
    for p in 0..snap.total_profiles() {
        assert_eq!(
            snap.node_blocks(p),
            batch.node_blocks(p),
            "{label}: |B_{p}|"
        );
        // The block sequence of the row: membership, cardinality and
        // entropy must match position by position (slot ids differ — the
        // incremental snapshot keys by stable slot, batch by position —
        // but the *logical* blocks and their order must be identical,
        // which is what makes float accumulation bit-exact).
        let a = snap.index().blocks_of(p);
        let b = batch.index().blocks_of(p);
        assert_eq!(a.len(), b.len(), "{label}: row length of {p}");
        for (&sa, &sb) in a.iter().zip(b) {
            assert_eq!(
                snap.slot_members(sa),
                batch.slot_members(sb),
                "{label}: members of a block of {p}"
            );
            assert_eq!(
                snap.slot_cardinality(sa).to_bits(),
                batch.slot_cardinality(sb).to_bits(),
                "{label}: cardinality of a block of {p}"
            );
        }
        // Edge accumulators are derived from the rows — compare them too
        // (bit-exact): they are what the weighting schemes actually read.
        for v in 0..snap.total_profiles() {
            let (ea, eb) = (snap.edge(p, v), batch.edge(p, v));
            match (ea, eb) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.common_blocks, y.common_blocks, "{label}: ({p},{v})");
                    assert_eq!(x.arcs.to_bits(), y.arcs.to_bits(), "{label}: ({p},{v})");
                    assert_eq!(
                        x.entropy_sum.to_bits(),
                        y.entropy_sum.to_bits(),
                        "{label}: ({p},{v})"
                    );
                }
                _ => panic!("{label}: edge ({p},{v}) exists in only one snapshot"),
            }
        }
    }
}

fn run_dirty(ops: &[Op], commit_every: usize, cleaning: CleaningConfig, label: &str) {
    let mut p = IncrementalPipeline::dirty(
        WeightingScheme::Cbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        cleaning,
    );
    let mut ids: Vec<ProfileId> = Vec::new();
    let mut since = 0usize;
    for (step, (kind, target, tokens)) in ops.iter().enumerate() {
        let live: Vec<ProfileId> = ids
            .iter()
            .copied()
            .filter(|&id| p.store().is_live(id))
            .collect();
        let value = value_of(tokens);
        match kind % 4 {
            0 | 3 => {
                let id = p.insert(SourceId(0), &format!("p{}", ids.len()), [("text", &*value)]);
                ids.push(id);
            }
            1 if !live.is_empty() => {
                p.update(live[*target as usize % live.len()], [("text", &*value)]);
            }
            2 if !live.is_empty() => {
                p.delete(live[*target as usize % live.len()]);
            }
            _ => {}
        }
        since += 1;
        if since >= commit_every {
            since = 0;
            p.commit();
            let blocks = p.batch_blocks(&p.materialize());
            assert_snapshot_matches_batch(p.snapshot(), &blocks, &format!("{label} step {step}"));
        }
    }
    if p.has_pending() {
        p.commit();
    }
    let blocks = p.batch_blocks(&p.materialize());
    assert_snapshot_matches_batch(p.snapshot(), &blocks, &format!("{label} final"));
}

fn run_clean_clean(ops: &[Op], commit_every: usize, cleaning: CleaningConfig, label: &str) {
    const CAPACITY: u32 = 12;
    let mut p = IncrementalPipeline::clean_clean(
        CAPACITY,
        WeightingScheme::Js,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp2),
        cleaning,
    );
    let mut ids: Vec<ProfileId> = Vec::new();
    let mut inserted0 = 0u32;
    let mut since = 0usize;
    for (step, (kind, target, tokens)) in ops.iter().enumerate() {
        let live: Vec<ProfileId> = ids
            .iter()
            .copied()
            .filter(|&id| p.store().is_live(id))
            .collect();
        let value = value_of(tokens);
        match kind % 4 {
            0 | 3 => {
                let source = if kind % 4 == 0 && inserted0 < CAPACITY {
                    inserted0 += 1;
                    SourceId(0)
                } else {
                    SourceId(1)
                };
                let id = p.insert(
                    source,
                    &format!("s{}p{}", source.0, ids.len()),
                    [("text", &*value)],
                );
                ids.push(id);
            }
            1 if !live.is_empty() => {
                p.update(live[*target as usize % live.len()], [("text", &*value)]);
            }
            2 if !live.is_empty() => {
                p.delete(live[*target as usize % live.len()]);
            }
            _ => {}
        }
        since += 1;
        if since >= commit_every {
            since = 0;
            p.commit();
            let blocks = p.batch_blocks(&p.materialize());
            assert_snapshot_matches_batch(p.snapshot(), &blocks, &format!("{label} step {step}"));
        }
    }
    if p.has_pending() {
        p.commit();
    }
    let blocks = p.batch_blocks(&p.materialize());
    assert_snapshot_matches_batch(p.snapshot(), &blocks, &format!("{label} final"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dirty ER, cleaning on: patched snapshot ≡ built snapshot at every
    /// commit of a random mutation sequence.
    #[test]
    fn prop_dirty_snapshot_matches_build(
        ops in proptest::collection::vec(
            (0u8..4, 0u8..16, proptest::collection::vec(0u8..10, 1..5)), 1..28),
        commit_every in 1usize..4,
    ) {
        run_dirty(&ops, commit_every, CleaningConfig::default(), "dirty/clean-on");
    }

    /// Dirty ER, cleaning off (raw token blocking feeding the graph).
    #[test]
    fn prop_dirty_snapshot_matches_build_no_cleaning(
        ops in proptest::collection::vec(
            (0u8..4, 0u8..16, proptest::collection::vec(0u8..10, 1..5)), 1..24),
        commit_every in 1usize..4,
    ) {
        run_dirty(&ops, commit_every, CleaningConfig::none(), "dirty/clean-off");
    }

    /// Clean-clean ER, cleaning on and off.
    #[test]
    fn prop_clean_clean_snapshot_matches_build(
        ops in proptest::collection::vec(
            (0u8..4, 0u8..16, proptest::collection::vec(0u8..10, 1..5)), 1..24),
        commit_every in 1usize..4,
    ) {
        run_clean_clean(&ops, commit_every, CleaningConfig::default(), "cc/clean-on");
        run_clean_clean(&ops, commit_every, CleaningConfig::none(), "cc/clean-off");
    }
}

/// Degrees of the maintained snapshot match a fresh build (EJS path): the
/// pipeline re-derives them after every apply.
#[test]
fn ejs_degrees_follow_the_patched_snapshot() {
    let mut p = IncrementalPipeline::dirty(
        WeightingScheme::Ejs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        CleaningConfig::default(),
    );
    let rows = [
        "alpha beta gamma",
        "alpha beta delta",
        "gamma delta epsilon",
        "alpha epsilon zeta",
    ];
    for (i, row) in rows.iter().enumerate() {
        p.insert(SourceId(0), &format!("p{i}"), [("text", *row)]);
        p.commit();
        let blocks = p.batch_blocks(&p.materialize());
        let mut batch = GraphSnapshot::build(&blocks);
        batch.ensure_degrees();
        let snap = p.snapshot();
        assert!(snap.has_degrees(), "EJS pipelines keep degrees fresh");
        assert_eq!(snap.total_edges(), batch.total_edges(), "step {i}");
        for n in 0..snap.total_profiles() {
            assert_eq!(snap.degree(n), batch.degree(n), "step {i}, node {n}");
        }
    }
}
