//! End-to-end CLI workflow: generate a benchmark to CSV, run `blast block`
//! on the files, evaluate the produced pairs — the full adoption path a
//! downstream user takes, driven through the library entry points.

use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("blast-cli-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[String]) -> String {
    blast_cli::run(args).unwrap_or_else(|e| panic!("cli failed: {e}"))
}

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

#[test]
fn generate_block_evaluate_roundtrip() {
    let dir = temp_dir("roundtrip");
    let d = dir.to_str().unwrap();

    // 1. Generate a small ar1-style benchmark.
    let report = run(&s(&[
        "generate",
        "--preset",
        "ar1",
        "--scale",
        "0.05",
        "--out-dir",
        d,
    ]));
    assert!(report.contains("wrote ar1"), "{report}");
    assert!(dir.join("d1.csv").exists());
    assert!(dir.join("gt.csv").exists());

    // 2. Run BLAST on the CSVs.
    let pairs_path = dir.join("pairs.csv");
    let report = run(&s(&[
        "block",
        "--d1",
        &format!("{d}/d1.csv"),
        "--d2",
        &format!("{d}/d2.csv"),
        "--id-column",
        "_id",
        "--gt",
        &format!("{d}/gt.csv"),
        "--out",
        pairs_path.to_str().unwrap(),
    ]));
    assert!(report.contains("PC ="), "{report}");
    assert!(report.contains("pairs written"), "{report}");

    // The inline evaluation should show strong quality on ar1.
    let pc: f64 = report
        .lines()
        .find(|l| l.starts_with("PC ="))
        .and_then(|l| l.split('%').next())
        .and_then(|l| l.trim_start_matches("PC =").trim().parse().ok())
        .expect("parse PC");
    assert!(pc > 90.0, "PC {pc} too low:\n{report}");

    // 3. Evaluate the written pairs file independently.
    let report = run(&s(&[
        "evaluate",
        "--d1",
        &format!("{d}/d1.csv"),
        "--d2",
        &format!("{d}/d2.csv"),
        "--id-column",
        "_id",
        "--pairs",
        pairs_path.to_str().unwrap(),
        "--gt",
        &format!("{d}/gt.csv"),
    ]));
    assert!(report.contains("F1 ="), "{report}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn schema_command_prints_clusters() {
    let dir = temp_dir("schema");
    let d = dir.to_str().unwrap();
    run(&s(&[
        "generate",
        "--preset",
        "ar1",
        "--scale",
        "0.05",
        "--out-dir",
        d,
    ]));
    let report = run(&s(&[
        "schema",
        "--d1",
        &format!("{d}/d1.csv"),
        "--d2",
        &format!("{d}/d2.csv"),
        "--id-column",
        "_id",
    ]));
    assert!(report.contains("cluster #1"), "{report}");
    assert!(report.contains("s0.title"), "{report}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dedup_command_runs_dirty_er() {
    let dir = temp_dir("dedup");
    let d = dir.to_str().unwrap();
    run(&s(&[
        "generate",
        "--preset",
        "census",
        "--scale",
        "0.2",
        "--out-dir",
        d,
    ]));
    let report = run(&s(&[
        "dedup",
        "--input",
        &format!("{d}/data.csv"),
        "--id-column",
        "_id",
        "--gt",
        &format!("{d}/gt.csv"),
    ]));
    assert!(report.contains("retained comparisons"), "{report}");
    assert!(report.contains("PC ="), "{report}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stream_command_replays_micro_batches() {
    let dir = temp_dir("stream");
    let d = dir.to_str().unwrap();
    run(&s(&[
        "generate",
        "--preset",
        "census",
        "--scale",
        "0.15",
        "--out-dir",
        d,
    ]));
    // Replay the dataset in small micro-batches; --verify pins the
    // batch-equivalence contract end to end, --gt reports quality.
    let report = run(&s(&[
        "stream",
        "--input",
        &format!("{d}/data.csv"),
        "--id-column",
        "_id",
        "--batch-size",
        "7",
        "--pruning",
        "wnp1",
        "--scheme",
        "cbs",
        "--gt",
        &format!("{d}/gt.csv"),
        "--verify",
        "--stats",
    ]));
    assert!(report.contains("batch    1:"), "{report}");
    assert!(report.contains("verify: incremental == batch"), "{report}");
    assert!(report.contains("PC ="), "{report}");
    // --stats surfaces per-commit RepairStats (including the repair-ladder
    // tier) and the run totals.
    assert!(report.contains("patched CSR rows"), "{report}");
    assert!(report.contains("tier = "), "{report}");
    assert!(report.contains("dirty/reweigh/full"), "{report}");
    // ... and the resident-footprint counters of the memory diet.
    assert!(report.contains("interned tokens"), "{report}");
    assert!(report.contains("B/profile"), "{report}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stream_rejects_unknown_pruning() {
    let dir = temp_dir("stream-bad");
    let d = dir.to_str().unwrap();
    run(&s(&[
        "generate",
        "--preset",
        "census",
        "--scale",
        "0.05",
        "--out-dir",
        d,
    ]));
    let err = blast_cli::run(&s(&[
        "stream",
        "--input",
        &format!("{d}/data.csv"),
        "--pruning",
        "nope",
    ]))
    .unwrap_err();
    assert!(err.contains("--pruning"), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_preset_is_reported() {
    let dir = temp_dir("bad");
    let err = blast_cli::run(&s(&[
        "generate",
        "--preset",
        "nope",
        "--out-dir",
        dir.to_str().unwrap(),
    ]))
    .unwrap_err();
    assert!(err.contains("unknown preset"));
    let _ = fs::remove_dir_all(&dir);
}
