//! Adversarial cold-tier scenarios: the access patterns most likely to
//! expose a residency bug. Each scenario runs a budgeted pipeline in
//! lockstep with an unbudgeted reference (plus batch parity), so any
//! divergence — a stale cold frame, a missed rehydration, an eviction that
//! leaks into weights — fails loudly at the exact commit it happens.

use blast_blocking::key::ClusterId;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::WeightingScheme;
use blast_incremental::index::IncrementalBlockIndex;
use blast_incremental::{
    CleaningConfig, IncrementalPipeline, IncrementalPruning, RepairTier, ResidencyPolicy,
};
use blast_io::TempSpillFile;

fn budgeted_pair(
    scheme: WeightingScheme,
    pruning: IncrementalPruning,
    policy: ResidencyPolicy,
) -> (IncrementalPipeline, IncrementalPipeline) {
    let budgeted = IncrementalPipeline::dirty(scheme, pruning, CleaningConfig::default())
        .with_residency(policy);
    let reference = IncrementalPipeline::dirty(scheme, pruning, CleaningConfig::default());
    (budgeted, reference)
}

fn assert_lockstep(
    budgeted: &mut IncrementalPipeline,
    reference: &mut IncrementalPipeline,
    step: usize,
    label: &str,
) -> RepairTier {
    let ob = budgeted.commit();
    let or = reference.commit();
    assert_eq!(
        ob.delta.added, or.delta.added,
        "{label}: added diverged at commit {step}"
    );
    assert_eq!(
        ob.delta.retracted, or.delta.retracted,
        "{label}: retracted diverged at commit {step}"
    );
    assert_eq!(
        ob.stats.tier, or.stats.tier,
        "{label}: tier diverged at commit {step}"
    );
    assert_eq!(
        budgeted.retained().pairs(),
        reference.retained().pairs(),
        "{label}: retained diverged at commit {step}"
    );
    ob.stats.tier
}

/// Two disjoint token communities, each touched only on alternating
/// commits. With `idle_commits: 0` the off-phase community is demoted
/// after *every* commit and rehydrated the moment its turn comes back —
/// the worst-case thrash pattern for touch-epoch bookkeeping.
#[test]
fn oscillating_hot_cold_communities() {
    let policy = ResidencyPolicy {
        budget_bytes: 0,
        idle_commits: 0,
        spill: false,
    };
    let (mut budgeted, mut reference) = budgeted_pair(
        WeightingScheme::Cbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        policy,
    );
    let mut a_ids: Vec<ProfileId> = Vec::new();
    let mut b_ids: Vec<ProfileId> = Vec::new();
    // Seed both communities.
    for i in 0..4 {
        let a = format!("alpha beta gamma a{i}");
        let b = format!("zeta eta theta b{i}");
        a_ids.push(budgeted.insert(SourceId(0), &format!("a{i}"), [("text", a.as_str())]));
        reference.insert(SourceId(0), &format!("a{i}"), [("text", a.as_str())]);
        b_ids.push(budgeted.insert(SourceId(0), &format!("b{i}"), [("text", b.as_str())]));
        reference.insert(SourceId(0), &format!("b{i}"), [("text", b.as_str())]);
    }
    assert_lockstep(&mut budgeted, &mut reference, 0, "oscillate seed");
    // Ten rounds of strictly one-sided updates.
    for round in 1..=10usize {
        let (ids, stem) = if round % 2 == 1 {
            (&a_ids, "alpha beta gamma")
        } else {
            (&b_ids, "zeta eta theta")
        };
        let id = ids[round % ids.len()];
        let text = format!("{stem} r{round}");
        budgeted.update(id, [("text", text.as_str())]);
        reference.update(id, [("text", text.as_str())]);
        assert_lockstep(&mut budgeted, &mut reference, round, "oscillate");
    }
    let stats = budgeted.cold_stats();
    assert!(
        stats.rehydrations >= 10,
        "each one-sided round must cross the cold boundary (got {} rehydrations)",
        stats.rehydrations
    );
    assert_eq!(
        budgeted.retained().pairs(),
        budgeted.batch_retained().pairs(),
        "oscillate: batch parity"
    );
}

/// Global-statistic drift forces tier-2 reweigh commits, whose clean-edge
/// sweep touches *every* adjacency row — including ones the previous
/// commit just demoted. The reweigh must rehydrate before reading, and
/// the tier ladder itself must not shift under eviction.
#[test]
fn eviction_mid_tier2_reweigh() {
    let policy = ResidencyPolicy {
        budget_bytes: 0,
        idle_commits: 0,
        spill: false,
    };
    let (mut budgeted, mut reference) = budgeted_pair(
        WeightingScheme::Ecbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        policy,
    );
    let mut reweighs = 0usize;
    for i in 0..24usize {
        // A growing chain: every insert shifts the global block-count
        // statistics all ECBS weights depend on.
        let text = format!("alpha c{} c{}", i.saturating_sub(1), i);
        budgeted.insert(SourceId(0), &format!("p{i}"), [("text", text.as_str())]);
        reference.insert(SourceId(0), &format!("p{i}"), [("text", text.as_str())]);
        let tier = assert_lockstep(&mut budgeted, &mut reference, i, "reweigh");
        if i > 0 && tier == RepairTier::Reweigh {
            reweighs += 1;
        }
    }
    assert!(
        reweighs > 0,
        "the drift chain must trigger at least one tier-2 reweigh for this \
         scenario to exercise eviction-under-reweigh at all"
    );
    assert!(budgeted.cold_stats().rehydrations > 0);
}

/// CNP's per-node cardinality budget shifts as profiles grow richer; a
/// budget move can retract an edge whose adjacency row and snapshot slots
/// went cold commits ago.
#[test]
fn cnp_budget_move_touches_cold_rows() {
    let policy = ResidencyPolicy {
        budget_bytes: 0,
        idle_commits: 0,
        spill: false,
    };
    for pruning in [
        IncrementalPruning::Traditional(PruningAlgorithm::Cnp1),
        IncrementalPruning::Traditional(PruningAlgorithm::Cnp2),
    ] {
        let (mut budgeted, mut reference) = budgeted_pair(WeightingScheme::Cbs, pruning, policy);
        for i in 0..16usize {
            // Progressively token-richer profiles: the shared prefix keeps
            // old nodes in play while the k = f(avg degree) budget drifts.
            let text = (0..=(2 + i))
                .map(|t| format!("h{t}"))
                .collect::<Vec<_>>()
                .join(" ");
            budgeted.insert(SourceId(0), &format!("p{i}"), [("text", text.as_str())]);
            reference.insert(SourceId(0), &format!("p{i}"), [("text", text.as_str())]);
            assert_lockstep(&mut budgeted, &mut reference, i, "cnp budget move");
        }
        assert!(budgeted.cold_stats().rehydrations > 0);
    }
}

/// Deleting a profile whose posting lists were evicted *and spilled to
/// disk*: the tombstone diff must rehydrate the spilled postings, splice
/// the profile out, and retract its pairs — identically to the reference.
#[test]
fn tombstoned_profiles_in_spilled_postings() {
    let policy = ResidencyPolicy {
        budget_bytes: 0,
        idle_commits: 0,
        spill: true,
    };
    let (mut budgeted, mut reference) = budgeted_pair(
        WeightingScheme::Cbs,
        IncrementalPruning::Traditional(PruningAlgorithm::Wep),
        policy,
    );
    let mut ids = Vec::new();
    for i in 0..8usize {
        let text = format!("alpha beta shared t{}", i % 3);
        ids.push(budgeted.insert(SourceId(0), &format!("p{i}"), [("text", text.as_str())]));
        reference.insert(SourceId(0), &format!("p{i}"), [("text", text.as_str())]);
    }
    assert_lockstep(&mut budgeted, &mut reference, 0, "tombstone seed");
    // Everything is now cold and on disk. Delete into the spilled postings.
    for (step, &id) in ids.iter().take(5).enumerate() {
        budgeted.delete(id);
        reference.delete(id);
        assert_lockstep(&mut budgeted, &mut reference, step + 1, "tombstone");
    }
    let stats = budgeted.cold_stats();
    assert!(stats.rehydrations > 0, "deletes must read spilled postings");
    assert_eq!(stats.cold_bytes, 0, "spilled frames stay out of memory");
    assert_eq!(
        budgeted.retained().pairs(),
        budgeted.batch_retained().pairs(),
        "tombstone: batch parity"
    );
}

/// A spill file truncated behind the store's back must surface the typed
/// `cold tier:` panic on the next read — never silent divergence. (The
/// `ColdError` variants themselves are pinned by `blast_io::spill` unit
/// tests; this drives the owner-level read path.)
#[test]
fn truncated_spill_panics_with_cold_tier_context() {
    let backend = TempSpillFile::create().expect("spill file");
    let path = backend.path().to_path_buf();
    let mut index = IncrementalBlockIndex::new(false);
    index.enable_residency(Some(Box::new(backend)));
    for pid in 0..64u32 {
        index.set_profile(
            pid,
            vec![
                (ClusterId::GLUE, "alpha"),
                (ClusterId::GLUE, "beta"),
                (ClusterId::GLUE, "gamma"),
            ],
        );
    }
    index.enforce_residency(0, 0);
    assert!(index.cold_stats().evictions > 0);
    // Chop the backing file mid-frame.
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .expect("reopen spill file")
        .set_len(2)
        .expect("truncate");
    let keys: Vec<u32> = index.ordered_keys().to_vec();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for k in keys {
            index.with_postings(k, |p| p.len());
        }
    }))
    .expect_err("reading a truncated spill frame must panic, not diverge");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("cold tier:"),
        "panic must carry the cold-tier context, got: {msg}"
    );
}
