//! End-to-end quality assertions: the §4 claims, at test scale.

use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast::graph::{MetaBlocker, PruningAlgorithm, WeightingScheme};
use blast::metrics::evaluate_pairs;

/// Table 4's headline: BLAST beats traditional WNP on PQ/F1 with ΔPC no
/// worse than −6 %.
#[test]
fn blast_beats_traditional_wnp_on_f1() {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.1);
    let (input, gt) = generate_clean_clean(&spec);

    let pipeline = BlastPipeline::new(BlastConfig::default());
    let outcome = pipeline.run(&input);
    let blast_q = evaluate_pairs(outcome.pairs.pairs(), &gt);

    let (blocks, _) = pipeline.build_blocks(&input);
    for algorithm in [PruningAlgorithm::Wnp1, PruningAlgorithm::Wnp2] {
        let mut avg_pc = 0.0;
        let mut avg_f1 = 0.0;
        for scheme in WeightingScheme::ALL {
            let retained = MetaBlocker::new(scheme, algorithm).run(&blocks);
            let q = evaluate_pairs(retained.pairs(), &gt);
            avg_pc += q.pc / 5.0;
            avg_f1 += q.f1 / 5.0;
        }
        assert!(
            blast_q.f1 > avg_f1,
            "{}: BLAST F1 {} must beat avg F1 {}",
            algorithm.label(),
            blast_q.f1,
            avg_f1
        );
        assert!(
            blast_q.pc >= avg_pc - 0.06,
            "{}: ΔPC must stay within −6 % (blast {}, wnp {})",
            algorithm.label(),
            blast_q.pc,
            avg_pc
        );
    }
}

/// §4.2: BLAST's PQ gain over traditional weight-based meta-blocking is
/// large (up to two orders of magnitude in the paper; ≥2× at toy scale).
#[test]
fn blast_pq_gain_is_substantial() {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.1);
    let (input, gt) = generate_clean_clean(&spec);
    let pipeline = BlastPipeline::new(BlastConfig::default());
    let outcome = pipeline.run(&input);
    let blast_q = evaluate_pairs(outcome.pairs.pairs(), &gt);
    let (blocks, _) = pipeline.build_blocks(&input);
    let wnp1 = MetaBlocker::new(WeightingScheme::Cbs, PruningAlgorithm::Wnp1).run(&blocks);
    let wnp1_q = evaluate_pairs(wnp1.pairs(), &gt);
    assert!(
        blast_q.pq > 2.0 * wnp1_q.pq,
        "BLAST PQ {} vs wnp1 PQ {}",
        blast_q.pq,
        wnp1_q.pq
    );
}

/// The χ²ₕ weighting composed with traditional CNP (the "Blast Lχ²ₕ" rows):
/// recall stays higher than plain reciprocal CNP.
#[test]
fn chi_squared_weighting_lifts_cnp_recall() {
    use blast::core::weighting::ChiSquaredWeigher;
    use blast::graph::GraphSnapshot;

    let spec = clean_clean_preset(CleanCleanPreset::Prd).scaled(0.3);
    let (input, gt) = generate_clean_clean(&spec);
    let pipeline = BlastPipeline::new(BlastConfig::default());
    let (blocks, schema) = pipeline.build_blocks(&input);

    // Plain cnp2, averaged over the traditional schemes.
    let mut plain_pc = 0.0;
    for scheme in WeightingScheme::ALL {
        let retained = MetaBlocker::new(scheme, PruningAlgorithm::Cnp2).run(&blocks);
        plain_pc += evaluate_pairs(retained.pairs(), &gt).pc / 5.0;
    }

    // cnp2 with BLAST's χ²·h weighting.
    let entropies = schema.partitioning.block_entropies(&blocks);
    let ctx = GraphSnapshot::build(&blocks).with_block_entropies(entropies);
    let retained =
        MetaBlocker::prune_context(&ctx, &ChiSquaredWeigher::new(), PruningAlgorithm::Cnp2);
    let chi_pc = evaluate_pairs(retained.pairs(), &gt).pc;

    assert!(
        chi_pc >= plain_pc - 0.02,
        "χ²ₕ CNP recall {chi_pc} should not trail plain CNP {plain_pc}"
    );
}

/// Supervised meta-blocking runs end to end and BLAST is competitive with
/// it (the paper: BLAST beats supervised MB on most datasets).
#[test]
fn blast_competitive_with_supervised() {
    use blast::ml::SupervisedMetaBlocking;

    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.1);
    let (input, gt) = generate_clean_clean(&spec);
    let pipeline = BlastPipeline::new(BlastConfig::default());
    let (blocks, _) = pipeline.build_blocks(&input);

    let (sup_pairs, _train) = SupervisedMetaBlocking::new().run(&blocks, &gt);
    let sup_q = evaluate_pairs(sup_pairs.pairs(), &gt);

    let outcome = pipeline.run(&input);
    let blast_q = evaluate_pairs(outcome.pairs.pairs(), &gt);

    assert!(
        sup_q.pc > 0.5,
        "supervised should find most matches, PC {}",
        sup_q.pc
    );
    assert!(
        blast_q.f1 >= sup_q.f1 * 0.8,
        "BLAST F1 {} should be within 20 % of supervised F1 {}",
        blast_q.f1,
        sup_q.f1
    );
}

/// Meta-blocking output is a valid restructuring: pairs are unique, cross
/// the separator, and every retained pair already co-occurred in a block.
#[test]
fn retained_pairs_are_a_valid_restructuring() {
    use blast::blocking::ProfileBlockIndex;

    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.05);
    let (input, _) = generate_clean_clean(&spec);
    let pipeline = BlastPipeline::new(BlastConfig::default());
    let outcome = pipeline.run(&input);
    let index = ProfileBlockIndex::build(&outcome.blocks);
    let sep = input.separator();
    for (a, b) in outcome.pairs.iter() {
        assert!(a.0 < sep && b.0 >= sep, "pair crosses the separator");
        assert!(
            index.co_occur(a.0, b.0),
            "retained pair must come from a block"
        );
    }
}
