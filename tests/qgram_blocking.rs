//! q-grams as blocking keys (§3.2: "other blocking techniques, e.g.
//! employing q-grams instead of tokens, can be adapted to this scope").
//! q-grams survive typos that break whole-token keys.

use blast::blocking::TokenBlocking;
use blast::datamodel::GroundTruth;
use blast::datamodel::{EntityCollection, ErInput, ProfileId, SourceId, Tokenizer};
use blast::metrics::evaluate_blocks;

fn typo_input() -> (ErInput, GroundTruth) {
    let mut d1 = EntityCollection::new(SourceId(0));
    let mut d2 = EntityCollection::new(SourceId(1));
    // Every value typo'd on the other side: zero shared whole tokens.
    let rows = [
        ("panasonic lumix", "panasonyc lumyx"),
        ("kawasaki ninja", "kavasaki nindja"),
        ("continental tyre", "continentol tyres"),
    ];
    let mut gt = GroundTruth::new();
    for (i, (a, b)) in rows.iter().enumerate() {
        d1.push_pairs(&format!("a{i}"), [("name", *a)]);
        d2.push_pairs(&format!("b{i}"), [("name", *b)]);
        gt.insert(ProfileId(i as u32), ProfileId((rows.len() + i) as u32));
    }
    (ErInput::clean_clean(d1, d2), gt)
}

#[test]
fn token_blocking_misses_typos_qgrams_recover_them() {
    let (input, gt) = typo_input();

    // Whole tokens: every key differs → nothing co-occurs.
    let tokens = TokenBlocking::new().build(&input);
    let q_tokens = evaluate_blocks(&tokens, &gt);
    assert_eq!(q_tokens.pc, 0.0, "typos break whole-token keys");

    // Trigram keys: the unchanged character runs still collide.
    let qgrams = TokenBlocking::with_tokenizer(Tokenizer::new().with_qgrams(3)).build(&input);
    let q_qgrams = evaluate_blocks(&qgrams, &gt);
    assert_eq!(q_qgrams.pc, 1.0, "q-grams must recover all typo'd matches");
}

#[test]
fn qgram_blocks_compose_with_meta_blocking() {
    use blast::core::pruning::BlastPruning;
    use blast::core::weighting::ChiSquaredWeigher;
    use blast::graph::GraphSnapshot;

    let (input, gt) = typo_input();
    let blocks = TokenBlocking::with_tokenizer(Tokenizer::new().with_qgrams(3)).build(&input);
    let ctx = GraphSnapshot::build(&blocks);
    let retained = BlastPruning::new().prune(&ctx, &ChiSquaredWeigher::without_entropy());
    let detected = retained.iter().filter(|&(a, b)| gt.is_match(a, b)).count();
    assert_eq!(detected, gt.len(), "meta-blocking keeps the q-gram matches");
}
