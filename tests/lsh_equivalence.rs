//! §4.2.2 / §4.4: the LSH-based step cuts the attribute-pair comparisons
//! drastically while leaving the extraction results (and hence PC/PQ)
//! intact, as long as the threshold stays below the similarity of true
//! attribute correspondences.

use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::core::schema::attribute_profile::AttributeProfiles;
use blast::core::schema::candidates::CandidateSource;
use blast::core::schema::extraction::{LooseSchemaConfig, LooseSchemaExtractor};
use blast::datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast::datamodel::Tokenizer;
use blast::metrics::evaluate_pairs;

#[test]
fn lsh_lmi_reproduces_exact_lmi_quality() {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.1);
    let (input, gt) = generate_clean_clean(&spec);

    let exact = BlastPipeline::new(BlastConfig::default()).run(&input);
    let lsh = BlastPipeline::new(BlastConfig {
        schema: LooseSchemaConfig {
            candidates: CandidateSource::lsh_default(),
            ..Default::default()
        },
        ..BlastConfig::default()
    })
    .run(&input);

    assert_eq!(
        exact.schema.clusters, lsh.schema.clusters,
        "identical attribute correspondences (J = 1 pairs are always candidates)"
    );
    let q_exact = evaluate_pairs(exact.pairs.pairs(), &gt);
    let q_lsh = evaluate_pairs(lsh.pairs.pairs(), &gt);
    assert!(
        (q_exact.pc - q_lsh.pc).abs() < 1e-9,
        "PC identical: {} vs {}",
        q_exact.pc,
        q_lsh.pc
    );
    assert!(
        (q_exact.pq - q_lsh.pq).abs() < 1e-9,
        "PQ identical: {} vs {}",
        q_exact.pq,
        q_lsh.pq
    );
}

#[test]
fn lsh_reduces_candidate_pairs_by_orders_of_magnitude() {
    // The dbp-style pooled property space is where LSH matters.
    let spec = clean_clean_preset(CleanCleanPreset::DbpScaled).scaled(0.02);
    let (input, _) = generate_clean_clean(&spec);
    let profiles = AttributeProfiles::build(&input, &Tokenizer::new());

    let all = CandidateSource::AllPairs.pairs(&profiles).len();
    let lsh = CandidateSource::lsh_default().pairs(&profiles).len();
    assert!(
        (lsh as f64) < (all as f64) / 100.0,
        "LSH candidates {lsh} should be ≪ all pairs {all}"
    );
}

/// Fig. 10's mechanism: with the glue cluster disabled, raising the LSH
/// threshold beyond the similarity of true correspondences destroys PC.
#[test]
fn high_threshold_without_glue_loses_recall() {
    use blast::blocking::TokenBlocking;
    use blast::metrics::evaluate_blocks;

    let spec = clean_clean_preset(CleanCleanPreset::Ar2).scaled(0.01);
    let (input, gt) = generate_clean_clean(&spec);

    let pc_at = |threshold: f64| {
        let info = LooseSchemaExtractor::new(LooseSchemaConfig {
            candidates: CandidateSource::lsh_with_threshold(150, threshold, 7),
            glue: false,
            ..Default::default()
        })
        .extract(&input);
        let blocks = TokenBlocking::new().build_with(&input, &info.partitioning);
        evaluate_blocks(&blocks, &gt).pc
    };

    let pc_low = pc_at(0.10);
    let pc_high = pc_at(0.90);
    assert!(
        pc_low > pc_high || pc_low > 0.9,
        "low threshold PC {pc_low} should dominate high-threshold PC {pc_high}"
    );
    assert!(
        pc_high < 0.999,
        "a 0.9 threshold must exclude noisy correspondences, PC {pc_high}"
    );
}
