//! The sharded commit path's bit-identity contract.
//!
//! The sharded engine (see `blast_incremental::shard`) partitions the
//! profile space over S owner shards and runs the repair machinery
//! shard-parallel, resolving cross-shard edges at a deterministic merge
//! frontier. The contract is absolute: **every commit outcome —
//! candidate set, delta stream, repair tier — is bit-identical to the
//! single-shard pipeline at any shard count and any thread count.**
//!
//! Property tests drive random mutation sequences through a reference
//! single-shard pipeline and re-run the identical stream under shard ×
//! thread grids, comparing the retained pairs, the per-commit deltas and
//! the tier at *every* commit (not just the end state). A scripted test
//! constructs a worst-case collection where every edge crosses the shard
//! frontier and checks the accounting says so.

use blast_datamodel::entity::{ProfileId, SourceId};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::{EdgeWeigher, WeightingScheme};
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};
use proptest::prelude::*;

const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

/// One generated mutation: kind (insert/update/delete), a target selector
/// for update/delete, and the token indices of the new value.
type Op = (u8, u8, Vec<u8>);

fn value_of(tokens: &[u8]) -> String {
    tokens
        .iter()
        .map(|&t| VOCAB[t as usize % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..6, 0u8..16, proptest::collection::vec(0u8..10, 1..5)),
        4..14,
    )
}

/// The per-commit observations a run produces — everything that must be
/// bit-identical across shard/thread counts.
#[derive(Debug, PartialEq)]
struct CommitTrace {
    retained: Vec<(ProfileId, ProfileId)>,
    added: Vec<(ProfileId, ProfileId)>,
    retracted: Vec<(ProfileId, ProfileId)>,
    tier: &'static str,
}

/// Streams `ops` through a pipeline configured with (`shards`, `threads`),
/// committing every `commit_every` mutations, and returns the trace.
fn run_traced(
    ops: &[Op],
    commit_every: usize,
    weigher: impl EdgeWeigher + Send + Clone + 'static,
    pruning: IncrementalPruning,
    cleaning: CleaningConfig,
    shards: usize,
    threads: usize,
) -> (Vec<CommitTrace>, IncrementalPipeline) {
    let mut p = IncrementalPipeline::dirty(weigher, pruning, cleaning)
        .with_shards(shards)
        .with_threads(threads);
    let mut ids: Vec<ProfileId> = Vec::new();
    let mut since = 0usize;
    let mut trace = Vec::new();
    let commit = |p: &mut IncrementalPipeline, trace: &mut Vec<CommitTrace>| {
        let out = p.commit();
        trace.push(CommitTrace {
            retained: p.retained().pairs().to_vec(),
            added: out.delta.added,
            retracted: out.delta.retracted,
            tier: out.stats.tier.label(),
        });
    };
    for (kind, target, tokens) in ops {
        let value = value_of(tokens);
        let live: Vec<ProfileId> = ids
            .iter()
            .copied()
            .filter(|&id| p.store().is_live(id))
            .collect();
        match kind % 3 {
            1 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.update(id, [("text", value.as_str())]);
            }
            2 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.delete(id);
            }
            _ => {
                let id = p.insert(
                    SourceId(0),
                    &format!("p{}", ids.len()),
                    [("text", value.as_str())],
                );
                ids.push(id);
            }
        }
        since += 1;
        if since >= commit_every {
            since = 0;
            commit(&mut p, &mut trace);
        }
    }
    if p.has_pending() {
        commit(&mut p, &mut trace);
    }
    (trace, p)
}

/// Runs the single-shard reference and a (shards × threads) grid over the
/// same stream, asserting every commit's trace is identical and the final
/// state matches a from-scratch batch run.
fn check_grid(
    ops: &[Op],
    commit_every: usize,
    weigher: impl EdgeWeigher + Send + Clone + 'static,
    pruning: IncrementalPruning,
    cleaning: CleaningConfig,
    grid: &[(usize, usize)],
    label: &str,
) {
    let (reference, ref_pipeline) = run_traced(
        ops,
        commit_every,
        weigher.clone(),
        pruning,
        cleaning.clone(),
        1,
        1,
    );
    assert_eq!(
        ref_pipeline.retained().pairs(),
        ref_pipeline.batch_retained().pairs(),
        "{label}: single-shard reference diverged from batch"
    );
    for &(shards, threads) in grid {
        let (trace, _) = run_traced(
            ops,
            commit_every,
            weigher.clone(),
            pruning,
            cleaning.clone(),
            shards,
            threads,
        );
        assert_eq!(
            trace, reference,
            "{label}: shards={shards} threads={threads} diverged from single-shard"
        );
    }
}

/// The full shard × thread grid.
const FULL_GRID: [(usize, usize); 9] = [
    (1, 1),
    (1, 2),
    (1, 8),
    (2, 1),
    (2, 2),
    (2, 8),
    (4, 1),
    (4, 2),
    (4, 8),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full shard × thread grid on the edge-decision variants (WEP's
    /// exact-sum threshold and CEP's rank-K cutoff are where ordering
    /// bugs would surface), CBS weighting.
    #[test]
    fn prop_full_grid_edge_variants(ops in op_strategy(), commit_every in 1usize..4) {
        for algorithm in [PruningAlgorithm::Wep, PruningAlgorithm::Cep] {
            check_grid(
                &ops,
                commit_every,
                WeightingScheme::Cbs,
                IncrementalPruning::Traditional(algorithm),
                CleaningConfig::default(),
                &FULL_GRID,
                &format!("cbs/{}", algorithm.label()),
            );
        }
    }

    /// Every pruning variant (all six traditional + BLAST's own) and every
    /// weighting scheme, cleaning on and off, with the shard/thread
    /// assignment cycled through the grid to bound runtime — over the
    /// whole sweep each (shards, threads) cell is exercised against many
    /// configurations.
    #[test]
    fn prop_all_configs_sharded(ops in op_strategy(), commit_every in 1usize..4) {
        let mut prunings: Vec<IncrementalPruning> = PruningAlgorithm::ALL
            .iter()
            .map(|&a| IncrementalPruning::Traditional(a))
            .collect();
        prunings.push(IncrementalPruning::blast());
        let mut cell = 0usize;
        for cleaning in [CleaningConfig::none(), CleaningConfig::default()] {
            for pruning in &prunings {
                for scheme in WeightingScheme::ALL {
                    // Skip (1, 1): that's the reference itself.
                    let (shards, threads) = FULL_GRID[1 + cell % (FULL_GRID.len() - 1)];
                    cell += 1;
                    check_grid(
                        &ops,
                        commit_every,
                        scheme,
                        *pruning,
                        cleaning.clone(),
                        &[(shards, threads)],
                        &format!(
                            "{}/{} cleaning={}",
                            scheme.name(),
                            pruning.label(),
                            cleaning.filtering
                        ),
                    );
                }
            }
        }
    }
}

/// Worst case for the merge frontier: a collection where **every** edge
/// crosses shards. Token group g is shared by exactly profiles 2g and
/// 2g + 1 — one even, one odd — so under 2 round-robin shards every edge
/// has one endpoint per shard. The outcome must still be bit-identical,
/// and the accounting must report every processed edge as a frontier pair.
#[test]
fn all_edges_cross_the_frontier() {
    let build = |shards: usize, threads: usize| {
        let mut p = IncrementalPipeline::dirty(
            WeightingScheme::Cbs,
            IncrementalPruning::Traditional(PruningAlgorithm::Wep),
            CleaningConfig::none(),
        )
        .with_shards(shards)
        .with_threads(threads);
        let mut frontier_pairs = 0usize;
        let mut processed = 0usize;
        for g in 0..12u32 {
            for half in 0..2u32 {
                let u = 2 * g + half;
                // Two tokens per profile so blocks of size two exist:
                // group g pairs 2g with 2g+1 and nothing else.
                p.insert(
                    SourceId(0),
                    &format!("p{u}"),
                    [("text", format!("tok{g} grp{g}").as_str())],
                );
            }
            let out = p.commit();
            frontier_pairs += out.stats.frontier_pairs;
            processed += out.stats.edges_reweighed + out.stats.edges_swept;
        }
        (p, frontier_pairs, processed)
    };

    let (reference, zero_frontier, _) = build(1, 1);
    assert_eq!(zero_frontier, 0, "single shard has no frontier");
    assert!(!reference.retained().is_empty());

    let (sharded, frontier, processed) = build(2, 4);
    assert_eq!(
        sharded.retained().pairs(),
        reference.retained().pairs(),
        "all-frontier stream must stay bit-identical"
    );
    assert!(processed > 0);
    assert_eq!(
        frontier, processed,
        "every processed edge pairs an even with an odd profile — all frontier"
    );
    assert_eq!(
        sharded.retained().pairs(),
        sharded.batch_retained().pairs(),
        "sharded all-frontier stream must equal batch"
    );
}

/// `BLAST_THREADS`-style explicit thread pinning mid-stream: turning the
/// thread and shard knobs *between commits* never changes an outcome.
#[test]
fn knobs_can_turn_mid_stream() {
    let stream = |knobs: &[(usize, usize)]| {
        let mut p = IncrementalPipeline::dirty(
            WeightingScheme::Ejs,
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
            CleaningConfig::default(),
        );
        for (i, &(shards, threads)) in knobs.iter().enumerate() {
            p.set_shards(shards);
            p.set_threads(threads);
            for j in 0..4u32 {
                let u = 4 * i as u32 + j;
                p.insert(
                    SourceId(0),
                    &format!("p{u}"),
                    [("text", VOCAB[(u as usize * 3 + j as usize) % VOCAB.len()])],
                );
            }
            p.commit();
        }
        p.retained().pairs().to_vec()
    };
    let steady = stream(&[(1, 1); 6]);
    let wandering = stream(&[(1, 1), (4, 2), (2, 8), (3, 1), (8, 4), (2, 2)]);
    assert_eq!(
        steady, wandering,
        "mid-stream knob turns changed the outcome"
    );
}
