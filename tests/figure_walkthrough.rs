//! The paper's running example (Figures 1–3), pinned end to end: from the
//! four profiles of Fig. 1a to the final restructured blocking graph of
//! Fig. 3c.

use blast::blocking::TokenBlocking;
use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::core::schema::extraction::{LooseSchemaConfig, LooseSchemaExtractor};
use blast::datamodel::{EntityCollection, ErInput, ProfileId, SourceId};

fn figure1_input() -> ErInput {
    let mut d = EntityCollection::new(SourceId(0));
    d.push_pairs(
        "p1",
        [
            ("Name", "John Abram Jr"),
            ("profession", "car seller"),
            ("year", "1985"),
            ("Addr.", "Main street"),
        ],
    );
    d.push_pairs(
        "p2",
        [
            ("FirstName", "Ellen"),
            ("SecondName", "Smith"),
            ("year", "85"),
            ("occupation", "retail"),
            ("mail", "Abram st. 30 NY"),
        ],
    );
    d.push_pairs(
        "p3",
        [
            ("name1", "Jon Jr"),
            ("name2", "Abram"),
            ("birth year", "85"),
            ("job", "car retail"),
            ("Loc", "Main st."),
        ],
    );
    d.push_pairs(
        "p4",
        [
            ("full name", "Ellen Smith"),
            ("b. date", "May 10 1985"),
            ("work info", "retailer"),
            ("loc", "Abram street NY"),
        ],
    );
    ErInput::dirty(d)
}

/// Figure 2a: after attribute-match induction, the "Abram" block splits into
/// a person-name block {p1, p3} and a street-name block {p2, p4}.
#[test]
fn figure2_abram_disambiguation() {
    let input = figure1_input();
    let info = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&input);
    let blocks = TokenBlocking::new().build_with(&input, &info.partitioning);

    let abram_blocks: Vec<Vec<u32>> = blocks
        .blocks()
        .iter()
        .filter(|b| b.label.starts_with("abram"))
        .map(|b| b.profiles.iter().map(|p| p.0).collect())
        .collect();
    assert_eq!(abram_blocks.len(), 2, "Abram must split into two blocks");
    assert!(
        abram_blocks.contains(&vec![0, 2]),
        "person-name Abram = {{p1, p3}}"
    );
    assert!(
        abram_blocks.contains(&vec![1, 3]),
        "street-name Abram = {{p2, p4}}"
    );
}

/// Figure 3c: the full pipeline retains exactly the two matching
/// comparisons, pruning every superfluous edge.
#[test]
fn figure3_final_graph() {
    let input = figure1_input();
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    assert!(
        outcome.pairs.contains(ProfileId(0), ProfileId(2)),
        "p1–p3 kept"
    );
    assert!(
        outcome.pairs.contains(ProfileId(1), ProfileId(3)),
        "p2–p4 kept"
    );
    assert_eq!(
        outcome.pairs.len(),
        2,
        "every superfluous comparison removed"
    );
}

/// The same walkthrough without the loose schema information keeps at least
/// the matches; the paper's point is that plain meta-blocking leaves a
/// superfluous comparison behind that the loose schema information removes.
#[test]
fn schema_agnostic_comparison_point() {
    use blast::core::pruning::BlastPruning;
    use blast::core::weighting::ChiSquaredWeigher;
    use blast::graph::GraphSnapshot;

    let input = figure1_input();
    let blocks = TokenBlocking::new().build(&input);
    let ctx = GraphSnapshot::build(&blocks);
    let retained = BlastPruning::new().prune(&ctx, &ChiSquaredWeigher::without_entropy());
    assert!(retained.contains(ProfileId(0), ProfileId(2)));
    assert!(retained.contains(ProfileId(1), ProfileId(3)));
}
