//! The batch-equivalence contract of the incremental subsystem.
//!
//! After **any** sequence of `insert` / `update` / `delete` mutations, the
//! incremental candidate set must be bit-identical to a from-scratch batch
//! run (Token Blocking → purging → filtering → weighting → pruning) on the
//! materialised final collection — for every pruning variant and weighting
//! scheme. Property tests drive randomly generated mutation sequences with
//! varying micro-batch sizes; a scripted test sweeps the full
//! 6 prunings × 5 schemes grid plus BLAST's own pruning with χ².
//!
//! The delta stream is checked for internal consistency too: replaying
//! `added` / `retracted` over the previous candidate set must reproduce the
//! next one exactly.

use blast_core::weighting::ChiSquaredWeigher;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::{EdgeWeigher, WeightingScheme};
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};
use proptest::prelude::*;
use std::collections::BTreeSet;

const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

/// One generated mutation: kind (insert/update/delete), a target selector
/// for update/delete, and the token indices of the new value.
type Op = (u8, u8, Vec<u8>);

fn value_of(tokens: &[u8]) -> String {
    tokens
        .iter()
        .map(|&t| VOCAB[t as usize % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

/// All pruning variants the subsystem maintains.
fn all_prunings() -> Vec<IncrementalPruning> {
    let mut v: Vec<IncrementalPruning> = PruningAlgorithm::ALL
        .iter()
        .map(|&a| IncrementalPruning::Traditional(a))
        .collect();
    v.push(IncrementalPruning::blast());
    v
}

/// Applies `ops` to a dirty-ER pipeline, committing every `commit_every`
/// mutations, and asserts the contract at every commit.
fn check_dirty_sequence(
    ops: &[Op],
    commit_every: usize,
    weigher: impl EdgeWeigher + Send + Clone + 'static,
    pruning: IncrementalPruning,
    cleaning: CleaningConfig,
    label: &str,
) {
    let mut p = IncrementalPipeline::dirty(weigher, pruning, cleaning);
    let mut ids: Vec<ProfileId> = Vec::new();
    let mut since = 0usize;
    let mut mirror: BTreeSet<(ProfileId, ProfileId)> = BTreeSet::new();

    let commit_and_check = |p: &mut IncrementalPipeline,
                            mirror: &mut BTreeSet<(ProfileId, ProfileId)>,
                            step: usize| {
        let out = p.commit();
        // Contract: bit-identical to the from-scratch batch run.
        assert_eq!(
            p.retained().pairs(),
            p.batch_retained().pairs(),
            "{label}: batch mismatch after step {step}"
        );
        // Delta consistency: old ∪ added ∖ retracted = new.
        for r in &out.delta.retracted {
            assert!(mirror.remove(r), "{label}: retracted unknown pair {r:?}");
        }
        for a in &out.delta.added {
            assert!(mirror.insert(*a), "{label}: added duplicate pair {a:?}");
        }
        let replayed: Vec<_> = mirror.iter().copied().collect();
        assert_eq!(
            replayed,
            p.retained().pairs().to_vec(),
            "{label}: delta replay diverged at step {step}"
        );
    };

    for (step, (kind, target, tokens)) in ops.iter().enumerate() {
        let value = value_of(tokens);
        let live: Vec<ProfileId> = ids
            .iter()
            .copied()
            .filter(|&id| p.store().is_live(id))
            .collect();
        match kind % 3 {
            0 => {
                let id = p.insert(
                    SourceId(0),
                    &format!("p{}", ids.len()),
                    [("text", value.as_str())],
                );
                ids.push(id);
            }
            1 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.update(id, [("text", value.as_str())]);
            }
            2 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.delete(id);
            }
            _ => {
                // No live target yet: degrade to an insert so the sequence
                // keeps exercising something.
                let id = p.insert(
                    SourceId(0),
                    &format!("p{}", ids.len()),
                    [("text", value.as_str())],
                );
                ids.push(id);
            }
        }
        since += 1;
        if since >= commit_every {
            since = 0;
            commit_and_check(&mut p, &mut mirror, step);
        }
    }
    if p.has_pending() {
        commit_and_check(&mut p, &mut mirror, ops.len());
    }
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..6, 0u8..16, proptest::collection::vec(0u8..10, 1..5)),
        3..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All six traditional prunings + BLAST's own, CBS weighting, default
    /// cleaning, varying micro-batch sizes.
    #[test]
    fn prop_all_prunings_match_batch(ops in op_strategy(), commit_every in 1usize..4) {
        for pruning in all_prunings() {
            check_dirty_sequence(
                &ops,
                commit_every,
                WeightingScheme::Cbs,
                pruning,
                CleaningConfig::default(),
                &format!("cbs/{}", pruning.label()),
            );
        }
    }

    /// Every weighting scheme (including degree-dependent EJS and the
    /// |B|-dependent ECBS) across a weight-, cardinality- and node-centric
    /// pruning — both with cleaning disabled (raw blocking) and with the
    /// default purging + filtering. The filtering case is the regression
    /// guard for |B_u| moving through a post-filter block-validity flip
    /// while the node's own kept set stays put.
    #[test]
    fn prop_all_schemes_match_batch(ops in op_strategy(), commit_every in 1usize..4) {
        for cleaning in [CleaningConfig::none(), CleaningConfig::default()] {
            for scheme in WeightingScheme::ALL {
                for algorithm in [
                    PruningAlgorithm::Wep,
                    PruningAlgorithm::Cep,
                    PruningAlgorithm::Wnp2,
                    PruningAlgorithm::Cnp1,
                ] {
                    check_dirty_sequence(
                        &ops,
                        commit_every,
                        scheme,
                        IncrementalPruning::Traditional(algorithm),
                        cleaning.clone(),
                        &format!("{}/{} cleaning={}", scheme.name(), algorithm.label(), cleaning.filtering),
                    );
                }
            }
        }
    }

    /// BLAST's χ² weigher (with its |B|-sensitive contingency table) under
    /// BLAST pruning and a traditional node-centric one.
    #[test]
    fn prop_chi_squared_matches_batch(ops in op_strategy(), commit_every in 1usize..3) {
        for pruning in [
            IncrementalPruning::blast(),
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp2),
        ] {
            check_dirty_sequence(
                &ops,
                commit_every,
                ChiSquaredWeigher::without_entropy(),
                pruning,
                CleaningConfig::default(),
                &format!("chi2/{}", pruning.label()),
            );
        }
    }

    /// Clean-clean streams: inserts land on either side of the fixed
    /// separator, updates/deletes pick any live profile.
    #[test]
    fn prop_clean_clean_matches_batch(ops in op_strategy(), commit_every in 1usize..4) {
        const CAPACITY: u32 = 8;
        for algorithm in [PruningAlgorithm::Wnp1, PruningAlgorithm::Cep] {
            let mut p = IncrementalPipeline::clean_clean(
                CAPACITY,
                WeightingScheme::Js,
                IncrementalPruning::Traditional(algorithm),
                CleaningConfig::default(),
            );
            let mut ids: Vec<ProfileId> = Vec::new();
            let mut inserted0 = 0u32;
            let mut since = 0usize;
            for (step, (kind, target, tokens)) in ops.iter().enumerate() {
                let value = value_of(tokens);
                let live: Vec<ProfileId> = ids
                    .iter()
                    .copied()
                    .filter(|&id| p.store().is_live(id))
                    .collect();
                match kind % 4 {
                    0 | 3 => {
                        // Alternate sides; overflow of E1 falls back to E2.
                        let source = if kind % 4 == 0 && inserted0 < CAPACITY {
                            inserted0 += 1;
                            SourceId(0)
                        } else {
                            SourceId(1)
                        };
                        let id = p.insert(
                            source,
                            &format!("s{}p{}", source.0, ids.len()),
                            [("text", value.as_str())],
                        );
                        ids.push(id);
                    }
                    1 if !live.is_empty() => {
                        let id = live[*target as usize % live.len()];
                        p.update(id, [("text", value.as_str())]);
                    }
                    2 if !live.is_empty() => {
                        let id = live[*target as usize % live.len()];
                        p.delete(id);
                    }
                    _ => {}
                }
                since += 1;
                if since >= commit_every {
                    since = 0;
                    p.commit();
                    prop_assert_eq!(
                        p.retained().pairs(),
                        p.batch_retained().pairs(),
                        "{} step {}",
                        algorithm.label(),
                        step
                    );
                }
            }
            if p.has_pending() {
                p.commit();
                prop_assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
            }
        }
    }
}

/// The full 6 × 5 grid (plus χ² × BLAST pruning) on one scripted sequence
/// that exercises insert, co-occurrence growth, update and delete — the
/// acceptance grid, deterministic and exhaustive.
#[test]
fn scripted_sequence_full_grid() {
    let ops: Vec<Op> = vec![
        (0, 0, vec![0, 1, 2]),    // insert p0: alpha beta gamma
        (0, 0, vec![0, 1, 3]),    // insert p1: alpha beta delta
        (0, 0, vec![2, 3, 4]),    // insert p2: gamma delta epsilon
        (0, 0, vec![0, 1, 2, 3]), // insert p3: alpha beta gamma delta
        (1, 1, vec![5, 6]),       // update p1: zeta eta (leaves the community)
        (0, 0, vec![5, 6, 7]),    // insert p4: zeta eta theta
        (2, 0, vec![0]),          // delete p0
        (0, 0, vec![0, 2, 8]),    // insert p5: alpha gamma iota
        (1, 2, vec![0, 1]),       // update some live profile
        (2, 1, vec![0]),          // delete another
        (0, 0, vec![1, 2, 9]),    // insert p6: beta gamma kappa
    ];
    for commit_every in [1usize, 4] {
        for scheme in WeightingScheme::ALL {
            for algorithm in PruningAlgorithm::ALL {
                check_dirty_sequence(
                    &ops,
                    commit_every,
                    scheme,
                    IncrementalPruning::Traditional(algorithm),
                    CleaningConfig::default(),
                    &format!("grid {}/{}", scheme.name(), algorithm.label()),
                );
            }
        }
        check_dirty_sequence(
            &ops,
            commit_every,
            ChiSquaredWeigher::without_entropy(),
            IncrementalPruning::blast(),
            CleaningConfig::default(),
            "grid chi2/blast",
        );
    }
}

/// A fixed loose-schema partitioning (as extracted from a seed batch)
/// drives loosely schema-aware blocking and entropy weighting through the
/// incremental path; the contract holds against the batch run with the
/// same partitioning.
#[test]
fn fixed_partitioning_stream_matches_batch() {
    use blast_core::schema::extraction::{LooseSchemaConfig, LooseSchemaExtractor};
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::input::ErInput;

    // Seed data with two attribute "columns" that share vocabulary so LMI
    // induces a cluster.
    let mut seed = EntityCollection::new(SourceId(0));
    for i in 0..12 {
        seed.push_pairs(
            &format!("s{i}"),
            [
                ("name", &*format!("person number {i} alpha beta")),
                ("label", &*format!("person number {i} alpha beta")),
                ("year", &*format!("{}", 1990 + i % 4)),
            ],
        );
    }
    let seed_input = ErInput::dirty(seed);
    let schema = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&seed_input);

    let mut p = IncrementalPipeline::dirty(
        ChiSquaredWeigher::new(),
        IncrementalPruning::blast(),
        CleaningConfig::default(),
    )
    .with_partitioning(schema.partitioning.clone());
    // Align the store's attribute ids with the seed collection the
    // partitioning was extracted from.
    let seed_collection = seed_input.collection(SourceId(0));
    p.adopt_attributes(
        SourceId(0),
        seed_collection
            .attribute_ids()
            .map(|a| seed_collection.attribute_name(a)),
    );

    let rows = [
        vec![("name", "john abram person"), ("year", "1990")],
        vec![("label", "john abram person"), ("year", "1990")],
        vec![("name", "ellen smith alpha"), ("year", "1991")],
        vec![("label", "ellen smith alpha"), ("year", "1991")],
        vec![("name", "mary jones beta"), ("year", "1992")],
    ];
    let mut ids = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        ids.push(p.insert(SourceId(0), &format!("p{i}"), row.iter().copied()));
        p.commit();
        assert_eq!(
            p.retained().pairs(),
            p.batch_retained().pairs(),
            "partitioned step {i}"
        );
    }
    p.update(ids[0], [("name", "jon abram person"), ("year", "1990")]);
    p.delete(ids[2]);
    p.commit();
    assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
}
