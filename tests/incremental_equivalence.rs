//! The batch-equivalence contract of the incremental subsystem.
//!
//! After **any** sequence of `insert` / `update` / `delete` mutations, the
//! incremental candidate set must be bit-identical to a from-scratch batch
//! run (Token Blocking → purging → filtering → weighting → pruning) on the
//! materialised final collection — for every pruning variant and weighting
//! scheme. Property tests drive randomly generated mutation sequences with
//! varying micro-batch sizes; a scripted test sweeps the full
//! 6 prunings × 5 schemes grid plus BLAST's own pruning with χ².
//!
//! The delta stream is checked for internal consistency too: replaying
//! `added` / `retracted` over the previous candidate set must reproduce the
//! next one exactly.

use blast_core::weighting::ChiSquaredWeigher;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::weights::{EdgeWeigher, WeightingScheme};
use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning, RepairTier};
use proptest::prelude::*;
use std::collections::BTreeSet;

const VOCAB: [&str; 10] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
];

/// One generated mutation: kind (insert/update/delete), a target selector
/// for update/delete, and the token indices of the new value.
type Op = (u8, u8, Vec<u8>);

fn value_of(tokens: &[u8]) -> String {
    tokens
        .iter()
        .map(|&t| VOCAB[t as usize % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

/// All pruning variants the subsystem maintains.
fn all_prunings() -> Vec<IncrementalPruning> {
    let mut v: Vec<IncrementalPruning> = PruningAlgorithm::ALL
        .iter()
        .map(|&a| IncrementalPruning::Traditional(a))
        .collect();
    v.push(IncrementalPruning::blast());
    v
}

/// Applies `ops` to a dirty-ER pipeline, committing every `commit_every`
/// mutations, and asserts the contract at every commit.
fn check_dirty_sequence(
    ops: &[Op],
    commit_every: usize,
    weigher: impl EdgeWeigher + Send + Clone + 'static,
    pruning: IncrementalPruning,
    cleaning: CleaningConfig,
    label: &str,
) {
    let mut p = IncrementalPipeline::dirty(weigher, pruning, cleaning);
    let mut ids: Vec<ProfileId> = Vec::new();
    let mut since = 0usize;
    let mut mirror: BTreeSet<(ProfileId, ProfileId)> = BTreeSet::new();

    let commit_and_check = |p: &mut IncrementalPipeline,
                            mirror: &mut BTreeSet<(ProfileId, ProfileId)>,
                            step: usize| {
        let out = p.commit();
        // Contract: bit-identical to the from-scratch batch run.
        assert_eq!(
            p.retained().pairs(),
            p.batch_retained().pairs(),
            "{label}: batch mismatch after step {step}"
        );
        // Delta consistency: old ∪ added ∖ retracted = new.
        for r in &out.delta.retracted {
            assert!(mirror.remove(r), "{label}: retracted unknown pair {r:?}");
        }
        for a in &out.delta.added {
            assert!(mirror.insert(*a), "{label}: added duplicate pair {a:?}");
        }
        let replayed: Vec<_> = mirror.iter().copied().collect();
        assert_eq!(
            replayed,
            p.retained().pairs().to_vec(),
            "{label}: delta replay diverged at step {step}"
        );
    };

    for (step, (kind, target, tokens)) in ops.iter().enumerate() {
        let value = value_of(tokens);
        let live: Vec<ProfileId> = ids
            .iter()
            .copied()
            .filter(|&id| p.store().is_live(id))
            .collect();
        match kind % 3 {
            0 => {
                let id = p.insert(
                    SourceId(0),
                    &format!("p{}", ids.len()),
                    [("text", value.as_str())],
                );
                ids.push(id);
            }
            1 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.update(id, [("text", value.as_str())]);
            }
            2 if !live.is_empty() => {
                let id = live[*target as usize % live.len()];
                p.delete(id);
            }
            _ => {
                // No live target yet: degrade to an insert so the sequence
                // keeps exercising something.
                let id = p.insert(
                    SourceId(0),
                    &format!("p{}", ids.len()),
                    [("text", value.as_str())],
                );
                ids.push(id);
            }
        }
        since += 1;
        if since >= commit_every {
            since = 0;
            commit_and_check(&mut p, &mut mirror, step);
        }
    }
    if p.has_pending() {
        commit_and_check(&mut p, &mut mirror, ops.len());
    }
}

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..6, 0u8..16, proptest::collection::vec(0u8..10, 1..5)),
        3..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All six traditional prunings + BLAST's own, CBS weighting, default
    /// cleaning, varying micro-batch sizes.
    #[test]
    fn prop_all_prunings_match_batch(ops in op_strategy(), commit_every in 1usize..4) {
        for pruning in all_prunings() {
            check_dirty_sequence(
                &ops,
                commit_every,
                WeightingScheme::Cbs,
                pruning,
                CleaningConfig::default(),
                &format!("cbs/{}", pruning.label()),
            );
        }
    }

    /// Every weighting scheme (including degree-dependent EJS and the
    /// |B|-dependent ECBS) across a weight-, cardinality- and node-centric
    /// pruning — both with cleaning disabled (raw blocking) and with the
    /// default purging + filtering. The filtering case is the regression
    /// guard for |B_u| moving through a post-filter block-validity flip
    /// while the node's own kept set stays put.
    #[test]
    fn prop_all_schemes_match_batch(ops in op_strategy(), commit_every in 1usize..4) {
        for cleaning in [CleaningConfig::none(), CleaningConfig::default()] {
            for scheme in WeightingScheme::ALL {
                for algorithm in [
                    PruningAlgorithm::Wep,
                    PruningAlgorithm::Cep,
                    PruningAlgorithm::Wnp2,
                    PruningAlgorithm::Cnp1,
                ] {
                    check_dirty_sequence(
                        &ops,
                        commit_every,
                        scheme,
                        IncrementalPruning::Traditional(algorithm),
                        cleaning.clone(),
                        &format!("{}/{} cleaning={}", scheme.name(), algorithm.label(), cleaning.filtering),
                    );
                }
            }
        }
    }

    /// BLAST's χ² weigher (with its |B|-sensitive contingency table) under
    /// BLAST pruning and a traditional node-centric one.
    #[test]
    fn prop_chi_squared_matches_batch(ops in op_strategy(), commit_every in 1usize..3) {
        for pruning in [
            IncrementalPruning::blast(),
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp2),
        ] {
            check_dirty_sequence(
                &ops,
                commit_every,
                ChiSquaredWeigher::without_entropy(),
                pruning,
                CleaningConfig::default(),
                &format!("chi2/{}", pruning.label()),
            );
        }
    }

    /// Clean-clean streams: inserts land on either side of the fixed
    /// separator, updates/deletes pick any live profile.
    #[test]
    fn prop_clean_clean_matches_batch(ops in op_strategy(), commit_every in 1usize..4) {
        const CAPACITY: u32 = 8;
        for algorithm in [PruningAlgorithm::Wnp1, PruningAlgorithm::Cep] {
            let mut p = IncrementalPipeline::clean_clean(
                CAPACITY,
                WeightingScheme::Js,
                IncrementalPruning::Traditional(algorithm),
                CleaningConfig::default(),
            );
            let mut ids: Vec<ProfileId> = Vec::new();
            let mut inserted0 = 0u32;
            let mut since = 0usize;
            for (step, (kind, target, tokens)) in ops.iter().enumerate() {
                let value = value_of(tokens);
                let live: Vec<ProfileId> = ids
                    .iter()
                    .copied()
                    .filter(|&id| p.store().is_live(id))
                    .collect();
                match kind % 4 {
                    0 | 3 => {
                        // Alternate sides; overflow of E1 falls back to E2.
                        let source = if kind % 4 == 0 && inserted0 < CAPACITY {
                            inserted0 += 1;
                            SourceId(0)
                        } else {
                            SourceId(1)
                        };
                        let id = p.insert(
                            source,
                            &format!("s{}p{}", source.0, ids.len()),
                            [("text", value.as_str())],
                        );
                        ids.push(id);
                    }
                    1 if !live.is_empty() => {
                        let id = live[*target as usize % live.len()];
                        p.update(id, [("text", value.as_str())]);
                    }
                    2 if !live.is_empty() => {
                        let id = live[*target as usize % live.len()];
                        p.delete(id);
                    }
                    _ => {}
                }
                since += 1;
                if since >= commit_every {
                    since = 0;
                    p.commit();
                    prop_assert_eq!(
                        p.retained().pairs(),
                        p.batch_retained().pairs(),
                        "{} step {}",
                        algorithm.label(),
                        step
                    );
                }
            }
            if p.has_pending() {
                p.commit();
                prop_assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
            }
        }
    }
}

/// The full 6 × 5 grid (plus χ² × BLAST pruning) on one scripted sequence
/// that exercises insert, co-occurrence growth, update and delete — the
/// acceptance grid, deterministic and exhaustive.
#[test]
fn scripted_sequence_full_grid() {
    let ops: Vec<Op> = vec![
        (0, 0, vec![0, 1, 2]),    // insert p0: alpha beta gamma
        (0, 0, vec![0, 1, 3]),    // insert p1: alpha beta delta
        (0, 0, vec![2, 3, 4]),    // insert p2: gamma delta epsilon
        (0, 0, vec![0, 1, 2, 3]), // insert p3: alpha beta gamma delta
        (1, 1, vec![5, 6]),       // update p1: zeta eta (leaves the community)
        (0, 0, vec![5, 6, 7]),    // insert p4: zeta eta theta
        (2, 0, vec![0]),          // delete p0
        (0, 0, vec![0, 2, 8]),    // insert p5: alpha gamma iota
        (1, 2, vec![0, 1]),       // update some live profile
        (2, 1, vec![0]),          // delete another
        (0, 0, vec![1, 2, 9]),    // insert p6: beta gamma kappa
    ];
    for commit_every in [1usize, 4] {
        for scheme in WeightingScheme::ALL {
            for algorithm in PruningAlgorithm::ALL {
                check_dirty_sequence(
                    &ops,
                    commit_every,
                    scheme,
                    IncrementalPruning::Traditional(algorithm),
                    CleaningConfig::default(),
                    &format!("grid {}/{}", scheme.name(), algorithm.label()),
                );
            }
        }
        check_dirty_sequence(
            &ops,
            commit_every,
            ChiSquaredWeigher::without_entropy(),
            IncrementalPruning::blast(),
            CleaningConfig::default(),
            "grid chi2/blast",
        );
    }
}

/// Drives a **drift-heavy** insert history — bursts whose hub token and
/// chained pair tokens move |B| and Σ|b| monotonically for many commits —
/// asserting batch parity at every commit and returning the repair-ladder
/// tier counts over the post-initialisation commits
/// `(dirty, reweigh, full)`.
fn drift_tier_counts(
    weigher: impl EdgeWeigher + Send + Clone + 'static,
    pruning: IncrementalPruning,
    burst: usize,
    label: &str,
) -> (usize, usize, usize) {
    let mut p = IncrementalPipeline::dirty(weigher, pruning, CleaningConfig::default());
    let mut tiers = (0usize, 0usize, 0usize);
    let mut commits = 0usize;
    let mut i = 0usize;
    while i < 24 {
        for _ in 0..burst.max(1) {
            // p_i shares a hub token with everyone and chains c_{i-1}–c_i
            // with its predecessor: every burst emits new blocks, so |B|
            // and Σ|b| grow monotonically while the dirty neighbourhood
            // stays local.
            let text = format!("alpha c{} c{}", i.saturating_sub(1), i);
            p.insert(SourceId(0), &format!("p{i}"), [("text", text.as_str())]);
            i += 1;
        }
        let out = p.commit();
        commits += 1;
        if commits > 1 {
            match out.stats.tier {
                RepairTier::Dirty => tiers.0 += 1,
                RepairTier::Reweigh => tiers.1 += 1,
                RepairTier::Full => tiers.2 += 1,
            }
        }
        assert_eq!(
            p.retained().pairs(),
            p.batch_retained().pairs(),
            "{label}: drift parity at commit {commits}"
        );
    }
    tiers
}

/// The scheme-equivalence stress suite over drifting histories: all 5
/// traditional schemes plus χ², across all 6 traditional prunings plus
/// BLAST's own — batch parity at every commit, and the repair-ladder
/// guarantee that **no** scheme/pruning pair degrades to the full tier
/// under drift. CNP's per-node budget k is a drifting global like any
/// other: a k move promotes the commit to the reweigh tier (top-k lists
/// re-derived from the cached adjacency), never to a degraded full pass.
#[test]
fn drifting_statistics_stay_off_the_full_tier() {
    let prunings = {
        let mut v: Vec<IncrementalPruning> = PruningAlgorithm::ALL
            .iter()
            .map(|&a| IncrementalPruning::Traditional(a))
            .collect();
        v.push(IncrementalPruning::blast());
        v
    };
    for &burst in &[1usize, 3] {
        for pruning in &prunings {
            let cnp = matches!(
                pruning,
                IncrementalPruning::Traditional(PruningAlgorithm::Cnp1)
                    | IncrementalPruning::Traditional(PruningAlgorithm::Cnp2)
            );
            // Local schemes must never leave the dirty tier — except under
            // CNP, whose budget moves are exactly the reweigh-tier drift.
            for scheme in [
                WeightingScheme::Cbs,
                WeightingScheme::Arcs,
                WeightingScheme::Js,
            ] {
                let label = format!("{}/{} burst={burst}", scheme.name(), pruning.label());
                let (_, reweigh, full) = drift_tier_counts(scheme, *pruning, burst, &label);
                if !cnp {
                    assert_eq!(reweigh, 0, "{label}: local scheme on the reweigh tier");
                }
                assert_eq!(full, 0, "{label}: local scheme degraded");
            }
            // Global-statistic schemes: tier 2 engages, tier 3 never.
            for scheme in [WeightingScheme::Ejs, WeightingScheme::Ecbs] {
                let label = format!("{}/{} burst={burst}", scheme.name(), pruning.label());
                let (_, reweigh, full) = drift_tier_counts(scheme, *pruning, burst, &label);
                assert!(reweigh > 0, "{label}: drift never hit the reweigh tier");
                assert_eq!(full, 0, "{label}: global scheme degraded under drift");
            }
            let label = format!("chi2/{} burst={burst}", pruning.label());
            let (_, reweigh, full) = drift_tier_counts(
                ChiSquaredWeigher::without_entropy(),
                *pruning,
                burst,
                &label,
            );
            assert!(reweigh > 0, "{label}: drift never hit the reweigh tier");
            assert_eq!(full, 0, "{label}: χ² degraded under drift");
        }
    }
}

/// The CNP budget-move pin: progressively token-richer profiles drift the
/// average assignment count — CNP's default per-node budget k — across
/// integer boundaries repeatedly. Every budget move must land on the
/// reweigh tier (`commits_full == 0` after initialisation, top-k lists
/// re-derived from the cached adjacency, containment counters adjusted in
/// place) and stay bit-identical to batch at every commit. Under CBS
/// (no other global statistic) the reweigh count *is* the budget-move
/// count, so `reweigh ≥ 2` proves the budget actually moved.
#[test]
fn cnp_budget_moves_stay_off_the_full_tier() {
    for algorithm in [PruningAlgorithm::Cnp1, PruningAlgorithm::Cnp2] {
        for scheme in [WeightingScheme::Cbs, WeightingScheme::Ecbs] {
            let label = format!("{}/{} budget drift", scheme.name(), algorithm.label());
            let mut p = IncrementalPipeline::dirty(
                scheme,
                IncrementalPruning::Traditional(algorithm),
                CleaningConfig::default(),
            );
            let (mut reweigh, mut full) = (0usize, 0usize);
            for i in 0..40usize {
                let text = (0..=(2 + i))
                    .map(|t| format!("h{t}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                p.insert(SourceId(0), &format!("p{i}"), [("text", text.as_str())]);
                let out = p.commit();
                if i > 0 {
                    match out.stats.tier {
                        RepairTier::Reweigh => reweigh += 1,
                        RepairTier::Full => full += 1,
                        RepairTier::Dirty => {}
                    }
                }
                assert_eq!(
                    p.retained().pairs(),
                    p.batch_retained().pairs(),
                    "{label}: batch parity at commit {i}"
                );
            }
            assert_eq!(full, 0, "{label}: a budget move degraded to the full tier");
            if matches!(scheme, WeightingScheme::Cbs) {
                assert!(
                    reweigh >= 2,
                    "{label}: the budget never moved — the history no longer drifts k \
                     (reweigh commits: {reweigh})"
                );
            }
        }
    }
}

/// Regression: an EJS commit whose edge **births and deaths balance**
/// (|E_G| unchanged) still changes the degrees of dirty nodes — and those
/// nodes' edges reach *clean* neighbours whose node-centric thresholds /
/// top-k lists average over the moved weights. Such a commit must promote
/// to the reweigh tier (an early ladder draft promoted only on |E_G|
/// movement and broke parity here, caught by review fuzzing).
#[test]
fn balanced_degree_churn_promotes_ejs_to_reweigh() {
    for pruning in [
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp2),
        IncrementalPruning::Traditional(PruningAlgorithm::Cnp1),
        IncrementalPruning::blast(),
    ] {
        let mut p =
            IncrementalPipeline::dirty(WeightingScheme::Ejs, pruning, CleaningConfig::none());
        // Topology: blocks p = {b, u, a, c}, m = {b, u}, r = {a, v},
        // s = {v, w}, x = {t0, t1} — |B| = 5, |E_G| = 9.
        let rows = [
            ("b", "p m z1"),
            ("u", "p m q"),
            ("a", "p r"),
            ("c", "p z4"),
            ("v", "r s"),
            ("w", "s z2"),
            ("t0", "x y1"),
            ("t1", "x y2"),
        ];
        let mut ids = Vec::new();
        for (id, text) in rows {
            ids.push(p.insert(SourceId(0), id, [("text", text)]));
        }
        p.commit();
        let edges_before = p.snapshot().total_edges();
        let blocks_before = p.snapshot().total_blocks();
        assert_eq!(
            p.retained().pairs(),
            p.batch_retained().pairs(),
            "{}: seed parity",
            pruning.label()
        );

        // u leaves block p (which stays valid as {b, a, c}) and joins the
        // existing block x: edges (u,a), (u,c) die, edges (u,t0), (u,t1)
        // are born — |B| and |E_G| both unchanged, but deg(a) and deg(c)
        // dropped while their own block lists stayed put. Node v (sharing
        // only the untouched block r with a) stays outside the dirty set,
        // yet weight(v,a) moved through deg(a): tier 1 would leave θ_v
        // stale.
        p.update(ids[1], [("text", "m q x")]);
        let out = p.commit();
        assert_eq!(
            p.snapshot().total_edges(),
            edges_before,
            "{}: births and deaths balance",
            pruning.label()
        );
        assert_eq!(
            p.snapshot().total_blocks(),
            blocks_before,
            "{}: |B| untouched",
            pruning.label()
        );
        assert_eq!(
            out.stats.tier,
            RepairTier::Reweigh,
            "{}: balanced degree churn must reweigh",
            pruning.label()
        );
        assert_eq!(
            p.retained().pairs(),
            p.batch_retained().pairs(),
            "{}: parity after balanced churn",
            pruning.label()
        );
    }
}

/// The degraded-full tier itself, exercised on demand: now that EJS/χ²
/// drift no longer reaches it, [`IncrementalPipeline::force_full_repair`]
/// pins the flip-emitting fallback against batch so it cannot rot —
/// with pending mutations (flips must replay consistently) and without
/// (a forced re-pass over unchanged state must emit nothing).
#[test]
fn forced_degradation_pins_full_tier_against_batch() {
    type MakePipeline = Box<dyn Fn() -> IncrementalPipeline>;
    let configs: Vec<(MakePipeline, &str)> = vec![
        (
            Box::new(|| {
                IncrementalPipeline::dirty(
                    WeightingScheme::Cbs,
                    IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
                    CleaningConfig::default(),
                )
            }),
            "cbs/wnp1",
        ),
        (
            Box::new(|| {
                IncrementalPipeline::dirty(
                    WeightingScheme::Ejs,
                    IncrementalPruning::Traditional(PruningAlgorithm::Wep),
                    CleaningConfig::default(),
                )
            }),
            "ejs/wep",
        ),
        (
            Box::new(|| {
                IncrementalPipeline::dirty(
                    WeightingScheme::Ecbs,
                    IncrementalPruning::Traditional(PruningAlgorithm::Cnp1),
                    CleaningConfig::default(),
                )
            }),
            "ecbs/cnp1",
        ),
        (
            Box::new(|| {
                IncrementalPipeline::dirty(
                    ChiSquaredWeigher::without_entropy(),
                    IncrementalPruning::blast(),
                    CleaningConfig::default(),
                )
            }),
            "chi2/blast",
        ),
    ];
    for (make, label) in configs {
        let mut p = make();
        let mut mirror: BTreeSet<(ProfileId, ProfileId)> = BTreeSet::new();
        let replay = |out: &blast_incremental::CommitOutcome,
                      mirror: &mut BTreeSet<(ProfileId, ProfileId)>| {
            for r in &out.delta.retracted {
                assert!(mirror.remove(r), "{label}: retracted unknown pair");
            }
            for a in &out.delta.added {
                assert!(mirror.insert(*a), "{label}: added duplicate pair");
            }
        };
        for (i, text) in [
            "alpha beta gamma",
            "alpha beta delta",
            "gamma delta epsilon",
            "alpha gamma zeta",
        ]
        .iter()
        .enumerate()
        {
            p.insert(SourceId(0), &format!("p{i}"), [("text", *text)]);
            let out = p.commit();
            replay(&out, &mut mirror);
        }

        // Forced degradation *with* pending work: every node is marked,
        // the whole graph re-accumulated, and the emitted flips must still
        // replay the previous candidate set into the batch one.
        p.insert(SourceId(0), "p4", [("text", "beta epsilon eta")]);
        p.force_full_repair();
        let out = p.commit();
        assert_eq!(out.stats.tier, RepairTier::Full, "{label}: tier forced");
        assert_eq!(
            out.stats.dirty_nodes,
            p.snapshot().total_profiles() as usize,
            "{label}: every node marked on the full tier"
        );
        replay(&out, &mut mirror);
        let replayed: Vec<_> = mirror.iter().copied().collect();
        assert_eq!(
            replayed,
            p.retained().pairs().to_vec(),
            "{label}: forced-full flips diverged from the candidate set"
        );
        assert_eq!(
            p.retained().pairs(),
            p.batch_retained().pairs(),
            "{label}: forced-full parity"
        );

        // Forced degradation *without* pending work: the identical
        // flip-emitting path over unchanged state must emit nothing.
        p.force_full_repair();
        let out = p.commit();
        assert_eq!(out.stats.tier, RepairTier::Full, "{label}: tier forced");
        assert!(
            out.delta.is_empty(),
            "{label}: idempotent full pass emitted flips"
        );
        assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
    }
}

/// A fixed loose-schema partitioning (as extracted from a seed batch)
/// drives loosely schema-aware blocking and entropy weighting through the
/// incremental path; the contract holds against the batch run with the
/// same partitioning.
#[test]
fn fixed_partitioning_stream_matches_batch() {
    use blast_core::schema::extraction::{LooseSchemaConfig, LooseSchemaExtractor};
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::input::ErInput;

    // Seed data with two attribute "columns" that share vocabulary so LMI
    // induces a cluster.
    let mut seed = EntityCollection::new(SourceId(0));
    for i in 0..12 {
        seed.push_pairs(
            &format!("s{i}"),
            [
                ("name", &*format!("person number {i} alpha beta")),
                ("label", &*format!("person number {i} alpha beta")),
                ("year", &*format!("{}", 1990 + i % 4)),
            ],
        );
    }
    let seed_input = ErInput::dirty(seed);
    let schema = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&seed_input);

    let mut p = IncrementalPipeline::dirty(
        ChiSquaredWeigher::new(),
        IncrementalPruning::blast(),
        CleaningConfig::default(),
    )
    .with_partitioning(schema.partitioning.clone());
    // Align the store's attribute ids with the seed collection the
    // partitioning was extracted from.
    let seed_collection = seed_input.collection(SourceId(0));
    p.adopt_attributes(
        SourceId(0),
        seed_collection
            .attribute_ids()
            .map(|a| seed_collection.attribute_name(a)),
    );

    let rows = [
        vec![("name", "john abram person"), ("year", "1990")],
        vec![("label", "john abram person"), ("year", "1990")],
        vec![("name", "ellen smith alpha"), ("year", "1991")],
        vec![("label", "ellen smith alpha"), ("year", "1991")],
        vec![("name", "mary jones beta"), ("year", "1992")],
    ];
    let mut ids = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        ids.push(p.insert(SourceId(0), &format!("p{i}"), row.iter().copied()));
        p.commit();
        assert_eq!(
            p.retained().pairs(),
            p.batch_retained().pairs(),
            "partitioned step {i}"
        );
    }
    p.update(ids[0], [("name", "jon abram person"), ("year", "1990")]);
    p.delete(ids[2]);
    p.commit();
    assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
}
