//! Property tests for the delta-aware decision structures: the ordered
//! weight index ([`OrderedWeightIndex`]) against a naive re-sort
//! reference, over random insert / remove / re-weight sequences.
//!
//! The index's contracts (the decision stage leans on all of them):
//!
//! * the key order is `(weight rank bits, u, v)` — descending weight with
//!   f64-*bit* granularity, `-0.0` folded onto `+0.0`, ascending `(u, v)`
//!   among bit-exact ties — identical to batch CEP's sort order;
//! * `select(K-1)` is batch CEP's cutoff **including the tie-break at the
//!   rank-K boundary** (duplicate weights cut mid-tie by `(u, v)`);
//! * the running Σw is exact, so WEP's mean is bit-identical to the batch
//!   accumulator whatever mutation history produced the live edge set;
//! * `for_each_between(old, new)` enumerates exactly the edges whose
//!   mean-threshold retention flips when Θ moves.

use blast_graph::exact_sum::ExactSum;
use blast_graph::pruning::common::weight_rank_bits;
use blast_graph::pruning::{Cep, Wep};
use blast_incremental::{EdgeKey, OrderedWeightIndex};
use proptest::prelude::*;

/// One scripted mutation over a bounded pair universe: `kind % 3` selects
/// insert / remove / re-weight, `(a, b)` the pair, `w` the weight in
/// quarter steps (plenty of duplicates).
type Op = (u8, u8, u8, u8);

/// Applies ops to the index and a naive mirror, returning the mirror as
/// the live edge list (canonical pairs, unsorted).
fn drive(ops: &[Op], idx: &mut OrderedWeightIndex) -> Vec<(u32, u32, f64)> {
    let mut live: Vec<(u32, u32, f64)> = Vec::new();
    for &(kind, a, b, w) in ops {
        let (a, b) = (a as u32 % 12, b as u32 % 12);
        if a == b {
            continue;
        }
        let (a, b) = (a.min(b), a.max(b));
        let w = w as f64 / 4.0;
        let pos = live.iter().position(|&(x, y, _)| (x, y) == (a, b));
        match (kind % 3, pos) {
            (0, None) => {
                idx.insert(a, b, w);
                live.push((a, b, w));
            }
            (1, Some(i)) => {
                let (_, _, old) = live.swap_remove(i);
                idx.remove(a, b, old);
            }
            (2, Some(i)) => {
                let old = live[i].2;
                idx.remove(a, b, old);
                idx.insert(a, b, w);
                live[i].2 = w;
            }
            _ => {}
        }
    }
    live
}

/// Signed quarter-step weights with an explicit `-0.0` (w = 1), so
/// duplicate-weight and signed-zero ties are routine, not rare.
fn signed_quarter(w: u8) -> f64 {
    if w == 1 {
        -0.0
    } else {
        (w as f64 - 8.0) / 4.0
    }
}

/// [`drive`] with [`signed_quarter`] weights, mutating `live` in place —
/// the driver of the bulk-vs-incremental construction property.
fn apply_signed(ops: &[Op], idx: &mut OrderedWeightIndex, live: &mut Vec<(u32, u32, f64)>) {
    for &(kind, a, b, w) in ops {
        let (a, b) = (a as u32 % 12, b as u32 % 12);
        if a == b {
            continue;
        }
        let (a, b) = (a.min(b), a.max(b));
        let w = signed_quarter(w);
        let pos = live.iter().position(|&(x, y, _)| (x, y) == (a, b));
        match (kind % 3, pos) {
            (0, None) => {
                idx.insert(a, b, w);
                live.push((a, b, w));
            }
            (1, Some(i)) => {
                let (_, _, old) = live.swap_remove(i);
                idx.remove(a, b, old);
            }
            (2, Some(i)) => {
                let old = live[i].2;
                idx.remove(a, b, old);
                idx.insert(a, b, w);
                live[i].2 = w;
            }
            _ => {}
        }
    }
}

fn drive_signed(ops: &[Op], idx: &mut OrderedWeightIndex) -> Vec<(u32, u32, f64)> {
    let mut live = Vec::new();
    apply_signed(ops, idx, &mut live);
    live
}

/// The pre-order `(key, weight bits)` fingerprint: a BST's pre-order
/// determines its structure, so equal fingerprints mean equal trees.
fn shape(idx: &OrderedWeightIndex) -> Vec<(EdgeKey, u64)> {
    let mut v = Vec::new();
    idx.for_each_preorder(&mut |k, w| v.push((k, w.to_bits())));
    v
}

/// The naive reference ranking: weight descending (bit-exact through the
/// rank map), then ascending `(u, v)` — a full re-sort per query, the cost
/// the index exists to avoid.
fn reference_order(live: &[(u32, u32, f64)]) -> Vec<(u32, u32, f64)> {
    let mut sorted = live.to_vec();
    sorted.sort_by_key(|&(u, v, w)| (weight_rank_bits(w), u, v));
    sorted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Order statistics and the running exact sum match the re-sort
    /// reference after any mutation history.
    #[test]
    fn prop_select_and_sum_match_resort_reference(
        ops in proptest::collection::vec(
            (0u8..3, 0u8..255, 0u8..255, 0u8..12), 0..60),
    ) {
        let mut idx = OrderedWeightIndex::new();
        let live = drive(&ops, &mut idx);
        let sorted = reference_order(&live);

        prop_assert_eq!(idx.len(), live.len());
        for (rank, &(u, v, w)) in sorted.iter().enumerate() {
            let key = idx.select(rank).expect("rank within len");
            prop_assert_eq!((key.u, key.v), (u, v), "rank {}", rank);
            prop_assert_eq!(key.rank, weight_rank_bits(w));
            prop_assert_eq!(idx.prefix_len(key), rank + 1);
        }
        prop_assert_eq!(idx.select(live.len()), None);

        // Σw bit-identical to a from-scratch exact accumulation of the
        // survivors — the WEP-mean contract.
        let fresh = ExactSum::of(live.iter().map(|&(_, _, w)| w));
        prop_assert_eq!(idx.sum().round().to_bits(), fresh.round().to_bits());
        prop_assert_eq!(
            Wep::mean_from_sum(idx.sum(), idx.len()).map(f64::to_bits),
            Wep::mean_from_sum(&fresh, live.len()).map(f64::to_bits),
        );
    }

    /// The rank-K prefix equals batch CEP bit-for-bit, for every K — the
    /// tie-break at the rank-K boundary included (quarter-step weights
    /// guarantee the boundary regularly cuts through duplicate weights).
    #[test]
    fn prop_rank_k_prefix_is_batch_cep(
        ops in proptest::collection::vec(
            (0u8..3, 0u8..255, 0u8..255, 0u8..8), 0..50),
    ) {
        let mut idx = OrderedWeightIndex::new();
        let live = drive(&ops, &mut idx);
        // Batch CEP consumes the canonical (u, v)-sorted edge list.
        let mut edges = live.clone();
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        for k in 0..=live.len() + 1 {
            let frontier = if k == 0 {
                None
            } else {
                idx.select(k.min(idx.len()).wrapping_sub(1))
            };
            let incremental = idx.prefix_pairs(frontier);
            let batch = Cep::prune_edges(k as u64, &edges);
            prop_assert_eq!(
                incremental.pairs(),
                batch.pairs(),
                "rank-{} prefix diverged from batch CEP",
                k
            );
        }
    }

    /// The bulk from-sorted-array construction ([`OrderedWeightIndex::rebuild`])
    /// is **bit-identical** to insert-by-insert construction: same shape
    /// (pre-order fingerprint), same traversal order, same exact Σw —
    /// across random mutation histories with duplicate weights (quarter
    /// steps), negative weights and `-0.0` ties, and whatever the live
    /// list's arrival order. The two indexes also stay interchangeable
    /// under further mutation (the rebuild leaves no stale free-list or
    /// size state behind).
    #[test]
    fn prop_bulk_rebuild_matches_incremental_construction(
        ops in proptest::collection::vec(
            (0u8..3, 0u8..255, 0u8..255, 0u8..16), 0..60),
        extra in proptest::collection::vec(
            (0u8..3, 0u8..255, 0u8..255, 0u8..16), 0..12),
    ) {
        let mut inc = OrderedWeightIndex::new();
        let live = drive_signed(&ops, &mut inc);
        let mut bulk = OrderedWeightIndex::new();
        // The live list arrives in mutation order, not key order — the
        // rebuild owns the sort.
        bulk.rebuild(live.iter().copied());

        prop_assert_eq!(bulk.len(), inc.len());
        prop_assert_eq!(shape(&bulk), shape(&inc), "pre-order fingerprint");
        prop_assert_eq!(
            bulk.sum().round().to_bits(),
            inc.sum().round().to_bits(),
            "exact Σw"
        );

        // Further mutations on top of both constructions converge too.
        let mut live_inc = live.clone();
        apply_signed(&extra, &mut inc, &mut live_inc);
        let mut live_bulk = live;
        apply_signed(&extra, &mut bulk, &mut live_bulk);
        prop_assert_eq!(shape(&bulk), shape(&inc), "post-rebuild mutation");
        prop_assert_eq!(bulk.sum().round().to_bits(), inc.sum().round().to_bits());
    }

    /// Mean-threshold crossing enumeration: when Θ moves from θ_old to
    /// θ_new, `for_each_between` yields exactly the edges whose `w ≥ Θ`
    /// retention flips — no clean survivor, no non-crosser.
    #[test]
    fn prop_band_enumerates_exact_mean_crossers(
        ops in proptest::collection::vec(
            (0u8..3, 0u8..255, 0u8..255, 0u8..12), 1..50),
        theta_old in 0u8..14,
        theta_new in 0u8..14,
    ) {
        let mut idx = OrderedWeightIndex::new();
        let live = drive(&ops, &mut idx);
        let (theta_old, theta_new) = (theta_old as f64 / 4.0, theta_new as f64 / 4.0);
        let f_old = Some(EdgeKey::mean_bound(theta_old));
        let f_new = Some(EdgeKey::mean_bound(theta_new));

        let mut band: Vec<(u32, u32)> = Vec::new();
        if f_old != f_new {
            let lo = f_old.min(f_new);
            if let Some(hi) = f_old.max(f_new) {
                idx.for_each_between(lo, hi, &mut |key, w| {
                    let was = Wep::retains(w, theta_old);
                    let now = Wep::retains(w, theta_new);
                    if was != now {
                        band.push((key.u, key.v));
                    }
                });
            }
        }
        band.sort_unstable();

        let mut naive: Vec<(u32, u32)> = live
            .iter()
            .filter(|&&(_, _, w)| Wep::retains(w, theta_old) != Wep::retains(w, theta_new))
            .map(|&(u, v, _)| (u, v))
            .collect();
        naive.sort_unstable();
        prop_assert_eq!(band, naive);
    }
}

/// The bulk construction's tie handling pinned deterministically:
/// duplicate weights and `-0.0`/`+0.0` ties produce the exact tree the
/// insert path produces, and the rebuilt index answers order-statistic
/// queries identically.
#[test]
fn bulk_rebuild_pins_duplicate_and_signed_zero_ties() {
    let edges = [
        (5, 6, 0.0),
        (0, 1, -0.0),
        (2, 3, 0.0),
        (7, 8, -1.0),
        (4, 9, 1.0),
        (1, 2, 1.0),
        (3, 7, -0.0),
    ];
    let mut inc = OrderedWeightIndex::new();
    for &(u, v, w) in &edges {
        inc.insert(u, v, w);
    }
    let mut bulk = OrderedWeightIndex::new();
    bulk.rebuild(edges.iter().copied());
    assert_eq!(shape(&bulk), shape(&inc), "tie-ridden shapes agree");
    for rank in 0..=edges.len() {
        assert_eq!(bulk.select(rank), inc.select(rank), "rank {rank}");
    }
    assert_eq!(bulk.sum().round().to_bits(), inc.sum().round().to_bits());
    let mut empty = OrderedWeightIndex::new();
    empty.rebuild(std::iter::empty());
    assert_eq!(empty.len(), 0);
    assert_eq!(empty.select(0), None);
}

/// f64-bit ordering corner cases pinned deterministically: duplicate
/// weights cut by `(u, v)`, `-0.0` ties with `+0.0`, subnormals and
/// negative weights ordered correctly.
#[test]
fn bit_order_corner_cases() {
    let mut idx = OrderedWeightIndex::new();
    idx.insert(5, 6, 0.0);
    idx.insert(0, 1, -0.0);
    idx.insert(2, 3, f64::from_bits(1)); // smallest subnormal
    idx.insert(7, 8, -1.0);
    idx.insert(4, 9, 1.0);

    let order: Vec<(u32, u32)> = (0..idx.len())
        .map(|r| idx.select(r).map(|k| (k.u, k.v)).unwrap())
        .collect();
    // 1.0 first, then the subnormal, then the two zeros tied (−0.0
    // normalised, so (0,1) precedes (5,6) by pair order), then −1.0.
    assert_eq!(order, vec![(4, 9), (2, 3), (0, 1), (5, 6), (7, 8)]);

    // A frontier at the K=3 boundary cuts through the zero tie exactly
    // like batch CEP's (u, v) tie-break.
    let frontier = idx.select(2);
    assert_eq!(frontier.map(|k| (k.u, k.v)), Some((0, 1)));
    let retained = idx.prefix_pairs(frontier);
    assert_eq!(retained.len(), 3);
    assert!(!retained.contains(
        blast_datamodel::entity::ProfileId(5),
        blast_datamodel::entity::ProfileId(6)
    ));
}
