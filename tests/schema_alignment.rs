//! §4.1 "Blast vs. Schema-based Blocking": on fully-mappable datasets the
//! attribute partitioning induced by LMI is equivalent to the manual schema
//! alignment, so loosely schema-aware blocking and Standard Blocking yield
//! the same blocks — and the same PC/PQ.

use blast::blocking::{
    BlockFiltering, BlockPurging, SchemaAlignment, StandardBlocking, TokenBlocking,
};
use blast::core::schema::extraction::{LooseSchemaConfig, LooseSchemaExtractor};
use blast::datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast::datamodel::{ErInput, SourceId};
use blast::metrics::evaluate_blocks;

#[test]
fn lmi_partitioning_matches_manual_alignment_on_ar1() {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.1);
    let (input, gt) = generate_clean_clean(&spec);
    let ErInput::CleanClean { d1, d2 } = &input else {
        unreachable!()
    };

    // Manual alignment (the ground-truth schema mapping of the generator).
    let mut alignment = SchemaAlignment::new();
    for (a, b) in [
        ("title", "name"),
        ("authors", "writers"),
        ("venue", "booktitle"),
        ("year", "date"),
    ] {
        alignment.align([(SourceId(0), a), (SourceId(1), b)], &[d1, d2]);
    }
    let standard = StandardBlocking::new().build(&input, &alignment);

    // LMI-induced partitioning.
    let info = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&input);
    assert_eq!(info.clusters, 4, "LMI must recover the 4 correspondences");
    let loose = TokenBlocking::new().build_with(&input, &info.partitioning);

    // Same cleaning on both.
    let clean = |blocks| BlockFiltering::new().filter(&BlockPurging::new().purge(&blocks));
    let standard = clean(standard);
    let loose = clean(loose);

    let q_standard = evaluate_blocks(&standard, &gt);
    let q_loose = evaluate_blocks(&loose, &gt);

    // "We experimentally observed that they achieve the exact same PC and
    // PQ."
    assert!(
        (q_standard.pc - q_loose.pc).abs() < 1e-9,
        "PC: standard {} vs loose {}",
        q_standard.pc,
        q_loose.pc
    );
    assert!(
        (q_standard.pq - q_loose.pq).abs() < 1e-9,
        "PQ: standard {} vs loose {}",
        q_standard.pq,
        q_loose.pq
    );
    assert_eq!(
        standard.aggregate_cardinality(),
        loose.aggregate_cardinality()
    );
}

/// The loosely schema-aware blocks ("L") dominate plain Token Blocking
/// ("T") on PQ at equal (or near-equal) PC — Table 3's pattern.
#[test]
fn lmi_blocking_improves_over_token_blocking() {
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.1);
    let (input, gt) = generate_clean_clean(&spec);

    let t_blocks = TokenBlocking::new().build(&input);
    let info = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&input);
    let l_blocks = TokenBlocking::new().build_with(&input, &info.partitioning);

    let q_t = evaluate_blocks(&t_blocks, &gt);
    let q_l = evaluate_blocks(&l_blocks, &gt);

    assert!(
        q_l.pq >= q_t.pq,
        "L PQ {} must be ≥ T PQ {}",
        q_l.pq,
        q_t.pq
    );
    assert!(
        q_l.pc >= q_t.pc - 0.01,
        "L PC {} must not drop below T PC {}",
        q_l.pc,
        q_t.pc
    );
    assert!(
        l_blocks.aggregate_cardinality() <= t_blocks.aggregate_cardinality(),
        "key disambiguation can only shrink blocks"
    );
}
