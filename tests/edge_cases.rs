//! Failure injection and degenerate inputs: the pipeline must degrade
//! gracefully, never panic.

use blast::blocking::TokenBlocking;
use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::datamodel::{EntityCollection, EntityProfile, ErInput, SourceId};

#[test]
fn empty_collections() {
    let input = ErInput::clean_clean(
        EntityCollection::new(SourceId(0)),
        EntityCollection::new(SourceId(1)),
    );
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    assert!(outcome.pairs.is_empty());
    assert_eq!(outcome.schema.columns, 0);
}

#[test]
fn one_side_empty() {
    let mut d1 = EntityCollection::new(SourceId(0));
    d1.push_pairs("a", [("name", "john smith")]);
    let input = ErInput::clean_clean(d1, EntityCollection::new(SourceId(1)));
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    assert!(
        outcome.pairs.is_empty(),
        "no cross-source comparisons possible"
    );
}

#[test]
fn blank_profiles_are_tolerated() {
    let mut d1 = EntityCollection::new(SourceId(0));
    d1.push(EntityProfile::new("blank1"));
    d1.push_pairs("a", [("name", "shared token here")]);
    let mut d2 = EntityCollection::new(SourceId(1));
    d2.push(EntityProfile::new("blank2"));
    d2.push_pairs("b", [("label", "shared token here")]);
    let input = ErInput::clean_clean(d1, d2);
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    // Blank profiles can never be blocked; the real pair can survive.
    for (a, b) in outcome.pairs.iter() {
        assert_ne!(input.profile(a).external_id.as_ref(), "blank1");
        assert_ne!(input.profile(b).external_id.as_ref(), "blank2");
    }
}

#[test]
fn all_identical_profiles() {
    // Every profile identical: blocks cover everything, purging wipes the
    // oversized blocks; the pipeline must not panic either way.
    let mut d = EntityCollection::new(SourceId(0));
    for i in 0..20 {
        d.push_pairs(&format!("p{i}"), [("x", "same same same")]);
    }
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&ErInput::dirty(d));
    // With every block covering the full collection, purging removes them
    // all → no comparisons (precision-first behaviour, not a crash).
    assert!(outcome.pairs.is_empty());
}

#[test]
fn symbol_only_and_unicode_values() {
    let mut d1 = EntityCollection::new(SourceId(0));
    d1.push_pairs(
        "a",
        [("name", "!!! ··· ***"), ("t", "Modène 1985 ↔ Émilie")],
    );
    let mut d2 = EntityCollection::new(SourceId(1));
    d2.push_pairs("b", [("name", "§§§"), ("t", "modène 1985 émilie")]);
    d2.push_pairs(
        "c",
        [("name", "unrelated"), ("t", "totally different words")],
    );
    let input = ErInput::clean_clean(d1, d2);
    let blocks = TokenBlocking::new().build(&input);
    assert!(
        blocks.block_by_label("modène").is_some(),
        "unicode tokens must block"
    );
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    let _ = outcome.pairs.len(); // no panic is the contract here
}

#[test]
fn very_long_values() {
    let long_value = "tok ".repeat(5_000);
    let mut d1 = EntityCollection::new(SourceId(0));
    d1.push_pairs("a", [("text", &*long_value), ("id", "alpha beta")]);
    let mut d2 = EntityCollection::new(SourceId(1));
    d2.push_pairs("b", [("text", &*long_value), ("id", "alpha beta")]);
    let input = ErInput::clean_clean(d1, d2);
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    let _ = outcome.pairs.len();
}

#[test]
fn duplicate_external_ids_do_not_confuse_blocking() {
    let mut d1 = EntityCollection::new(SourceId(0));
    d1.push_pairs("same-id", [("name", "first profile tokens")]);
    d1.push_pairs("same-id", [("name", "second profile tokens")]);
    let mut d2 = EntityCollection::new(SourceId(1));
    d2.push_pairs("same-id", [("name", "first profile tokens")]);
    let input = ErInput::clean_clean(d1, d2);
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    // Blocking operates on global ids, not external ids.
    for (a, b) in outcome.pairs.iter() {
        assert!(a.0 < 2 && b.0 == 2);
    }
}

#[test]
fn single_attribute_sources() {
    let mut d1 = EntityCollection::new(SourceId(0));
    let mut d2 = EntityCollection::new(SourceId(1));
    for i in 0..30 {
        d1.push_pairs(
            &format!("a{i}"),
            [("text", &*format!("record number {i} alpha"))],
        );
        d2.push_pairs(
            &format!("b{i}"),
            [("body", &*format!("record number {i} alpha"))],
        );
    }
    let input = ErInput::clean_clean(d1, d2);
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    assert!(outcome.schema.clusters <= 1);
    assert!(!outcome.pairs.is_empty());
}
