//! Quickstart: the paper's running example (Figures 1–3), end to end.
//!
//! Builds the four profiles of Figure 1a, shows the Token Blocking blocks
//! (Fig. 1b), the blocking graph weights (Fig. 1c), the effect of key
//! disambiguation (Fig. 2) and entropy weighting (Fig. 3), and finally runs
//! the whole BLAST pipeline.
//!
//! Run with: `cargo run --example quickstart`

use blast::blocking::{BlockPurging, TokenBlocking};
use blast::core::pruning::BlastPruning;
use blast::core::schema::attribute_profile::AttributeProfiles;
use blast::core::schema::extraction::{LooseSchemaConfig, LooseSchemaExtractor};
use blast::core::weighting::ChiSquaredWeigher;
use blast::datamodel::{EntityCollection, ErInput, SourceId, Tokenizer};
use blast::graph::GraphSnapshot;

fn figure1_input() -> ErInput {
    let mut d = EntityCollection::new(SourceId(0));
    d.push_pairs(
        "p1",
        [
            ("Name", "John Abram Jr"),
            ("profession", "car seller"),
            ("year", "1985"),
            ("Addr.", "Main street"),
        ],
    );
    d.push_pairs(
        "p2",
        [
            ("FirstName", "Ellen"),
            ("SecondName", "Smith"),
            ("year", "85"),
            ("occupation", "retail"),
            ("mail", "Abram st. 30 NY"),
        ],
    );
    d.push_pairs(
        "p3",
        [
            ("name1", "Jon Jr"),
            ("name2", "Abram"),
            ("birth year", "85"),
            ("job", "car retail"),
            ("Loc", "Main st."),
        ],
    );
    d.push_pairs(
        "p4",
        [
            ("full name", "Ellen Smith"),
            ("b. date", "May 10 1985"),
            ("work info", "retailer"),
            ("loc", "Abram street NY"),
        ],
    );
    ErInput::dirty(d)
}

fn main() {
    let input = figure1_input();

    // ---- Figure 1b: Token Blocking --------------------------------------
    let blocks = TokenBlocking::new().build(&input);
    println!(
        "Figure 1b — Token Blocking produced {} blocks:",
        blocks.len()
    );
    for b in blocks.blocks() {
        let members: Vec<String> = b.profiles.iter().map(|p| format!("p{}", p.0 + 1)).collect();
        println!("  {:<8} {{{}}}", b.label, members.join(", "));
    }

    // ---- Figure 1c: the blocking graph ----------------------------------
    let ctx = GraphSnapshot::build(&blocks);
    println!("\nFigure 1c — co-occurrence weights (|B_ij|):");
    for (u, v) in [(0, 2), (1, 3), (0, 3), (1, 2), (0, 1), (2, 3)] {
        if let Some(acc) = ctx.edge(u, v) {
            println!("  p{}–p{}: {}", u + 1, v + 1, acc.common_blocks);
        }
    }

    // ---- Figure 2: loose schema extraction (LMI) ------------------------
    let profiles = AttributeProfiles::build(&input, &Tokenizer::new());
    let info = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&input);
    println!(
        "\nLMI on the {} attributes found {} cluster(s); aggregate entropies: {:?}",
        profiles.len(),
        info.clusters,
        info.partitioning
            .entropies()
            .iter()
            .map(|e| (e * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let blocks_l = TokenBlocking::new().build_with(&input, &info.partitioning);
    println!(
        "Loosely schema-aware blocking: {} blocks (disambiguated keys split shared tokens)",
        blocks_l.len()
    );
    for b in blocks_l.blocks() {
        if b.label.starts_with("abram") {
            let members: Vec<String> = b.profiles.iter().map(|p| format!("p{}", p.0 + 1)).collect();
            println!("  {:<10} {{{}}}", b.label, members.join(", "));
        }
    }

    // ---- Figure 3: χ²·entropy weighting + BLAST pruning ------------------
    let blocks_l = BlockPurging::new().purge(&blocks_l);
    let entropies = info.partitioning.block_entropies(&blocks_l);
    let ctx = GraphSnapshot::build(&blocks_l).with_block_entropies(entropies);
    let retained = BlastPruning::new().prune(&ctx, &ChiSquaredWeigher::new());
    println!(
        "\nBLAST meta-blocking retained {} comparison(s):",
        retained.len()
    );
    for (a, b) in retained.iter() {
        println!("  p{} ↔ p{}", a.0 + 1, b.0 + 1);
    }
    println!("\n(The matching pairs are p1–p3 and p2–p4 — compare with Figure 3c.)");
}
