//! Product matching (the prd / Abt↔Buy scenario): sparse, noisy product
//! catalogues with disjoint schemas. Demonstrates the loose-schema
//! extraction output (which attribute pairs LMI aligned, with what
//! entropies) and the precision/recall trade-off of the c constant.
//!
//! Run with: `cargo run --release --example product_matching`

use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast::metrics::{evaluate_pairs, fmt_pct};

fn main() {
    let spec = clean_clean_preset(CleanCleanPreset::Prd).scaled(0.5);
    let (input, gt) = generate_clean_clean(&spec);
    println!(
        "Generated {}: {} profiles, {} known matches",
        spec.name,
        input.total_profiles(),
        gt.len()
    );

    // Show what the loose schema extraction discovered.
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    println!(
        "\nLoose schema info: {} clusters over {} attributes (+ glue)",
        outcome.schema.clusters, outcome.schema.columns
    );
    for (cid, (entropy, size)) in outcome
        .schema
        .partitioning
        .entropies()
        .iter()
        .zip(outcome.schema.partitioning.sizes())
        .enumerate()
    {
        let label = if cid == 0 { "glue" } else { "cluster" };
        println!("  {label} #{cid}: {size} attributes, aggregate entropy {entropy:.2}");
    }

    let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
    println!(
        "\nBLAST (c = 2): PC = {}%, PQ = {}%, F1 = {:.3}, ‖B‖ = {}",
        fmt_pct(q.pc, 1),
        fmt_pct(q.pq, 1),
        q.f1,
        outcome.pairs.len()
    );

    // §3.3.2: "a higher value for c can achieve higher PC, but at the
    // expense of PQ."
    println!("\nSweep of the local-threshold constant c:");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>9}",
        "c", "PC%", "PQ%", "F1", "‖B‖"
    );
    for c in [1.0, 1.5, 2.0, 3.0, 5.0, 10.0] {
        let outcome =
            BlastPipeline::new(BlastConfig::default().with_pruning_constants(c, 2.0)).run(&input);
        let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
        println!(
            "{c:>6.1} {:>8} {:>8} {:>8.3} {:>9}",
            fmt_pct(q.pc, 1),
            fmt_pct(q.pq, 1),
            q.f1,
            outcome.pairs.len()
        );
    }
}
