//! Dirty ER (§4.5): deduplicating a single collection — the census / cora /
//! cddb setting of Table 7. BLAST needs no changes: LMI runs over the
//! single attribute space, and the meta-blocking phase is identical.
//!
//! Run with: `cargo run --release --example dirty_deduplication`

use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::datagen::{dirty_preset, generate_dirty, DirtyPreset};
use blast::graph::{MetaBlocker, PruningAlgorithm, WeightingScheme};
use blast::metrics::{evaluate_pairs, fmt_pct};

fn main() {
    for preset in [DirtyPreset::Census, DirtyPreset::Cora] {
        let spec = dirty_preset(preset).scaled(0.5);
        let (input, gt) = generate_dirty(&spec);
        println!(
            "\n=== {} — {} profiles, {} ground-truth matches ===",
            spec.name,
            input.total_profiles(),
            gt.len()
        );

        let pipeline = BlastPipeline::new(BlastConfig::default());
        let outcome = pipeline.run(&input);
        let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
        println!(
            "{:<10} PC = {:>5}%  PQ = {:>5}%  F1 = {:.4}  ‖B‖ = {}",
            "Blast",
            fmt_pct(q.pc, 1),
            fmt_pct(q.pq, 1),
            q.f1,
            outcome.pairs.len()
        );

        // Compare against traditional WNP/CNP on the same (L) blocks.
        let (blocks, _) = pipeline.build_blocks(&input);
        for algorithm in [
            PruningAlgorithm::Wnp1,
            PruningAlgorithm::Wnp2,
            PruningAlgorithm::Cnp1,
            PruningAlgorithm::Cnp2,
        ] {
            let retained = MetaBlocker::new(WeightingScheme::Cbs, algorithm).run(&blocks);
            let q = evaluate_pairs(retained.pairs(), &gt);
            println!(
                "{:<10} PC = {:>5}%  PQ = {:>5}%  F1 = {:.4}  ‖B‖ = {}",
                format!("{} (CBS)", algorithm.label()),
                fmt_pct(q.pc, 1),
                fmt_pct(q.pq, 1),
                q.f1,
                retained.len()
            );
        }
    }
}
