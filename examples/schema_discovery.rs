//! Loose schema discovery at scale: LMI vs Attribute Clustering, with and
//! without the LSH candidate step, on a heterogeneous many-attribute input
//! (the dbp-style setting of §3.1.2 and §4.4).
//!
//! Run with: `cargo run --release --example schema_discovery`

use blast::core::schema::attribute_profile::AttributeProfiles;
use blast::core::schema::candidates::CandidateSource;
use blast::core::schema::extraction::{
    InductionAlgorithm, LooseSchemaConfig, LooseSchemaExtractor,
};
use blast::datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast::datamodel::Tokenizer;
use blast::lsh::scurve::SCurve;
use std::time::Instant;

fn main() {
    // A down-scaled dbp: pooled heterogeneous property space.
    let spec = clean_clean_preset(CleanCleanPreset::DbpScaled).scaled(0.05);
    let (input, _) = generate_clean_clean(&spec);
    let profiles = AttributeProfiles::build(&input, &Tokenizer::new());
    println!(
        "{}: {} attribute columns ({} + {}), {} distinct tokens",
        spec.name,
        profiles.len(),
        profiles.separator(),
        profiles.len() - profiles.separator(),
        profiles.distinct_tokens()
    );

    // The Fig. 5 S-curve of the default LSH configuration.
    let curve = SCurve::sample(5, 30, 10);
    println!(
        "\nLSH (r = 5, b = 30), estimated threshold {:.3}; S-curve:",
        curve.threshold()
    );
    for (s, p) in &curve.points {
        let bar = "#".repeat((p * 40.0).round() as usize);
        println!("  s = {s:.1}  P = {p:>6.3} {bar}");
    }

    // Candidate generation: all pairs vs LSH.
    for (label, source) in [
        ("all pairs", CandidateSource::AllPairs),
        ("LSH r=5 b=30", CandidateSource::lsh_default()),
    ] {
        let t = Instant::now();
        let pairs = source.pairs(&profiles);
        println!(
            "\ncandidates via {label}: {} pairs in {:.2?}",
            pairs.len(),
            t.elapsed()
        );
        for algorithm in [
            InductionAlgorithm::Lmi,
            InductionAlgorithm::AttributeClustering,
        ] {
            let t = Instant::now();
            let info = LooseSchemaExtractor::new(LooseSchemaConfig {
                algorithm,
                candidates: source.clone(),
                ..Default::default()
            })
            .extract_from_profiles(&profiles);
            println!(
                "  {algorithm:?}: {} clusters in {:.2?} (glue entropy {:.2})",
                info.clusters,
                t.elapsed(),
                info.partitioning.entropies()[0]
            );
        }
    }
}
