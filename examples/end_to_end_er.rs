//! Complete entity resolution: BLAST blocking → Jaccard matching →
//! transitive closure into resolved entities — the full workflow the paper
//! positions BLAST inside ("to speed up your favorite Entity Resolution
//! algorithm").
//!
//! Run with: `cargo run --release --example end_to_end_er`

use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::datagen::{dirty_preset, generate_dirty, DirtyPreset};
use blast::matcher::{evaluate_matches, resolve_entities, JaccardMatcher};

fn main() {
    // A census-style dirty collection: people recorded multiple times.
    let spec = dirty_preset(DirtyPreset::Census).scaled(0.5);
    let (input, gt) = generate_dirty(&spec);
    println!(
        "{} profiles, {} true duplicate pairs",
        input.total_profiles(),
        gt.len()
    );

    // 1. BLAST decides which comparisons are worth executing.
    let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
    println!(
        "BLAST retained {} of {} possible comparisons",
        outcome.pairs.len(),
        input.naive_comparisons()
    );

    // 2. The matcher executes only those comparisons.
    let matcher = JaccardMatcher::new(0.55);
    let decision = matcher.match_pairs(&input, &outcome.pairs);
    let quality = evaluate_matches(&decision.matches, &gt);
    println!(
        "matcher: {} comparisons → {} matches (precision {:.2}, recall {:.2}, F1 {:.3})",
        decision.comparisons,
        decision.matches.len(),
        quality.precision,
        quality.recall,
        quality.f1
    );

    // 3. Transitive closure turns pairwise matches into resolved entities.
    let entities = resolve_entities(&decision.matches, input.total_profiles());
    println!(
        "resolved {} multi-profile entities; first three:",
        entities.len()
    );
    for cluster in entities.iter().take(3) {
        let ids: Vec<&str> = cluster
            .iter()
            .map(|p| input.profile(*p).external_id.as_ref())
            .collect();
        println!("  {{{}}}", ids.join(", "));
    }
}
