//! Streaming entity resolution with the incremental meta-blocking
//! subsystem.
//!
//! The batch pipeline answers "which candidate pairs exist in this frozen
//! collection?". A live deduplication service needs the *moving* version of
//! that question: records arrive, get corrected and get withdrawn, and the
//! candidate set must follow — without re-blocking the world on every
//! change. This walkthrough streams the Figure 1 profiles (plus a
//! correction and a deletion) through [`blast::incremental`], printing the
//! candidate-pair delta of every micro-batch, and closes by checking the
//! subsystem's core guarantee: the incremental candidate set is
//! bit-identical to a from-scratch batch run on the final collection.
//!
//! Run with: `cargo run --example streaming_er`

use blast::core::weighting::ChiSquaredWeigher;
use blast::datamodel::SourceId;
use blast::incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};

fn main() {
    // χ² weighting + BLAST pruning, schema-agnostic blocking, the paper's
    // purging/filtering defaults — the streaming twin of `BlastPipeline`.
    let mut pipeline = IncrementalPipeline::dirty(
        ChiSquaredWeigher::without_entropy(),
        IncrementalPruning::blast(),
        CleaningConfig::default(),
    );

    println!("== micro-batch 1: the Figure 1a profiles arrive ==");
    let p1 = pipeline.insert(
        SourceId(0),
        "p1",
        [
            ("Name", "John Abram Jr"),
            ("profession", "car seller"),
            ("year", "1985"),
            ("Addr.", "Main street"),
        ],
    );
    pipeline.insert(
        SourceId(0),
        "p2",
        [
            ("FirstName", "Ellen"),
            ("SecondName", "Smith"),
            ("year", "85"),
            ("occupation", "retail"),
            ("mail", "Abram st. 30 NY"),
        ],
    );
    let outcome = pipeline.commit();
    report(&outcome);

    println!("== micro-batch 2: two more profiles ==");
    let p3 = pipeline.insert(
        SourceId(0),
        "p3",
        [
            ("name1", "Jon Jr"),
            ("name2", "Abram"),
            ("birth year", "85"),
            ("job", "car retail"),
            ("Loc", "Main st."),
        ],
    );
    pipeline.insert(
        SourceId(0),
        "p4",
        [
            ("full name", "Ellen Smith"),
            ("b. date", "May 10 1985"),
            ("work info", "retailer"),
            ("loc", "Abram street NY"),
        ],
    );
    let outcome = pipeline.commit();
    report(&outcome);
    assert!(
        pipeline.retained().contains(p1, p3),
        "the matching pair p1–p3 must be a candidate"
    );

    println!("== micro-batch 3: p3 is corrected (new address) ==");
    pipeline.update(
        p3,
        [
            ("name1", "Jon Jr"),
            ("name2", "Abram"),
            ("birth year", "85"),
            ("job", "car retail"),
            ("Loc", "Sunset boulevard"),
        ],
    );
    let outcome = pipeline.commit();
    report(&outcome);

    println!("== micro-batch 4: p1 is withdrawn ==");
    pipeline.delete(p1);
    let outcome = pipeline.commit();
    report(&outcome);
    assert!(
        !pipeline.retained().iter().any(|(a, b)| a == p1 || b == p1),
        "a tombstoned profile leaves no candidates behind"
    );

    // The contract behind all of the above: at any commit point, a batch
    // pipeline run from scratch over the materialised collection produces
    // the exact same candidate set.
    let batch = pipeline.batch_retained();
    assert_eq!(pipeline.retained().pairs(), batch.pairs());
    println!(
        "batch equivalence holds: {} candidate pairs either way",
        batch.len()
    );
}

fn report(outcome: &blast::incremental::CommitOutcome) {
    for (a, b) in &outcome.delta.added {
        println!("  + candidate ({}, {})", a.0, b.0);
    }
    for (a, b) in &outcome.delta.retracted {
        println!("  - candidate ({}, {})", a.0, b.0);
    }
    println!(
        "  [{} candidates over {} blocks; {} dirty nodes; {} tier]",
        outcome.retained_len,
        outcome.blocks,
        outcome.stats.dirty_nodes,
        outcome.stats.tier.label(),
    );
}
