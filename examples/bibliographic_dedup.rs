//! Bibliographic clean-clean ER (the ar1 / DBLP↔ACM scenario of §4):
//! generates a synthetic bibliography benchmark, runs BLAST and the
//! traditional meta-blocking baselines, and prints a Table 4-style
//! comparison.
//!
//! Run with: `cargo run --release --example bibliographic_dedup`

use blast::core::pipeline::{BlastConfig, BlastPipeline};
use blast::datagen::{clean_clean_preset, generate_clean_clean, CleanCleanPreset};
use blast::graph::{EdgeWeigher, MetaBlocker, PruningAlgorithm, WeightingScheme};
use blast::metrics::{evaluate_pairs, fmt_pct, Stopwatch};

fn main() {
    // A tenth-scale ar1 so the example runs in seconds even in dev builds.
    let spec = clean_clean_preset(CleanCleanPreset::Ar1).scaled(0.25);
    let (input, gt) = generate_clean_clean(&spec);
    println!(
        "Generated {}: |E1|+|E2| = {}, |D_E| = {}",
        spec.name,
        input.total_profiles(),
        gt.len()
    );

    // Traditional meta-blocking over schema-agnostic Token Blocking.
    let pipeline = BlastPipeline::new(BlastConfig::default());
    let (blocks_t, _) = BlastPipeline::new(BlastConfig {
        schema: blast::core::schema::extraction::LooseSchemaConfig {
            // α = 1 + all-pairs yields the same blocks; simplest way to get
            // plain Token Blocking is the trivial partitioning — here we
            // just reuse the blocks of the L-pipeline for the baselines, as
            // the paper's "L" rows do.
            ..Default::default()
        },
        ..BlastConfig::default()
    })
    .build_blocks(&input);

    println!(
        "\n{:<22} {:>7} {:>7} {:>7} {:>9} {:>8}",
        "method", "PC%", "PQ%", "F1", "‖B‖", "t(s)"
    );
    for algorithm in [
        PruningAlgorithm::Wnp1,
        PruningAlgorithm::Wnp2,
        PruningAlgorithm::Cnp1,
        PruningAlgorithm::Cnp2,
    ] {
        // Average over the five traditional weighting schemes, as Table 4.
        let mut pc = 0.0;
        let mut pq = 0.0;
        let mut f1 = 0.0;
        let mut comparisons = 0usize;
        let mut sw = Stopwatch::new();
        for scheme in WeightingScheme::ALL {
            let retained = sw.time(scheme.name(), || {
                MetaBlocker::new(scheme, algorithm).run(&blocks_t)
            });
            let q = evaluate_pairs(retained.pairs(), &gt);
            pc += q.pc;
            pq += q.pq;
            f1 += q.f1;
            comparisons += retained.len();
        }
        let n = WeightingScheme::ALL.len() as f64;
        println!(
            "{:<22} {:>7} {:>7} {:>7.3} {:>9} {:>8.2}",
            format!("{} (avg 5 WS)", algorithm.label()),
            fmt_pct(pc / n, 1),
            fmt_pct(pq / n, 1),
            f1 / n,
            comparisons / WeightingScheme::ALL.len(),
            sw.total_secs()
        );
    }

    // BLAST.
    let outcome = pipeline.run(&input);
    let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
    println!(
        "{:<22} {:>7} {:>7} {:>7.3} {:>9} {:>8.2}",
        "Blast",
        fmt_pct(q.pc, 1),
        fmt_pct(q.pq, 1),
        q.f1,
        outcome.pairs.len(),
        outcome.timings.total_secs()
    );
    println!(
        "\nLMI found {} attribute clusters over {} attributes.",
        outcome.schema.clusters, outcome.schema.columns
    );
}
