//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! Implements the slice of the API the workspace benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`criterion_group!`]/[`criterion_main!`] and [`Bencher::iter`] — with a
//! straightforward wall-clock measurement loop instead of criterion's
//! statistical machinery: per benchmark it warms up, auto-scales the
//! iteration count to ~50 ms per sample, takes `sample_size` samples and
//! prints min/mean/max. Good enough to compare implementations by an order
//! of magnitude, which is what the workspace benches are for.

use std::time::{Duration, Instant};

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f` (the value is passed through
    /// `std::hint::black_box` to keep the optimiser honest).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point handed to every benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Runs `f` as a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&name.into(), self.default_sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark of this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (prints nothing; exists for API parity).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm-up and calibration: find an iteration count worth ~50 ms.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {name:<40} [{} {} {}]  ({} samples × {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len(),
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from benchmark group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_closure() {
        let mut c = super::Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = super::Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
