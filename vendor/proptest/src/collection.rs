//! Collection strategies: `vec`, `btree_set`, `hash_set`.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::{BTreeSet, HashSet};
use std::hash::Hash;
use std::ops::Range;

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` with size drawn from `size` (best effort when the element
/// domain is smaller than the requested size).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = rng.random_range(self.size.clone());
        let mut set = BTreeSet::new();
        // Collisions shrink the set; retry a bounded number of times so tiny
        // element domains still terminate.
        for _ in 0..target * 4 + 8 {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// A `HashSet` with size drawn from `size` (best effort, like
/// [`btree_set`]).
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
        let target = rng.random_range(self.size.clone());
        let mut set = HashSet::new();
        for _ in 0..target * 4 + 8 {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_and_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn sets_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = btree_set(0u32..12, 0..8);
        let h = hash_set((0u32..5, 0u32..5), 0..60);
        for _ in 0..100 {
            assert!(b.generate(&mut rng).len() < 8);
            // Domain has only 25 tuples: size saturates gracefully.
            assert!(h.generate(&mut rng).len() <= 25);
        }
    }

    #[test]
    fn nested_vec_of_strings() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = vec(vec("[a-b]{1,2}", 1..3), 1..4);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
    }
}
