//! Tiny regex-pattern string generator.
//!
//! Upstream proptest treats `&str` strategies as full regexes. The tests in
//! this workspace only use patterns of the shape `ATOM{m,n}` where `ATOM`
//! is `.` or a character class `[...]` (with literal characters, escapes and
//! `a-b` ranges), so that is all this parser supports. Unsupported syntax
//! panics loudly rather than generating something subtly wrong.

use rand::rngs::StdRng;
use rand::RngExt;

/// Characters `.` draws from: printable ASCII plus a couple of multibyte
/// letters so UTF-8 handling gets exercised (upstream `.` also excludes
/// newlines).
fn dot_alphabet() -> Vec<char> {
    let mut chars: Vec<char> = (' '..='~').collect();
    chars.extend(['é', 'ü', 'ß', 'λ']);
    chars
}

fn parse_class(pattern: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut alphabet = Vec::new();
    while i < pattern.len() && pattern[i] != ']' {
        let c = if pattern[i] == '\\' {
            i += 1;
            match pattern.get(i) {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('r') => '\r',
                Some(&c) => c,
                None => panic!("dangling escape in character class"),
            }
        } else {
            pattern[i]
        };
        // `a-b` range (a `-` between two characters; trailing `-` is literal).
        if i + 2 < pattern.len() && pattern[i + 1] == '-' && pattern[i + 2] != ']' {
            let end = pattern[i + 2];
            assert!(c <= end, "inverted range {c}-{end} in character class");
            alphabet.extend(c..=end);
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    assert!(i < pattern.len(), "unterminated character class");
    (alphabet, i + 1) // past the ']'
}

fn parse_repeat(pattern: &[char], i: usize) -> (usize, usize, usize) {
    if i < pattern.len() && pattern[i] == '{' {
        let close = pattern[i..]
            .iter()
            .position(|&c| c == '}')
            .expect("unterminated {m,n} repetition")
            + i;
        let body: String = pattern[i + 1..close].iter().collect();
        let (m, n) = match body.split_once(',') {
            Some((m, n)) => (
                m.parse().expect("bad lower bound in {m,n}"),
                n.parse().expect("bad upper bound in {m,n}"),
            ),
            None => {
                let k = body.parse().expect("bad count in {k}");
                (k, k)
            }
        };
        (m, n, close + 1)
    } else {
        (1, 1, i)
    }
}

/// Generates one string matching `pattern` (the supported subset).
pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (alphabet, next) = match chars[i] {
            '.' => (dot_alphabet(), i + 1),
            '[' => parse_class(&chars, i + 1),
            '\\' => {
                let c = match chars.get(i + 1) {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(&c) => c,
                    None => panic!("dangling escape in pattern"),
                };
                (vec![c], i + 2)
            }
            c => (vec![c], i + 1),
        };
        let (min, max, next) = parse_repeat(&chars, next);
        let len = if min == max {
            min
        } else {
            rng.random_range(min..=max)
        };
        for _ in 0..len {
            out.push(alphabet[rng.random_range(0..alphabet.len())]);
        }
        i = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_range_and_escapes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_from_pattern("[ -~éü\n\"]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            for c in s.chars() {
                assert!(
                    (' '..='~').contains(&c) || ['é', 'ü', '\n', '"'].contains(&c),
                    "{c:?}"
                );
            }
        }
    }

    #[test]
    fn simple_class_and_dot() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-c]{0,3}", &mut rng);
            assert!(s.chars().count() <= 3);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let d = generate_from_pattern(".{0,12}", &mut rng);
            assert!(d.chars().count() <= 12);
        }
    }

    #[test]
    fn lengths_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let lens: Vec<usize> = (0..300)
            .map(|_| generate_from_pattern("x{1,4}", &mut rng).len())
            .collect();
        assert!(lens.contains(&1) && lens.contains(&4));
        assert!(lens.iter().all(|&l| (1..=4).contains(&l)));
    }
}
