//! The [`Strategy`] trait and core combinators.
//!
//! A strategy simply generates a value from an RNG — no shrink trees. All
//! combinators are `Clone` so strategies can be reused in several
//! compositions (the upstream idiom `side.clone()`).

use rand::rngs::StdRng;
use rand::RngExt;
use std::rc::Rc;

/// Generates random values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice among same-valued strategies ([`crate::prop_oneof!`]).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Self(self.0.clone())
    }
}

impl<V> Union<V> {
    /// Builds the union; `choices` must be non-empty.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self(choices)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.random_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String literals act as regex strategies (subset; see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (0u32..10, 5usize..6).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_choice() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = Union::new(vec![Just("a").boxed(), Just("b").boxed()]);
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..100 {
            match s.generate(&mut rng) {
                "a" => seen_a = true,
                _ => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }
}
