//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the subset of the proptest API its tests use: the [`strategy::Strategy`]
//! trait (with `prop_map` and boxing), `Just`, integer/float range
//! strategies, a small regex-string strategy, tuple composition, the
//! [`collection`] generators (`vec`, `btree_set`, `hash_set`), and the
//! [`proptest!`] / `prop_assert*` / [`prop_oneof!`] macros.
//!
//! Differences from upstream, deliberate for size: no shrinking (a failing
//! case reports its case number and seed instead of a minimised input) and
//! a fixed per-case RNG stream derived from the case index, so failures
//! reproduce exactly across runs.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) {..} }`.
///
/// Each test runs [`test_runner::ProptestConfig::cases`] cases; every case
/// draws its inputs from a deterministic per-case RNG. `prop_assume!`
/// rejections skip the case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    )) {
                        ::std::result::Result::Ok(r) => r,
                        ::std::result::Result::Err(payload) => {
                            eprintln!(
                                "proptest: case {case}/{} of `{}` failed (deterministic; re-run reproduces it)",
                                config.cases,
                                stringify!($name),
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    };
                let _ = outcome; // Err(Rejected) = prop_assume! skip.
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
