//! Case scheduling for the [`crate::proptest!`] macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite quick while
        // still exercising the generators broadly.
        Self { cases: 64 }
    }
}

/// Marker for a `prop_assume!` rejection — the case is skipped.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// The deterministic RNG for one case of one property: seeded from the test
/// name and case index so every property sees an independent stream and
/// failures reproduce exactly.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}
