//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `rand` API it actually uses:
//! a seedable deterministic generator ([`rngs::StdRng`]), uniform range
//! sampling ([`RngExt::random_range`]) and Fisher–Yates shuffling
//! ([`seq::SliceRandom::shuffle`]). The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic across platforms and runs, which is
//! all the datagen / LSH / SVM call sites require (they never depend on
//! matching upstream `rand`'s stream).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The standard generator.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, statistically solid, and fully
    /// deterministic given the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 key expansion, as recommended by the xoshiro
            // authors: never yields the all-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges that can be sampled uniformly to a value of type `T`. Mirrors
/// upstream rand's shape — the output type is a separate parameter so it can
/// be inferred from the call context (e.g. slice indexing forcing `usize`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift mapping (Lemire, without the rejection step): the bias
    // is < 2⁻⁶⁴·span, irrelevant for the synthetic-data use here.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types with a uniform sampler. The single blanket [`SampleRange`] impl
/// below goes through this trait so type inference can unify the range's
/// element type with the requested output type (as upstream rand does).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]` when `inclusive`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + v) as $t
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + uniform_u64(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// A value drawn uniformly from `range`.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `bool` with probability `p` of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore> RngExt for R {}

pub mod seq {
    //! Slice utilities.

    use super::{uniform_u64, RngCore};

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, deterministic given the generator state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(2..=5usize);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
