//! # BLAST — Blocking with Loosely-Aware Schema Techniques
//!
//! A from-scratch Rust reproduction of *"BLAST: a Loosely Schema-aware
//! Meta-blocking Approach for Entity Resolution"* (Simonini, Bergamaschi,
//! Jagadish — PVLDB 9(12), 2016), together with every substrate and baseline
//! its evaluation depends on.
//!
//! This crate is the facade: it re-exports the workspace crates under a
//! single namespace so applications (and the `examples/`) can depend on one
//! crate. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! the reproduced tables and figures.
//!
//! ## Quick start
//!
//! ```rust
//! use blast::datamodel::{EntityCollection, ErInput, ProfileId, SourceId};
//! use blast::pipeline::{BlastConfig, BlastPipeline};
//!
//! let mut dblp = EntityCollection::new(SourceId(0));
//! dblp.push_pairs("d1", [("title", "blocking for entity resolution"), ("year", "2016")]);
//! dblp.push_pairs("d2", [("title", "schema matching with entropy"), ("year", "2014")]);
//! dblp.push_pairs("d3", [("title", "minhash sketches in practice"), ("year", "2016")]);
//!
//! let mut acm = EntityCollection::new(SourceId(1));
//! acm.push_pairs("a1", [("paper", "Blocking for Entity Resolution"), ("date", "2016")]);
//! acm.push_pairs("a2", [("paper", "Schema Matching with Entropy"), ("date", "2014")]);
//! acm.push_pairs("a3", [("paper", "MinHash Sketches in Practice"), ("date", "2016")]);
//!
//! let input = ErInput::clean_clean(dblp, acm);
//! let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
//! // The three true matches survive; the superfluous pairs are pruned.
//! assert!(outcome.pairs.contains(ProfileId(0), ProfileId(3)));
//! assert!(outcome.pairs.contains(ProfileId(1), ProfileId(4)));
//! assert!(outcome.pairs.contains(ProfileId(2), ProfileId(5)));
//! ```

/// Entity model, tokenization, interning, ground truth (substrate).
pub mod datamodel {
    pub use blast_datamodel::*;
    pub use blast_datamodel::{
        collection::EntityCollection,
        entity::{AttributeId, EntityProfile, ProfileId, SourceId},
        ground_truth::GroundTruth,
        input::ErInput,
        tokenizer::Tokenizer,
    };
}

/// Token/Standard blocking, Block Purging, Block Filtering (substrate).
pub mod blocking {
    pub use blast_blocking::*;
}

/// MinHash + LSH banding (substrate for scalable attribute-match induction).
pub mod lsh {
    pub use blast_lsh::*;
}

/// Blocking graph, traditional weighting schemes, baseline pruning
/// algorithms (meta-blocking substrate).
pub mod graph {
    pub use blast_graph::*;
}

/// The BLAST contribution: loose schema extraction, χ²·entropy weighting,
/// BLAST pruning and the end-to-end pipeline.
pub mod core {
    pub use blast_core::*;
}

/// Supervised meta-blocking baseline (edge features + linear SVM).
pub mod ml {
    pub use blast_ml::*;
}

/// Synthetic benchmark generators mirroring the paper's datasets.
pub mod datagen {
    pub use blast_datagen::*;
}

/// PC / PQ / F1 evaluation.
pub mod metrics {
    pub use blast_metrics::*;
}

/// CSV import/export of collections, ground truth and pair files.
pub mod io {
    pub use blast_io::*;
}

/// Observability: lock-free metric registry, commit telemetry views,
/// Prometheus text export and the JSONL trace journal.
pub mod obs {
    pub use blast_obs::*;
}

/// Incremental meta-blocking: mutable block index + dirty-neighbourhood
/// repair, batch-equivalent (streamed inserts/updates/deletes with
/// candidate-pair deltas).
pub mod incremental {
    pub use blast_incremental::*;
}

/// A simple downstream matcher (profile Jaccard + transitive closure) for
/// end-to-end entity resolution.
pub mod matcher {
    pub use blast_matcher::*;
}

/// Convenience re-export of the pipeline entry points.
pub mod pipeline {
    pub use blast_core::config::BlastConfig;
    pub use blast_core::pipeline::{BlastOutcome, BlastPipeline};
}

/// One-stop imports for applications:
/// `use blast::prelude::*;`
pub mod prelude {
    pub use blast_blocking::{BlockFiltering, BlockPurging, TokenBlocking};
    pub use blast_core::config::BlastConfig;
    pub use blast_core::pipeline::{BlastOutcome, BlastPipeline};
    pub use blast_core::schema::extraction::{
        InductionAlgorithm, LooseSchemaConfig, LooseSchemaExtractor,
    };
    pub use blast_datamodel::{
        collection::EntityCollection,
        entity::{EntityProfile, ProfileId, SourceId},
        ground_truth::GroundTruth,
        input::ErInput,
        tokenizer::Tokenizer,
    };
    pub use blast_graph::{MetaBlocker, PruningAlgorithm, WeightingScheme};
    pub use blast_matcher::{resolve_entities, JaccardMatcher};
    pub use blast_metrics::{evaluate_blocks, evaluate_pairs};
}
