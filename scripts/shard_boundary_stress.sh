#!/usr/bin/env bash
# Shard-boundary stress: a collection where EVERY comparison edge crosses
# the merge frontier.
#
# Profiles are built in even/odd pairs — token group g appears in exactly
# profiles 2g and 2g+1 — so under round-robin ownership with --shards 2
# each edge has one even and one odd endpoint, i.e. 100% of edges are
# frontier pairs. The stream runs with --verify, which asserts the
# incremental retained set is bit-identical to the from-scratch batch run
# after every commit window; a divergence exits non-zero.
#
# Usage: scripts/shard_boundary_stress.sh [NGROUPS] [BATCH]
set -euo pipefail

NGROUPS="${1:-512}"
BATCH="${2:-32}"

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

awk -v groups="$NGROUPS" 'BEGIN {
    print "id,text";
    for (g = 0; g < groups; g++) {
        # Two shared tokens per pair so size-2 blocks survive purging,
        # plus a unique token so the profiles are not literal duplicates.
        printf "p%d,tok%d grp%d even%d\n", 2 * g, g, g, g;
        printf "p%d,tok%d grp%d odd%d\n", 2 * g + 1, g, g, g;
    }
}' > "$tmp/frontier.csv"

echo "== shard boundary stress: $NGROUPS groups, batch $BATCH, shards 2, threads 8 =="
cargo run --release -q -p blast-cli --bin blast -- stream \
    --input "$tmp/frontier.csv" \
    --batch-size "$BATCH" \
    --pruning wep --scheme cbs \
    --shards 2 --threads 8 \
    --verify --stats

echo "== ok: every edge crossed the frontier and the stream matched batch =="
