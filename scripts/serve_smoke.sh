#!/usr/bin/env bash
# Serve smoke: boot `blast serve` on an ephemeral port, query it while it
# lingers, and gate on the read-your-writes equivalence line.
#
# The server streams a generated dirty preset through the incremental
# pipeline on the writer thread, epoch-publishing a snapshot per commit;
# this script scrapes the `serving on http://...` line from stdout, hits
# /stats, /candidates, /topk and /metrics while the server is live,
# checks the JSON shapes and counters, then waits for the process to exit
# and asserts the `--verify` gate reported
# `verify: serve == incremental == batch`.
#
# BLAST_THREADS (if set) flows through to the server's reader-pool sizing
# — the CI matrix re-runs this script under BLAST_THREADS=4.
#
# Usage: scripts/serve_smoke.sh [SCALE] [LINGER_SECS]
set -euo pipefail

SCALE="${1:-0.05}"
LINGER="${2:-8}"

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

cargo build --release -q -p blast-cli

echo "== serve smoke: census scale $SCALE, linger ${LINGER}s, BLAST_THREADS=${BLAST_THREADS:-unset} =="
target/release/blast serve \
    --preset census --scale "$SCALE" \
    --port 0 --linger "$LINGER" --verify \
    > "$tmp/serve.out" 2> "$tmp/serve.err" &
pid=$!

# Scrape the bound address (printed and flushed before the ingest starts).
url=""
for _ in $(seq 1 100); do
    url="$(grep -o 'http://[0-9.]*:[0-9]*' "$tmp/serve.out" | head -1 || true)"
    [ -n "$url" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "server exited before announcing its address" >&2
        cat "$tmp/serve.out" "$tmp/serve.err" >&2
        exit 1
    fi
    sleep 0.1
done
[ -n "$url" ] || { echo "no 'serving on' line within 10s" >&2; exit 1; }
echo "scraped $url"

# Query the live server and validate shapes + counters.
python3 - "$url" <<'EOF'
import json
import sys
import urllib.error
import urllib.request

base = sys.argv[1]

def get(path):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as r:
            return r.status, r.read().decode()
    except urllib.error.HTTPError as e:
        return e.code, e.read().decode()

# /stats: corpus + serving counters at one published seq.
status, body = get("/stats")
assert status == 200, body
stats = json.loads(body)
for key in ("seq", "nodes", "live", "pairs", "blocks", "queries",
            "snapshot_swaps", "stale_epochs", "ingest_done"):
    assert key in stats, f"/stats missing {key}: {stats}"
assert stats["snapshot_swaps"] >= 1, stats

# /candidates and /topk answer from one pinned snapshot each.
status, body = get("/candidates?id=0")
assert status == 200, body
cands = json.loads(body)
for key in ("seq", "id", "live", "count", "candidates"):
    assert key in cands, f"/candidates missing {key}: {cands}"
assert cands["count"] == len(cands["candidates"])

status, body = get("/topk?id=0&k=3")
assert status == 200, body
top = json.loads(body)
assert top["count"] <= 3, top
weights = [c["weight"] for c in top["candidates"]]
assert weights == sorted(weights, reverse=True), top

# Unknown ids and paths are clean 404s, not crashes.
status, body = get("/candidates?id=99999999")
assert status == 404, (status, body)
status, body = get("/nope")
assert status == 404, (status, body)

# /metrics: the Prometheus page carries both the serve and the commit
# families, and the query counter moved (we just issued several).
status, body = get("/metrics")
assert status == 200
assert "blast_serve_queries" in body
assert "blast_serve_snapshot_swaps" in body
assert "blast_commit_count" in body
queries = next(int(line.split()[1]) for line in body.splitlines()
               if line.startswith("blast_serve_queries "))
assert queries >= 3, f"query counter did not move: {queries}"

print(f"queried {base}: seq {stats['seq']}, {stats['pairs']} pairs, "
      f"{queries} queries recorded")
EOF

# The server exits on its own after the linger window; --verify makes a
# divergence a non-zero exit, and the report must carry the equivalence
# line.
if ! wait "$pid"; then
    echo "blast serve exited non-zero" >&2
    cat "$tmp/serve.out" "$tmp/serve.err" >&2
    exit 1
fi
pid=""

grep -q "serve: census" "$tmp/serve.out" || {
    echo "missing serve report" >&2; cat "$tmp/serve.out" >&2; exit 1; }
grep -q "verify: serve == incremental == batch" "$tmp/serve.out" || {
    echo "missing equivalence line" >&2; cat "$tmp/serve.out" >&2; exit 1; }
sed -n '/^serve:/,$p' "$tmp/serve.out"
echo "== ok: serve smoke passed =="
