//! The `blast` binary: see [`blast_cli::usage`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match blast_cli::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
