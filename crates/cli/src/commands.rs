//! The sub-command implementations.

use crate::args::Args;
use blast_core::config::BlastConfig;
use blast_core::pipeline::BlastPipeline;
use blast_core::schema::candidates::CandidateSource;
use blast_core::schema::extraction::{InductionAlgorithm, LooseSchemaConfig, LooseSchemaExtractor};
use blast_datagen::{
    clean_clean_preset, dirty_preset, generate_clean_clean, generate_dirty, CleanCleanPreset,
    DirtyPreset,
};
use blast_datamodel::collection::EntityCollection;
use blast_datamodel::entity::SourceId;
use blast_datamodel::ground_truth::GroundTruth;
use blast_datamodel::input::ErInput;
use blast_io::collection::{read_collection, write_collection, CollectionReadOptions};
use blast_io::ground_truth::{read_ground_truth, write_ground_truth};
use blast_io::pairs::write_pairs;
use blast_metrics::quality::evaluate_pairs;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::path::Path;

fn open(path: &str) -> Result<BufReader<File>, String> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| format!("cannot open {path}: {e}"))
}

fn create(path: &str) -> Result<BufWriter<File>, String> {
    File::create(path)
        .map(BufWriter::new)
        .map_err(|e| format!("cannot create {path}: {e}"))
}

fn read_options(args: &Args) -> CollectionReadOptions {
    CollectionReadOptions {
        id_column: args.get("id-column").map(str::to_string),
    }
}

fn load_clean_clean(args: &Args) -> Result<ErInput, String> {
    let options = read_options(args);
    let d1 = read_collection(&mut open(args.required("d1")?)?, SourceId(0), &options)
        .map_err(|e| format!("reading --d1: {e}"))?;
    let d2 = read_collection(&mut open(args.required("d2")?)?, SourceId(1), &options)
        .map_err(|e| format!("reading --d2: {e}"))?;
    Ok(ErInput::clean_clean(d1, d2))
}

fn schema_config(args: &Args) -> Result<LooseSchemaConfig, String> {
    let algorithm = match args.get("algorithm") {
        None | Some("lmi") => InductionAlgorithm::Lmi,
        Some("ac") => InductionAlgorithm::AttributeClustering,
        Some(other) => return Err(format!("--algorithm must be lmi or ac, got {other:?}")),
    };
    let candidates = match args.get_f64("lsh-threshold")? {
        None => CandidateSource::AllPairs,
        Some(t) => {
            if !(0.0..=1.0).contains(&t) {
                return Err(format!("--lsh-threshold must be in [0,1], got {t}"));
            }
            CandidateSource::lsh_with_threshold(150, t, 0xB1A57)
        }
    };
    Ok(LooseSchemaConfig {
        algorithm,
        candidates,
        glue: !args.flag("no-glue"),
        alpha: args.get_f64("alpha")?.unwrap_or(0.9),
        ..Default::default()
    })
}

fn blast_config(args: &Args) -> Result<BlastConfig, String> {
    let mut config = BlastConfig {
        schema: schema_config(args)?,
        ..BlastConfig::default()
    };
    if let Some(c) = args.get_f64("c")? {
        config.c = c;
    }
    if let Some(d) = args.get_f64("d")? {
        config.d = d;
    }
    if args.flag("no-entropy") {
        config.use_entropy = false;
    }
    Ok(config)
}

fn run_pipeline(args: &Args, input: ErInput) -> Result<String, String> {
    let config = blast_config(args)?;
    let outcome = BlastPipeline::new(config).run(&input);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "profiles: {}  blocks (after cleaning): {}  retained comparisons: {}",
        input.total_profiles(),
        outcome.blocks.len(),
        outcome.pairs.len()
    );
    let _ = writeln!(
        report,
        "schema: {} clusters over {} attributes",
        outcome.schema.clusters, outcome.schema.columns
    );
    for (phase, duration) in outcome.timings.phases() {
        let _ = writeln!(report, "  {phase}: {duration:.2?}");
    }

    if let Some(gt_path) = args.get("gt") {
        let gt = read_ground_truth(&mut open(gt_path)?, &input)
            .map_err(|e| format!("reading --gt: {e}"))?;
        let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
        let _ = writeln!(
            report,
            "PC = {:.2}%  PQ = {:.2}%  F1 = {:.4}  (|D_E| = {})",
            q.pc * 100.0,
            q.pq * 100.0,
            q.f1,
            gt.len()
        );
    }

    if let Some(out_path) = args.get("out") {
        let mut out = create(out_path)?;
        write_pairs(&mut out, &outcome.pairs, &input).map_err(|e| format!("writing --out: {e}"))?;
        out.flush().map_err(|e| e.to_string())?;
        let _ = writeln!(report, "pairs written to {out_path}");
    }
    Ok(report)
}

/// `blast block`: clean-clean ER over two CSVs.
pub fn block(args: &Args) -> Result<String, String> {
    let input = load_clean_clean(args)?;
    run_pipeline(args, input)
}

/// `blast dedup`: dirty ER over one CSV.
pub fn dedup(args: &Args) -> Result<String, String> {
    let options = read_options(args);
    let d = read_collection(&mut open(args.required("input")?)?, SourceId(0), &options)
        .map_err(|e| format!("reading --input: {e}"))?;
    run_pipeline(args, ErInput::dirty(d))
}

/// `blast schema`: print the loose schema information of two sources.
pub fn schema(args: &Args) -> Result<String, String> {
    let input = load_clean_clean(args)?;
    let config = schema_config(args)?;
    let info = LooseSchemaExtractor::new(config).extract(&input);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "{} attributes, {} candidate pairs compared, {} clusters (+ glue)",
        info.columns, info.candidate_pairs, info.clusters
    );
    // Group attribute names per cluster for display.
    let ErInput::CleanClean { d1, d2 } = &input else {
        unreachable!("schema loads clean-clean input")
    };
    let collections: [&EntityCollection; 2] = [d1, d2];
    let mut members: Vec<Vec<String>> = vec![Vec::new(); info.partitioning.cluster_count()];
    for (si, coll) in collections.iter().enumerate() {
        for attr in coll.attribute_ids() {
            use blast_blocking::key::KeyDisambiguator;
            if let Some(c) = info.partitioning.cluster_of(SourceId(si as u8), attr) {
                members[c.index()].push(format!("s{si}.{}", coll.attribute_name(attr)));
            }
        }
    }
    for (cid, (names, entropy)) in members
        .iter()
        .zip(info.partitioning.entropies())
        .enumerate()
    {
        let label = if cid == 0 { "glue   " } else { "cluster" };
        let _ = writeln!(
            report,
            "{label} #{cid} (H̄ = {entropy:.2}): {}",
            if names.is_empty() {
                "-".to_string()
            } else {
                names.join(", ")
            }
        );
    }
    Ok(report)
}

/// `blast evaluate`: PC/PQ/F1 of a pairs file against a ground truth.
pub fn evaluate(args: &Args) -> Result<String, String> {
    let input = load_clean_clean(args)?;
    let gt = read_ground_truth(&mut open(args.required("gt")?)?, &input)
        .map_err(|e| format!("reading --gt: {e}"))?;
    // A pairs file is structurally a ground-truth file: reuse the reader.
    let predicted = read_ground_truth(&mut open(args.required("pairs")?)?, &input)
        .map_err(|e| format!("reading --pairs: {e}"))?;
    let pairs: Vec<_> = predicted.iter().collect();
    let q = evaluate_pairs(&pairs, &gt);
    Ok(format!(
        "comparisons = {}  detected = {}  PC = {:.2}%  PQ = {:.2}%  F1 = {:.4}\n",
        pairs.len(),
        q.detected,
        q.pc * 100.0,
        q.pq * 100.0,
        q.f1
    ))
}

/// One `--trace` journal line: the commit's telemetry as a flat-ish JSON
/// object (nested `phases` object reusing the bench-JSON phase schema).
fn trace_event(
    seq: usize,
    batch_profiles: usize,
    pipeline: &blast_incremental::IncrementalPipeline,
    out: &blast_incremental::CommitOutcome,
) -> String {
    use blast_obs::trace::JsonObject;
    let fp = pipeline.footprint();
    let cold = pipeline.cold_stats();
    JsonObject::new()
        .field_u64("seq", seq as u64)
        .field_u64("batch_profiles", batch_profiles as u64)
        .field_str("tier", out.stats.tier.label())
        .field_u64("added", out.delta.added.len() as u64)
        .field_u64("retracted", out.delta.retracted.len() as u64)
        .field_u64("retained", out.retained_len as u64)
        .field_u64("blocks", out.blocks as u64)
        .field_u64("dirty_nodes", out.stats.dirty_nodes as u64)
        .field_u64("patched_rows", out.stats.patched_rows as u64)
        .field_u64("retention_flips", out.stats.retention_flips as u64)
        .field_u64("threshold_crossers", out.stats.threshold_crossers as u64)
        .field_u64("shards", out.stats.shards as u64)
        .field_u64("frontier_pairs", out.stats.frontier_pairs as u64)
        .field_u64(
            "shard_imbalance_permille",
            out.stats.shard_imbalance_permille,
        )
        .field_f64("total_secs", out.timings.total_secs())
        .field_raw("phases", &out.timings.bench_json())
        .field_u64("live_edges", fp.live_edges as u64)
        .field_u64("cached_accumulators", fp.cached_accumulators as u64)
        .field_u64("interned_tokens", fp.interned_tokens as u64)
        .field_u64("resident_bytes", fp.total_bytes() as u64)
        .field_u64("cold_evictions", cold.evictions)
        .field_u64("cold_rehydrations", cold.rehydrations)
        .field_u64("cold_resident_bytes", cold.cold_bytes as u64)
        .field_u64("spilled_bytes", cold.spilled_bytes as u64)
        .finish()
}

/// Builds the incremental pipeline `blast stream`/`blast bench` share from
/// the common options: `--pruning`, `--scheme`, `--no-cleaning`,
/// `--threads`, `--shards`.
fn incremental_pipeline(args: &Args) -> Result<blast_incremental::IncrementalPipeline, String> {
    use blast_graph::meta::PruningAlgorithm;
    use blast_graph::weights::{EdgeWeigher as _, WeightingScheme};
    use blast_incremental::{CleaningConfig, IncrementalPipeline, IncrementalPruning};

    let pruning = match args.get("pruning") {
        None | Some("blast") => IncrementalPruning::blast(),
        Some(label) => PruningAlgorithm::ALL
            .iter()
            .find(|a| a.label() == label)
            .map(|&a| IncrementalPruning::Traditional(a))
            .ok_or_else(|| {
                format!("--pruning must be blast|wep|cep|wnp1|wnp2|cnp1|cnp2, got {label:?}")
            })?,
    };
    let scheme = match args.get("scheme") {
        None => None, // χ² for blast pruning, CBS otherwise
        Some(name) => Some(
            WeightingScheme::ALL
                .iter()
                .find(|s| s.name().eq_ignore_ascii_case(name))
                .copied()
                .ok_or_else(|| format!("--scheme must be arcs|cbs|ecbs|js|ejs, got {name:?}"))?,
        ),
    };
    let cleaning = if args.flag("no-cleaning") {
        CleaningConfig::none()
    } else {
        CleaningConfig::default()
    };

    let mut pipeline = match (scheme, pruning) {
        (Some(s), p) => IncrementalPipeline::dirty(s, p, cleaning),
        (None, p @ IncrementalPruning::Blast { .. }) => IncrementalPipeline::dirty(
            blast_core::weighting::ChiSquaredWeigher::without_entropy(),
            p,
            cleaning,
        ),
        (None, p) => IncrementalPipeline::dirty(WeightingScheme::Cbs, p, cleaning),
    };
    let parallel = args.parallel_opts()?;
    if let Some(t) = parallel.threads {
        pipeline = pipeline.with_threads(t);
    }
    if let Some(s) = parallel.shards {
        pipeline = pipeline.with_shards(s);
    }
    match args.get_bytes("memory-budget")? {
        Some(budget) => {
            let mut policy = blast_incremental::ResidencyPolicy::budget(budget);
            policy.spill = args.flag("spill");
            pipeline = pipeline.with_residency(policy);
        }
        None if args.flag("spill") => {
            return Err("--spill requires --memory-budget".to_string());
        }
        None => {}
    }
    Ok(pipeline)
}

/// Generates the dirty preset `blast bench`/`blast serve` stream in
/// memory, returning `(preset label, scale, collection)`.
fn dirty_preset_collection(args: &Args) -> Result<(String, f64, EntityCollection), String> {
    let preset = args.get("preset").unwrap_or("census").to_string();
    let scale = args.get_f64("scale")?.unwrap_or(0.05);
    let p = DirtyPreset::ALL
        .iter()
        .chain(DirtyPreset::SCALED.iter())
        .find(|p| p.label() == preset)
        .ok_or_else(|| {
            format!("--preset must be a dirty preset (census|cora|cddb|census100k|census1m), got {preset:?}")
        })?;
    let spec = dirty_preset(*p).scaled(scale);
    let (input, _gt) = generate_dirty(&spec);
    let ErInput::Dirty(d) = input else {
        unreachable!("dirty presets generate dirty input")
    };
    Ok((preset, scale, d))
}

/// `blast stream`: replay a dirty CSV as micro-batches through the
/// incremental pipeline, reporting the candidate-pair delta per batch.
pub fn stream(args: &Args) -> Result<String, String> {
    use blast_obs::CommitTotals;

    let options = read_options(args);
    let d = read_collection(&mut open(args.required("input")?)?, SourceId(0), &options)
        .map_err(|e| format!("reading --input: {e}"))?;
    let batch_size = args.get_usize("batch-size")?.unwrap_or(64);
    let mut pipeline = incremental_pipeline(args)?;

    let show_stats = args.flag("stats");
    // Opt-in structured trace journal: one JSON object per commit. Trace
    // events include the memory footprint, whose byte estimates walk the
    // structures (O(n)) — acceptable on the opt-in path only.
    let mut trace = match args.get("trace") {
        Some(path) => Some(create(path)?),
        None => None,
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "streaming {} profiles in micro-batches of {batch_size} ({:?})",
        d.len(),
        pipeline
    );
    let mut batch_no = 0usize;
    for chunk in d.profiles().chunks(batch_size) {
        for profile in chunk {
            let pairs: Vec<(&str, &str)> = profile
                .values
                .iter()
                .map(|(a, v)| (d.attribute_name(*a), &**v))
                .collect();
            pipeline.insert(SourceId(0), &profile.external_id, pairs);
        }
        let out = pipeline.commit();
        batch_no += 1;
        let _ = writeln!(
            report,
            "batch {batch_no:>4}: +{:<6} -{:<6} candidates = {:<8} blocks = {:<7} dirty nodes = {:<6} tier = {}",
            out.delta.added.len(),
            out.delta.retracted.len(),
            out.retained_len,
            out.blocks,
            out.stats.dirty_nodes,
            out.stats.tier.label(),
        );
        if show_stats {
            let _ = writeln!(
                report,
                "    repair: dirty nodes = {}, patched CSR rows = {}, patched slots = {}, tier = {}, \
                 edges re-weighed = {}, swept = {} ({} re-keyed), retention flips = {}, threshold crossers = {}, \
                 phases = {}",
                out.stats.dirty_nodes,
                out.stats.patched_rows,
                out.stats.patched_slots,
                out.stats.tier.label(),
                out.stats.edges_reweighed,
                out.stats.edges_swept,
                out.stats.edges_rekeyed,
                out.stats.retention_flips,
                out.stats.threshold_crossers,
                out.timings.human_micros(),
            );
            if out.stats.shards > 1 {
                let _ = writeln!(
                    report,
                    "    shards: {} owner shards, frontier pairs = {}, imbalance = {}‰",
                    out.stats.shards, out.stats.frontier_pairs, out.stats.shard_imbalance_permille,
                );
            }
        }
        if let Some(w) = trace.as_mut() {
            let line = trace_event(batch_no, chunk.len(), &pipeline, &out);
            writeln!(w, "{line}").map_err(|e| format!("writing --trace: {e}"))?;
        }
    }
    // Aggregate reporting reads the pipeline's metrics registry back — one
    // aggregation path shared with `exp_incremental` — instead of
    // re-accumulating per-commit outcomes by hand.
    let totals = CommitTotals::from_snapshot(&pipeline.metrics().snapshot());
    let _ = writeln!(
        report,
        "total: {} added, {} retracted, {} final candidates",
        totals.pairs_added,
        totals.pairs_retracted,
        pipeline.retained().len()
    );
    if show_stats {
        let _ = writeln!(
            report,
            "{}, snapshot version = {}",
            totals.repair_summary(),
            pipeline.snapshot().version(),
        );
        if totals.sharded_commits > 0 {
            let _ = writeln!(
                report,
                "sharded: {} of {} commits multi-shard, {} merge-frontier pairs",
                totals.sharded_commits, totals.commits, totals.frontier_pairs,
            );
        }
        let fp = pipeline.footprint();
        let _ = writeln!(
            report,
            "footprint: {} live edges, {} cached accumulators, {} interned tokens, \
             ~{:.1} KiB resident ({:.1} B/profile)",
            fp.live_edges,
            fp.cached_accumulators,
            fp.interned_tokens,
            fp.total_bytes() as f64 / 1024.0,
            fp.total_bytes() as f64 / d.len().max(1) as f64,
        );
        if pipeline.residency().is_some() {
            let cold = pipeline.cold_stats();
            let _ = writeln!(
                report,
                "cold tier: {} evictions, {} rehydrations, {:.1} KiB cold resident, {:.1} KiB spilled",
                cold.evictions,
                cold.rehydrations,
                cold.cold_bytes as f64 / 1024.0,
                cold.spilled_bytes as f64 / 1024.0,
            );
        }
    }
    if let Some(mut w) = trace.take() {
        w.flush().map_err(|e| e.to_string())?;
        let _ = writeln!(report, "trace journal: {batch_no} events");
    }
    if let Some(path) = args.get("metrics") {
        let mut w = create(path)?;
        w.write_all(pipeline.metrics().snapshot().encode_text().as_bytes())
            .and_then(|()| w.flush())
            .map_err(|e| format!("writing --metrics: {e}"))?;
        let _ = writeln!(report, "metrics exposition written to {path}");
    }

    if args.flag("verify") {
        let batch = pipeline.batch_retained();
        if batch.pairs() == pipeline.retained().pairs() {
            let _ = writeln!(
                report,
                "verify: incremental == batch ({} pairs)",
                batch.len()
            );
        } else {
            return Err(format!(
                "verify FAILED: incremental {} pairs vs batch {} pairs",
                pipeline.retained().len(),
                batch.len()
            ));
        }
    }

    if let Some(gt_path) = args.get("gt") {
        let input = pipeline.materialize();
        let gt = read_ground_truth(&mut open(gt_path)?, &input)
            .map_err(|e| format!("reading --gt: {e}"))?;
        let q = evaluate_pairs(pipeline.retained().pairs(), &gt);
        let _ = writeln!(
            report,
            "PC = {:.2}%  PQ = {:.2}%  F1 = {:.4}  (|D_E| = {})",
            q.pc * 100.0,
            q.pq * 100.0,
            q.f1,
            gt.len()
        );
    }

    Ok(report)
}

/// `blast generate`: write a synthetic benchmark to CSV files.
pub fn generate(args: &Args) -> Result<String, String> {
    let preset = args.required("preset")?;
    let scale = args.get_f64("scale")?.unwrap_or(1.0);
    let out_dir = args.required("out-dir")?;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {out_dir}: {e}"))?;
    let dir = Path::new(out_dir);

    let write_to = |name: &str, f: &dyn Fn(&mut BufWriter<File>) -> std::io::Result<()>| {
        let path = dir.join(name);
        let mut out = BufWriter::new(
            File::create(&path).map_err(|e| format!("cannot create {}: {e}", path.display()))?,
        );
        f(&mut out).map_err(|e| format!("writing {}: {e}", path.display()))?;
        out.flush().map_err(|e| e.to_string())
    };

    let clean = CleanCleanPreset::ALL.iter().find(|p| p.label() == preset);
    let dirty = DirtyPreset::ALL
        .iter()
        .chain(DirtyPreset::SCALED.iter())
        .find(|p| p.label() == preset);
    match (clean, dirty) {
        (Some(&p), _) => {
            let spec = clean_clean_preset(p).scaled(scale);
            let (input, gt) = generate_clean_clean(&spec);
            let ErInput::CleanClean { d1, d2 } = &input else {
                unreachable!()
            };
            write_to("d1.csv", &|out| write_collection(out, d1))?;
            write_to("d2.csv", &|out| write_collection(out, d2))?;
            write_to("gt.csv", &|out| write_ground_truth(out, &gt, &input))?;
            Ok(format!(
                "wrote {preset} (scale {scale}) to {out_dir}: |E1| = {}, |E2| = {}, |D_E| = {}\n",
                d1.len(),
                d2.len(),
                gt.len()
            ))
        }
        (_, Some(&p)) => {
            let spec = dirty_preset(p).scaled(scale);
            let (input, gt) = generate_dirty(&spec);
            let ErInput::Dirty(d) = &input else {
                unreachable!()
            };
            write_to("data.csv", &|out| write_collection(out, d))?;
            write_to("gt.csv", &|out| write_ground_truth(out, &gt, &input))?;
            Ok(format!(
                "wrote {preset} (scale {scale}) to {out_dir}: |E| = {}, |D_E| = {}\n",
                d.len(),
                gt.len()
            ))
        }
        _ => Err(format!(
            "unknown preset {preset:?} (expected ar1|ar2|prd|mov|dbp|census|cora|cddb|census100k|census1m)"
        )),
    }
}

/// `blast bench`: generate a dirty preset in memory and stream it through
/// the incremental pipeline, reporting commit throughput — the quick
/// harness for the multi-core knobs (`--threads`, `--shards`; both also
/// honoured by `blast stream`, and `BLAST_THREADS` overrides the default
/// when `--threads` is absent).
pub fn bench(args: &Args) -> Result<String, String> {
    use blast_obs::CommitTotals;
    use std::time::Instant;

    let (preset, scale, d) = dirty_preset_collection(args)?;
    let batch_size = args.get_usize("batch-size")?.unwrap_or(64);
    let mut pipeline = incremental_pipeline(args)?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "bench: {preset} × {scale} — {} profiles in micro-batches of {batch_size} ({:?})",
        d.len(),
        pipeline
    );
    let t0 = Instant::now();
    let mut commits = 0usize;
    for chunk in d.profiles().chunks(batch_size) {
        for profile in chunk {
            let pairs: Vec<(&str, &str)> = profile
                .values
                .iter()
                .map(|(a, v)| (d.attribute_name(*a), &**v))
                .collect();
            pipeline.insert(SourceId(0), &profile.external_id, pairs);
        }
        pipeline.commit();
        commits += 1;
    }
    let secs = t0.elapsed().as_secs_f64();

    let totals = CommitTotals::from_snapshot(&pipeline.metrics().snapshot());
    let _ = writeln!(
        report,
        "{} commits in {secs:.3}s — {:.1} commits/s, {:.0} profiles/s, {} final candidates",
        commits,
        commits as f64 / secs.max(1e-9),
        d.len() as f64 / secs.max(1e-9),
        pipeline.retained().len(),
    );
    let _ = writeln!(report, "{}", totals.repair_summary());
    if totals.sharded_commits > 0 {
        let _ = writeln!(
            report,
            "sharded: {} of {} commits multi-shard, {} merge-frontier pairs",
            totals.sharded_commits, totals.commits, totals.frontier_pairs,
        );
    }

    if args.flag("verify") {
        let batch = pipeline.batch_retained();
        if batch.pairs() == pipeline.retained().pairs() {
            let _ = writeln!(
                report,
                "verify: incremental == batch ({} pairs)",
                batch.len()
            );
        } else {
            return Err(format!(
                "verify FAILED: incremental {} pairs vs batch {} pairs",
                pipeline.retained().len(),
                batch.len()
            ));
        }
    }
    Ok(report)
}

/// `blast serve`: generate a dirty preset in memory, stream it through
/// the serving pipeline on this (writer) thread while a pool of HTTP
/// reader threads answers `/candidates`, `/topk`, `/stats` and `/metrics`
/// from epoch-published snapshots — lock-free reads under live ingest.
///
/// The bound address is printed to stdout (`serving on http://…`) as soon
/// as the listener is up, so scripts can scrape it while the command
/// runs; the returned report summarises the run after shutdown.
pub fn serve(args: &Args) -> Result<String, String> {
    use blast_datamodel::parallel::default_threads;
    use blast_serve::{ServePipeline, ServeState, ServeTotals, Server};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let (preset, scale, d) = dirty_preset_collection(args)?;
    let batch_size = args.get_usize("batch-size")?.unwrap_or(64);
    let linger_secs = args.get_usize("linger")?.unwrap_or(0);
    let addr = args.get("addr").unwrap_or("127.0.0.1");
    let port: u16 = match args.get("port") {
        None => 0,
        Some(p) => p
            .parse()
            .map_err(|_| format!("--port expects a port number, got {p:?}"))?,
    };
    // Reader-pool sizing follows the same ladder as the pipeline's worker
    // threads: --threads wins, else default_threads (which honours the
    // BLAST_THREADS env var), capped by the epoch's reader-slot budget.
    let readers = args
        .parallel_opts()?
        .threads
        .unwrap_or_else(|| default_threads(d.len()))
        .min(blast_serve::MAX_READERS);

    let mut pipeline = ServePipeline::new(incremental_pipeline(args)?);
    let state = ServeState {
        epoch: Arc::clone(pipeline.epoch()),
        metrics: pipeline.metrics().clone(),
        ingest_done: Arc::new(AtomicBool::new(false)),
    };
    let ingest_done = Arc::clone(&state.ingest_done);
    let server = Server::start(state, &format!("{addr}:{port}"), readers)
        .map_err(|e| format!("cannot bind {addr}:{port}: {e}"))?;
    // Scripts scrape this line while the server is live — print and flush
    // immediately rather than waiting for the final report.
    println!("serving on http://{}", server.addr());
    let _ = std::io::stdout().flush();

    let mut report = String::new();
    let _ = writeln!(
        report,
        "serve: {preset} × {scale} — {} profiles in micro-batches of {batch_size}, {readers} readers",
        d.len(),
    );
    let t0 = Instant::now();
    let mut commits = 0usize;
    for chunk in d.profiles().chunks(batch_size) {
        for profile in chunk {
            let pairs: Vec<(&str, &str)> = profile
                .values
                .iter()
                .map(|(a, v)| (d.attribute_name(*a), &**v))
                .collect();
            pipeline.insert(SourceId(0), &profile.external_id, pairs);
        }
        pipeline.commit_and_publish();
        commits += 1;
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    ingest_done.store(true, Ordering::SeqCst);

    if linger_secs > 0 {
        std::thread::sleep(Duration::from_secs(linger_secs as u64));
    }

    let _ = writeln!(
        report,
        "ingest: {commits} commits in {ingest_secs:.3}s — {:.1} commits/s, {:.0} profiles/s, {} final candidates at seq {}",
        commits as f64 / ingest_secs.max(1e-9),
        d.len() as f64 / ingest_secs.max(1e-9),
        pipeline.inner().retained().len(),
        pipeline.seq(),
    );
    let totals = ServeTotals::from_snapshot(&pipeline.metrics().snapshot());
    let _ = writeln!(
        report,
        "served: {} queries, {} snapshot swaps, stale epochs = {}, read p50 = {:.1}us, p99 = {:.1}us",
        totals.queries,
        totals.snapshot_swaps,
        totals.stale_epochs,
        totals.read_p50_secs * 1e6,
        totals.read_p99_secs * 1e6,
    );

    let verified = args.flag("verify");
    if verified && !pipeline.verify_equivalence() {
        server.shutdown();
        return Err(format!(
            "verify FAILED: published snapshot at seq {} diverges from the batch candidate set",
            pipeline.seq()
        ));
    }
    server.shutdown();
    if verified {
        let _ = writeln!(
            report,
            "verify: serve == incremental == batch ({} pairs at seq {})",
            pipeline.inner().retained().len(),
            pipeline.seq()
        );
    }
    Ok(report)
}

/// `GroundTruth` needs to be nameable above.
#[allow(unused)]
fn _type_check(gt: GroundTruth) {}
