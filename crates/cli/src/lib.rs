//! The `blast` command-line tool: run the BLAST pipeline on CSV data,
//! inspect the loose schema information, evaluate pair files, generate
//! the synthetic benchmarks, and serve the candidate graph over HTTP.
//!
//! ```text
//! blast block    --d1 a.csv --d2 b.csv --out pairs.csv [--gt gt.csv] [options]
//! blast dedup    --input data.csv --out pairs.csv [--gt gt.csv] [options]
//! blast stream   --input data.csv --batch-size 64 [--pruning wnp1] [--verify] [--stats]
//!                [--threads 4] [--shards 4] [--trace out.jsonl] [--metrics out.prom]
//! blast bench    --preset census --scale 0.05 [--threads 4] [--shards 4] [--verify]
//! blast serve    --preset census --scale 0.05 [--port 0] [--threads 4] [--linger 5]
//! blast schema   --d1 a.csv --d2 b.csv
//! blast evaluate --d1 a.csv --d2 b.csv --pairs pairs.csv --gt gt.csv
//! blast generate --preset ar1 --scale 0.1 --out-dir bench-data/
//! ```
//!
//! The library half exposes the commands as functions returning their
//! textual report, so integration tests drive them without spawning
//! processes.
//!
//! Each sub-command declares its option vocabulary in the `COMMANDS` table;
//! unknown or misused options fail with that sub-command's usage block
//! rather than the global one.

pub mod args;
pub mod commands;

use args::Args;

/// One sub-command: its option vocabulary (for validation) and its usage
/// block (printed on any argument error scoped to this command).
struct Command {
    name: &'static str,
    /// `--key value` options this command accepts.
    options: &'static [&'static str],
    /// Bare `--flag`s this command accepts.
    flags: &'static [&'static str],
    usage: &'static str,
    run: fn(&Args) -> Result<String, String>,
}

const BLOCK_USAGE: &str = "\
  blast block    --d1 A.csv --d2 B.csv [--out pairs.csv] [--gt gt.csv]
                 [--id-column NAME] [--c 2.0] [--d 2.0] [--no-entropy]
                 [--algorithm lmi|ac] [--lsh-threshold 0.5] [--no-glue]";

const DEDUP_USAGE: &str = "\
  blast dedup    --input DATA.csv [--out pairs.csv] [--gt gt.csv] [options]";

const STREAM_USAGE: &str = "\
  blast stream   --input DATA.csv [--batch-size 64] [--gt gt.csv]
                 [--pruning blast|wep|cep|wnp1|wnp2|cnp1|cnp2]
                 [--scheme arcs|cbs|ecbs|js|ejs] [--no-cleaning]
                 [--verify]  (check the final candidate set against a
                 from-scratch batch run — the equivalence contract)
                 [--threads N]  (worker threads for the parallel phases;
                 defaults to auto-scaling, or the BLAST_THREADS env var)
                 [--shards S]  (owner shards of the sharded commit path —
                 bit-identical output at any S; see README)
                 [--stats]  (per-commit RepairStats: dirty nodes, patched
                 CSR rows, full-rebuild fallbacks, phase timings)
                 [--trace OUT.jsonl]  (structured trace journal: one JSON
                 event per commit — tier, phase secs, flips, footprint)
                 [--metrics OUT.prom]  (Prometheus text exposition of the
                 pipeline's metrics registry after the run)
                 [--memory-budget BYTES]  (cold-tier residency: rows idle
                 for 2 commits demote to delta-encoded cold frames until
                 the hot structures fit the budget; k/m/g suffixes; the
                 output is bit-identical at any budget)
                 [--spill]  (hold cold frames in an unlinked temp file
                 instead of an in-memory arena; needs --memory-budget)";

const BENCH_USAGE: &str = "\
  blast bench    [--preset census] [--scale 0.05] [--batch-size 64]
                 [--threads N] [--shards S] [--pruning ...] [--scheme ...]
                 [--no-cleaning]  (generate a dirty preset in memory,
                 stream it, report commit throughput)
                 [--verify]  (check the final candidate set against a
                 from-scratch batch run)
                 [--memory-budget BYTES] [--spill]  (cold-tier residency;
                 see blast stream)
                 The BLAST_THREADS env var overrides the default thread
                 count when --threads is absent.";

const SERVE_USAGE: &str = "\
  blast serve    [--preset census] [--scale 0.05] [--batch-size 64]
                 [--addr 127.0.0.1] [--port 0]  (0 = ephemeral; the bound
                 address is printed as 'serving on http://...' on stdout)
                 [--threads N]  (HTTP reader-pool size and pipeline worker
                 threads; defaults to auto-scaling, or the BLAST_THREADS
                 env var) [--shards S] [--pruning ...] [--scheme ...]
                 [--no-cleaning]
                 [--linger SECS]  (keep serving after the ingest drains)
                 [--memory-budget BYTES] [--spill]  (cold-tier residency
                 on the writer; readers never see a cold row — the writer
                 rehydrates published neighbourhoods before each swap;
                 see blast stream)
                 [--verify]  (gate on published == incremental == batch)
                 Streams the preset through the incremental pipeline on
                 the writer thread while serving /candidates, /topk,
                 /stats and /metrics lock-free from epoch-published
                 snapshots.";

const SCHEMA_USAGE: &str = "\
  blast schema   --d1 A.csv --d2 B.csv [--algorithm lmi|ac] [--lsh-threshold T]";

const EVALUATE_USAGE: &str = "\
  blast evaluate --d1 A.csv --d2 B.csv --pairs pairs.csv --gt gt.csv";

const GENERATE_USAGE: &str = "\
  blast generate --preset ar1|ar2|prd|mov|dbp|census|cora|cddb
                 [--scale 1.0] --out-dir DIR";

/// The sub-command table (dispatch, validation, usage).
const COMMANDS: &[Command] = &[
    Command {
        name: "block",
        options: &[
            "d1",
            "d2",
            "out",
            "gt",
            "id-column",
            "c",
            "d",
            "algorithm",
            "lsh-threshold",
            "alpha",
        ],
        flags: &["no-entropy", "no-glue"],
        usage: BLOCK_USAGE,
        run: commands::block,
    },
    Command {
        name: "dedup",
        options: &[
            "input",
            "out",
            "gt",
            "id-column",
            "c",
            "d",
            "algorithm",
            "lsh-threshold",
            "alpha",
        ],
        flags: &["no-entropy", "no-glue"],
        usage: DEDUP_USAGE,
        run: commands::dedup,
    },
    Command {
        name: "stream",
        options: &[
            "input",
            "batch-size",
            "gt",
            "id-column",
            "pruning",
            "scheme",
            "threads",
            "shards",
            "trace",
            "metrics",
            "memory-budget",
        ],
        flags: &["verify", "stats", "no-cleaning", "spill"],
        usage: STREAM_USAGE,
        run: commands::stream,
    },
    Command {
        name: "bench",
        options: &[
            "preset",
            "scale",
            "batch-size",
            "threads",
            "shards",
            "pruning",
            "scheme",
            "memory-budget",
        ],
        flags: &["verify", "no-cleaning", "spill"],
        usage: BENCH_USAGE,
        run: commands::bench,
    },
    Command {
        name: "serve",
        options: &[
            "preset",
            "scale",
            "batch-size",
            "addr",
            "port",
            "linger",
            "threads",
            "shards",
            "pruning",
            "scheme",
            "memory-budget",
        ],
        flags: &["verify", "no-cleaning", "spill"],
        usage: SERVE_USAGE,
        run: commands::serve,
    },
    Command {
        name: "schema",
        options: &[
            "d1",
            "d2",
            "id-column",
            "algorithm",
            "lsh-threshold",
            "alpha",
        ],
        flags: &["no-glue"],
        usage: SCHEMA_USAGE,
        run: commands::schema,
    },
    Command {
        name: "evaluate",
        options: &["d1", "d2", "pairs", "gt", "id-column"],
        flags: &[],
        usage: EVALUATE_USAGE,
        run: commands::evaluate,
    },
    Command {
        name: "generate",
        options: &["preset", "scale", "out-dir"],
        flags: &[],
        usage: GENERATE_USAGE,
        run: commands::generate,
    },
];

/// Entry point shared by `main` and the tests: parses `argv` (without the
/// program name) and runs the sub-command, returning the report to print.
/// Argument errors carry the offending sub-command's usage block.
pub fn run(argv: &[String]) -> Result<String, String> {
    let (name, rest) = argv
        .split_first()
        .ok_or_else(|| format!("no command given\n\n{}", usage()))?;
    if matches!(name.as_str(), "help" | "--help" | "-h") {
        return Ok(usage());
    }
    let command = COMMANDS
        .iter()
        .find(|c| c.name == name.as_str())
        .ok_or_else(|| format!("unknown command {name:?}\n\n{}", usage()))?;
    let with_usage = |e: String| format!("{e}\n\nUSAGE:\n{}", command.usage);
    let args = Args::parse(rest).map_err(with_usage)?;
    args.validate(command.options, command.flags)
        .map_err(with_usage)?;
    (command.run)(&args)
}

/// The global usage text (assembled from the per-command blocks).
pub fn usage() -> String {
    let mut out = String::from(
        "blast — loosely schema-aware (meta-)blocking for entity resolution\n\nUSAGE:\n",
    );
    for (i, c) in COMMANDS.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(c.usage);
    }
    out.push_str(
        "\n\nInput CSVs are headered: one row per profile, one column per attribute,
the first column (or --id-column) is the record id. Ground truth is a
two-column headerless CSV of record ids.",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn no_command_is_an_error_with_usage() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&s(&["help"])).unwrap();
        assert!(out.contains("blast block"));
        assert!(out.contains("blast serve"));
        assert!(out.contains("BLAST_THREADS"));
    }

    #[test]
    fn unknown_flag_prints_the_subcommand_usage() {
        let err = run(&s(&["bench", "--warmup"])).unwrap_err();
        assert!(err.contains("unknown flag --warmup"), "{err}");
        assert!(err.contains("blast bench"), "scoped usage: {err}");
        assert!(
            !err.contains("blast block"),
            "global usage not dumped: {err}"
        );
    }

    #[test]
    fn value_option_without_a_value_is_hinted() {
        let err = run(&s(&["stream", "--input"])).unwrap_err();
        assert!(err.contains("--input expects a value"), "{err}");
        assert!(err.contains("blast stream"), "{err}");
    }

    #[test]
    fn usage_documents_the_threads_override() {
        for block in [STREAM_USAGE, BENCH_USAGE, SERVE_USAGE] {
            assert!(block.contains("BLAST_THREADS"), "{block}");
            assert!(block.contains("--verify"), "{block}");
            assert!(block.contains("--memory-budget"), "{block}");
            assert!(block.contains("--spill"), "{block}");
        }
    }
}
