//! The `blast` command-line tool: run the BLAST pipeline on CSV data,
//! inspect the loose schema information, evaluate pair files, and generate
//! the synthetic benchmarks.
//!
//! ```text
//! blast block    --d1 a.csv --d2 b.csv --out pairs.csv [--gt gt.csv] [options]
//! blast dedup    --input data.csv --out pairs.csv [--gt gt.csv] [options]
//! blast stream   --input data.csv --batch-size 64 [--pruning wnp1] [--verify] [--stats]
//!                [--threads 4] [--shards 4] [--trace out.jsonl] [--metrics out.prom]
//! blast bench    --preset census --scale 0.05 [--threads 4] [--shards 4] [--verify]
//! blast schema   --d1 a.csv --d2 b.csv
//! blast evaluate --d1 a.csv --d2 b.csv --pairs pairs.csv --gt gt.csv
//! blast generate --preset ar1 --scale 0.1 --out-dir bench-data/
//! ```
//!
//! The library half exposes the commands as functions returning their
//! textual report, so integration tests drive them without spawning
//! processes.

pub mod args;
pub mod commands;

use args::Args;

/// Entry point shared by `main` and the tests: parses `argv` (without the
/// program name) and runs the sub-command, returning the report to print.
pub fn run(argv: &[String]) -> Result<String, String> {
    let (command, rest) = argv
        .split_first()
        .ok_or_else(|| format!("no command given\n\n{}", usage()))?;
    let args = Args::parse(rest)?;
    match command.as_str() {
        "block" => commands::block(&args),
        "dedup" => commands::dedup(&args),
        "stream" => commands::stream(&args),
        "schema" => commands::schema(&args),
        "evaluate" => commands::evaluate(&args),
        "generate" => commands::generate(&args),
        "bench" => commands::bench(&args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command {other:?}\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
blast — loosely schema-aware (meta-)blocking for entity resolution

USAGE:
  blast block    --d1 A.csv --d2 B.csv [--out pairs.csv] [--gt gt.csv]
                 [--id-column NAME] [--c 2.0] [--d 2.0] [--no-entropy]
                 [--algorithm lmi|ac] [--lsh-threshold 0.5] [--no-glue]
  blast dedup    --input DATA.csv [--out pairs.csv] [--gt gt.csv] [options]
  blast stream   --input DATA.csv [--batch-size 64] [--gt gt.csv]
                 [--pruning blast|wep|cep|wnp1|wnp2|cnp1|cnp2]
                 [--scheme arcs|cbs|ecbs|js|ejs] [--no-cleaning] [--verify]
                 [--threads N]  (worker threads for the parallel phases;
                 defaults to auto-scaling, or the BLAST_THREADS env var)
                 [--shards S]  (owner shards of the sharded commit path —
                 bit-identical output at any S; see README)
                 [--stats]  (per-commit RepairStats: dirty nodes, patched
                 CSR rows, full-rebuild fallbacks, phase timings)
                 [--trace OUT.jsonl]  (structured trace journal: one JSON
                 event per commit — tier, phase secs, flips, footprint)
                 [--metrics OUT.prom]  (Prometheus text exposition of the
                 pipeline's metrics registry after the run)
  blast bench    [--preset census] [--scale 0.05] [--batch-size 64]
                 [--threads N] [--shards S] [--pruning ...] [--scheme ...]
                 [--no-cleaning] [--verify]  (generate a dirty preset in
                 memory, stream it, report commit throughput)
  blast schema   --d1 A.csv --d2 B.csv [--algorithm lmi|ac] [--lsh-threshold T]
  blast evaluate --d1 A.csv --d2 B.csv --pairs pairs.csv --gt gt.csv
  blast generate --preset ar1|ar2|prd|mov|dbp|census|cora|cddb
                 [--scale 1.0] --out-dir DIR

Input CSVs are headered: one row per profile, one column per attribute,
the first column (or --id-column) is the record id. Ground truth is a
two-column headerless CSV of record ids."
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn no_command_is_an_error_with_usage() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&s(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&s(&["help"])).unwrap();
        assert!(out.contains("blast block"));
    }
}
