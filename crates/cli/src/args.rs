//! Minimal `--key value` / `--flag` argument parsing (no external deps).

use std::collections::BTreeMap;

/// Parsed arguments: `--key value` pairs and bare `--flags`.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument list. Every option must start with `--`; an
    /// option followed by another option (or nothing) is a flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected an option, got {:?}", argv[i]))?;
            if key.is_empty() {
                return Err("empty option name".to_string());
            }
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    args.values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(args)
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// An optional float option.
    pub fn get_f64(&self, key: &str) -> Result<Option<f64>, String> {
        self.values
            .get(key)
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("--{key} expects a number, got {s:?}"))
            })
            .transpose()
    }

    /// An optional positive-integer option (≥ 1).
    pub fn get_usize(&self, key: &str) -> Result<Option<usize>, String> {
        self.values
            .get(key)
            .map(|s| match s.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("--{key} expects an integer ≥ 1, got {s:?}")),
            })
            .transpose()
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = Args::parse(&s(&["--d1", "a.csv", "--no-glue", "--c", "2.5"])).unwrap();
        assert_eq!(a.required("d1").unwrap(), "a.csv");
        assert!(a.flag("no-glue"));
        assert_eq!(a.get_f64("c").unwrap(), Some(2.5));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn usize_requires_positive_integer() {
        let a = Args::parse(&s(&["--threads", "4", "--shards", "0", "--b", "x"])).unwrap();
        assert_eq!(a.get_usize("threads").unwrap(), Some(4));
        assert_eq!(a.get_usize("missing").unwrap(), None);
        assert!(a.get_usize("shards").is_err(), "zero rejected");
        assert!(a.get_usize("b").is_err());
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Args::parse(&s(&["oops"])).is_err());
    }

    #[test]
    fn missing_required_reports_option_name() {
        let a = Args::parse(&[]).unwrap();
        let err = a.required("gt").unwrap_err();
        assert!(err.contains("--gt"));
    }

    #[test]
    fn bad_number_reports_value() {
        let a = Args::parse(&s(&["--c", "abc"])).unwrap();
        assert!(a.get_f64("c").is_err());
    }
}
