//! Minimal `--key value` / `--flag` argument parsing (no external deps).

use std::collections::BTreeMap;

/// Parsed arguments: `--key value` pairs and bare `--flags`.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument list. Every option must start with `--`; an
    /// option followed by another option (or nothing) is a flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected an option, got {:?}", argv[i]))?;
            if key.is_empty() {
                return Err("empty option name".to_string());
            }
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    args.values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(args)
    }

    /// A required string option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// An optional float option.
    pub fn get_f64(&self, key: &str) -> Result<Option<f64>, String> {
        self.values
            .get(key)
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("--{key} expects a number, got {s:?}"))
            })
            .transpose()
    }

    /// An optional positive-integer option (≥ 1).
    pub fn get_usize(&self, key: &str) -> Result<Option<usize>, String> {
        self.values
            .get(key)
            .map(|s| match s.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("--{key} expects an integer ≥ 1, got {s:?}")),
            })
            .transpose()
    }

    /// An optional byte-size option: a non-negative integer with an
    /// optional binary `k`/`m`/`g` suffix (case-insensitive), e.g.
    /// `--memory-budget 64m`. Zero is allowed — it is the evict-everything
    /// extreme of the residency policy.
    pub fn get_bytes(&self, key: &str) -> Result<Option<usize>, String> {
        let Some(raw) = self.values.get(key) else {
            return Ok(None);
        };
        let err =
            || format!("--{key} expects a byte size (e.g. 512k, 64m, 2g, 1048576), got {raw:?}");
        let (digits, mult) = match raw.chars().last().map(|c| c.to_ascii_lowercase()) {
            Some('k') => (&raw[..raw.len() - 1], 1usize << 10),
            Some('m') => (&raw[..raw.len() - 1], 1 << 20),
            Some('g') => (&raw[..raw.len() - 1], 1 << 30),
            _ => (raw.as_str(), 1),
        };
        let n: usize = digits.parse().map_err(|_| err())?;
        n.checked_mul(mult).map(Some).ok_or_else(err)
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Rejects options/flags outside a sub-command's vocabulary, so typos
    /// fail with that sub-command's usage instead of silently parsing. A
    /// value option that swallowed no value (it was last, or followed by
    /// another option) and a flag that swallowed one are reported with a
    /// targeted hint.
    pub fn validate(&self, options: &[&str], flags: &[&str]) -> Result<(), String> {
        for key in self.values.keys() {
            if !options.contains(&key.as_str()) {
                return Err(if flags.contains(&key.as_str()) {
                    format!("--{key} does not take a value")
                } else {
                    format!("unknown option --{key}")
                });
            }
        }
        for key in &self.flags {
            if !flags.contains(&key.as_str()) {
                return Err(if options.contains(&key.as_str()) {
                    format!("--{key} expects a value")
                } else {
                    format!("unknown flag --{key}")
                });
            }
        }
        Ok(())
    }

    /// The shared `--threads` / `--shards` pair of the incremental
    /// sub-commands (`stream`, `bench`, `serve`) — parsed in one place so
    /// the three commands cannot drift.
    pub fn parallel_opts(&self) -> Result<ParallelOpts, String> {
        Ok(ParallelOpts {
            threads: self.get_usize("threads")?,
            shards: self.get_usize("shards")?,
        })
    }
}

/// The parallelism knobs shared by `blast stream`/`bench`/`serve`. `None`
/// means auto-scale (which honours the `BLAST_THREADS` environment
/// override via `blast_datamodel::parallel::default_threads`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelOpts {
    /// Worker threads for the parallel phases (and the serve reader pool).
    pub threads: Option<usize>,
    /// Owner shards of the sharded commit path.
    pub shards: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = Args::parse(&s(&["--d1", "a.csv", "--no-glue", "--c", "2.5"])).unwrap();
        assert_eq!(a.required("d1").unwrap(), "a.csv");
        assert!(a.flag("no-glue"));
        assert_eq!(a.get_f64("c").unwrap(), Some(2.5));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn usize_requires_positive_integer() {
        let a = Args::parse(&s(&["--threads", "4", "--shards", "0", "--b", "x"])).unwrap();
        assert_eq!(a.get_usize("threads").unwrap(), Some(4));
        assert_eq!(a.get_usize("missing").unwrap(), None);
        assert!(a.get_usize("shards").is_err(), "zero rejected");
        assert!(a.get_usize("b").is_err());
    }

    #[test]
    fn bytes_accept_plain_and_suffixed_sizes() {
        let a = Args::parse(&s(&[
            "--a", "1048576", "--b", "512k", "--c", "64M", "--d", "2g", "--e", "0", "--f", "64q",
        ]))
        .unwrap();
        assert_eq!(a.get_bytes("a").unwrap(), Some(1 << 20));
        assert_eq!(a.get_bytes("b").unwrap(), Some(512 << 10));
        assert_eq!(a.get_bytes("c").unwrap(), Some(64 << 20));
        assert_eq!(a.get_bytes("d").unwrap(), Some(2 << 30));
        assert_eq!(
            a.get_bytes("e").unwrap(),
            Some(0),
            "zero is the evict-everything budget"
        );
        assert_eq!(a.get_bytes("missing").unwrap(), None);
        assert!(a.get_bytes("f").is_err(), "unknown suffix rejected");
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Args::parse(&s(&["oops"])).is_err());
    }

    #[test]
    fn missing_required_reports_option_name() {
        let a = Args::parse(&[]).unwrap();
        let err = a.required("gt").unwrap_err();
        assert!(err.contains("--gt"));
    }

    #[test]
    fn bad_number_reports_value() {
        let a = Args::parse(&s(&["--c", "abc"])).unwrap();
        assert!(a.get_f64("c").is_err());
    }

    #[test]
    fn validate_accepts_the_vocabulary() {
        let a = Args::parse(&s(&["--input", "x.csv", "--verify"])).unwrap();
        assert!(a.validate(&["input", "batch-size"], &["verify"]).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_and_misused_options() {
        let a = Args::parse(&s(&["--inptu", "x.csv"])).unwrap();
        let err = a.validate(&["input"], &["verify"]).unwrap_err();
        assert!(err.contains("unknown option --inptu"), "{err}");

        // A value option with no value parses as a flag; the error says
        // what is missing rather than calling it unknown.
        let a = Args::parse(&s(&["--input"])).unwrap();
        let err = a.validate(&["input"], &[]).unwrap_err();
        assert!(err.contains("--input expects a value"), "{err}");

        // A flag that swallowed a value gets the inverse hint.
        let a = Args::parse(&s(&["--verify", "yes"])).unwrap();
        let err = a.validate(&["input"], &["verify"]).unwrap_err();
        assert!(err.contains("--verify does not take a value"), "{err}");
    }

    #[test]
    fn parallel_opts_parse_together() {
        let a = Args::parse(&s(&["--threads", "4", "--shards", "2"])).unwrap();
        assert_eq!(
            a.parallel_opts().unwrap(),
            ParallelOpts {
                threads: Some(4),
                shards: Some(2)
            }
        );
        let a = Args::parse(&[]).unwrap();
        assert_eq!(a.parallel_opts().unwrap(), ParallelOpts::default());
        let a = Args::parse(&s(&["--threads", "0"])).unwrap();
        assert!(a.parallel_opts().is_err(), "zero threads rejected");
    }
}
