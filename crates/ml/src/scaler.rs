//! Feature standardisation (zero mean, unit variance) — linear SVMs are
//! scale-sensitive and the raw features span orders of magnitude
//! (JS ∈ \[0,1\] vs block counts in the thousands).

/// Per-dimension standardiser fitted on training data.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations on `rows` (all rows must share a
    /// dimension). Constant dimensions get σ = 1 so they standardise to 0.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no data");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; dim];
        for row in rows {
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for row in rows {
            for ((v, x), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Standardises a row in place.
    pub fn transform(&self, row: &mut [f64]) {
        for ((x, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_to_zero_mean_unit_var() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let scaler = StandardScaler::fit(&rows);
        let mut transformed: Vec<Vec<f64>> = rows.clone();
        for r in &mut transformed {
            scaler.transform(r);
        }
        for d in 0..2 {
            let mean: f64 = transformed.iter().map(|r| r[d]).sum::<f64>() / 3.0;
            let var: f64 = transformed.iter().map(|r| r[d] * r[d]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let rows = vec![vec![7.0], vec![7.0], vec![7.0]];
        let scaler = StandardScaler::fit(&rows);
        let mut r = vec![7.0];
        scaler.transform(&mut r);
        assert_eq!(r[0], 0.0);
    }
}
