//! A from-scratch linear SVM: hinge loss + L2 regularisation, trained with
//! Pegasos-style stochastic gradient descent.
//!
//! The reference supervised meta-blocking uses an off-the-shelf SVM with a
//! linear kernel; this implementation covers the same hypothesis class
//! (w·x + b) without external dependencies.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// SVM hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmParams {
    /// L2 regularisation strength λ.
    pub lambda: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// RNG seed for the shuffle (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        Self {
            lambda: 1e-4,
            epochs: 30,
            seed: 42,
        }
    }
}

/// A trained linear classifier `sign(w·x + b)`.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains on `(x, y)` rows with labels `y ∈ {-1, +1}`.
    ///
    /// # Panics
    /// Panics if the training set is empty or dimensions disagree.
    pub fn train(rows: &[Vec<f64>], labels: &[i8], params: SvmParams) -> Self {
        assert!(!rows.is_empty(), "empty training set");
        assert_eq!(rows.len(), labels.len(), "one label per row");
        let dim = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == dim),
            "inconsistent dimensions"
        );
        assert!(
            labels.iter().all(|&y| y == 1 || y == -1),
            "labels must be ±1"
        );

        let mut w = vec![0.0f64; dim];
        let mut b = 0.0f64;
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut t = 0usize;

        for _ in 0..params.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (params.lambda * t as f64);
                let x = &rows[i];
                let y = labels[i] as f64;
                let margin = y * (dot(&w, x) + b);
                // L2 shrink.
                let shrink = 1.0 - eta * params.lambda;
                for wi in &mut w {
                    *wi *= shrink;
                }
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(x) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y;
                }
            }
        }
        Self {
            weights: w,
            bias: b,
        }
    }

    /// The decision value w·x + b.
    pub fn decision(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    /// Classifies `x` (true = positive class).
    pub fn predict(&self, x: &[f64]) -> bool {
        self.decision(x) > 0.0
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn separates_linearly_separable_data() {
        // y = +1 iff x0 + x1 > 1.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..400 {
            let x0: f64 = rng.random_range(0.0..1.0);
            let x1: f64 = rng.random_range(0.0..1.0);
            // Margin gap to keep it separable.
            let s = x0 + x1;
            if (0.9..=1.1).contains(&s) {
                continue;
            }
            rows.push(vec![x0, x1]);
            labels.push(if s > 1.0 { 1 } else { -1 });
        }
        let svm = LinearSvm::train(&rows, &labels, SvmParams::default());
        let correct = rows
            .iter()
            .zip(&labels)
            .filter(|(x, &y)| svm.predict(x) == (y == 1))
            .count();
        assert!(
            correct as f64 / rows.len() as f64 > 0.97,
            "accuracy {}/{}",
            correct,
            rows.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.0],
            vec![1.0, 0.9],
        ];
        let labels = vec![-1, 1, -1, 1];
        let a = LinearSvm::train(&rows, &labels, SvmParams::default());
        let b = LinearSvm::train(&rows, &labels, SvmParams::default());
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    fn learns_bias_for_offset_classes() {
        // Both classes on the positive axis, separated at x = 5.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let labels: Vec<i8> = (0..100).map(|i| if i >= 50 { 1 } else { -1 }).collect();
        let svm = LinearSvm::train(
            &rows,
            &labels,
            SvmParams {
                epochs: 80,
                ..Default::default()
            },
        );
        assert!(!svm.predict(&[1.0]));
        assert!(svm.predict(&[9.0]));
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn rejects_bad_labels() {
        LinearSvm::train(&[vec![1.0]], &[0], SvmParams::default());
    }
}
