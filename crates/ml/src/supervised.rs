//! Supervised meta-blocking \[19\]: train on labelled edges, retain the edges
//! the classifier accepts.
//!
//! Training data: the edges whose pairs appear in the training ground truth
//! are positives; an equally sized, deterministically sampled set of other
//! edges are negatives (the problem is wildly imbalanced otherwise).
//! Classification is a global (WEP-style) decision per edge — \[19\] notes
//! node-centric thresholds are incompatible with a global classifier.

use crate::features::{edge_features, FEATURE_COUNT};
use crate::scaler::StandardScaler;
use crate::svm::{LinearSvm, SvmParams};
use blast_blocking::collection::BlockCollection;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::ground_truth::GroundTruth;
use blast_datamodel::hash::fx_hash_one;
use blast_graph::context::GraphSnapshot;
use blast_graph::pruning::common::collect_edge_accums;
use blast_graph::retained::RetainedPairs;

/// Configuration of supervised meta-blocking.
#[derive(Debug, Clone, Copy)]
pub struct SupervisedConfig {
    /// Fraction of the ground-truth matches used for training (the paper
    /// uses 10 %).
    pub train_fraction: f64,
    /// SVM hyper-parameters.
    pub svm: SvmParams,
    /// Deterministic seed for negative sampling.
    pub seed: u64,
}

impl Default for SupervisedConfig {
    fn default() -> Self {
        Self {
            train_fraction: 0.1,
            svm: SvmParams::default(),
            seed: 0xB1A57,
        }
    }
}

/// The supervised meta-blocking baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct SupervisedMetaBlocking {
    /// Configuration.
    pub config: SupervisedConfig,
}

impl SupervisedMetaBlocking {
    /// With the paper's configuration (10 % training matches).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restructures `blocks`. Returns the retained comparisons and the
    /// training ground truth used, so evaluation can exclude it (the paper
    /// evaluates on the full ground truth; we return it for flexibility).
    pub fn run(&self, blocks: &BlockCollection, gt: &GroundTruth) -> (RetainedPairs, GroundTruth) {
        let (train, _) = gt.split_train(self.config.train_fraction);
        let mut ctx = GraphSnapshot::build(blocks);
        ctx.ensure_degrees();

        // Pass 1: features of positives; deterministic hash-sampled
        // negatives (~4× the expected positives to be safe, trimmed after).
        let n_train = train.len().max(1);
        let total_edges: u64 = ctx.total_edges().max(1);
        // Sampling probability aiming at 4·n_train negatives.
        let p_scaled = ((4 * n_train) as f64 / total_edges as f64).min(1.0);
        let p_threshold = (p_scaled * u32::MAX as f64) as u64;
        let seed = self.config.seed;

        #[derive(Clone)]
        enum Sample {
            Pos([f64; FEATURE_COUNT]),
            Neg([f64; FEATURE_COUNT], u64),
        }
        let samples: Vec<Sample> = {
            let train = &train;
            let ctx_ref = &ctx;
            collect_edge_accums(ctx_ref, move |u, v, acc| {
                if train.is_match(ProfileId(u), ProfileId(v)) {
                    Some(Sample::Pos(edge_features(ctx_ref, u, v, acc)))
                } else if gt.is_match(ProfileId(u), ProfileId(v)) {
                    // A match outside the training split: its label is not
                    // available to the learner — never use it as a negative.
                    None
                } else {
                    let h = fx_hash_one(&(seed, u, v));
                    if (h & u32::MAX as u64) <= p_threshold {
                        Some(Sample::Neg(edge_features(ctx_ref, u, v, acc), h))
                    } else {
                        None
                    }
                }
            })
        };

        let mut positives: Vec<[f64; FEATURE_COUNT]> = Vec::new();
        let mut negatives: Vec<([f64; FEATURE_COUNT], u64)> = Vec::new();
        for s in samples {
            match s {
                Sample::Pos(f) => positives.push(f),
                Sample::Neg(f, h) => negatives.push((f, h)),
            }
        }
        if positives.is_empty() || negatives.is_empty() {
            // Degenerate input: nothing to learn from — retain everything.
            let pairs = collect_edge_accums(&ctx, |u, v, _| Some((ProfileId(u), ProfileId(v))));
            return (RetainedPairs::new(pairs), train);
        }
        // Balance classes deterministically (sort negatives by hash).
        negatives.sort_unstable_by_key(|(_, h)| *h);
        negatives.truncate(positives.len().max(8));

        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(positives.len() + negatives.len());
        let mut labels: Vec<i8> = Vec::with_capacity(rows.capacity());
        for f in &positives {
            rows.push(f.to_vec());
            labels.push(1);
        }
        for (f, _) in &negatives {
            rows.push(f.to_vec());
            labels.push(-1);
        }
        let scaler = StandardScaler::fit(&rows);
        for r in &mut rows {
            scaler.transform(r);
        }
        let svm = LinearSvm::train(&rows, &labels, self.config.svm);

        // Pass 2: classify every edge.
        let pairs = {
            let ctx_ref = &ctx;
            let scaler = &scaler;
            let svm = &svm;
            collect_edge_accums(ctx_ref, move |u, v, acc| {
                let mut f = edge_features(ctx_ref, u, v, acc).to_vec();
                scaler.transform(&mut f);
                svm.predict(&f).then_some((ProfileId(u), ProfileId(v)))
            })
        };
        (RetainedPairs::new(pairs), train)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::block::Block;
    use blast_blocking::key::ClusterId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// A clean-clean collection where matching pairs (i, i+n) share many
    /// blocks and non-matching pairs share one noisy block.
    fn blocks_and_gt(n: u32) -> (BlockCollection, GroundTruth) {
        let mut blocks = Vec::new();
        let mut gt = GroundTruth::new();
        for i in 0..n {
            for r in 0..4 {
                blocks.push(Block::new(
                    format!("m{i}_{r}"),
                    ClusterId::GLUE,
                    ids(&[i, n + i]),
                    n,
                ));
            }
            gt.insert(ProfileId(i), ProfileId(n + i));
            // Noise: i also co-occurs once with a non-match.
            blocks.push(Block::new(
                format!("noise{i}"),
                ClusterId::GLUE,
                ids(&[i, n + (i + 1) % n]),
                n,
            ));
        }
        (BlockCollection::new(blocks, true, n, 2 * n), gt)
    }

    #[test]
    fn learns_to_separate_matches_from_noise() {
        let (blocks, gt) = blocks_and_gt(60);
        let (retained, _train) = SupervisedMetaBlocking::new().run(&blocks, &gt);
        let detected = retained.iter().filter(|&(a, b)| gt.is_match(a, b)).count();
        // High recall on matches…
        assert!(
            detected as f64 / gt.len() as f64 > 0.9,
            "recall {detected}/{}",
            gt.len()
        );
        // …and most noise edges rejected.
        let noise_kept = retained.len() - detected;
        assert!(
            noise_kept < retained.len() / 2,
            "too much noise survived: {noise_kept}/{}",
            retained.len()
        );
    }

    #[test]
    fn deterministic() {
        let (blocks, gt) = blocks_and_gt(40);
        let (a, _) = SupervisedMetaBlocking::new().run(&blocks, &gt);
        let (b, _) = SupervisedMetaBlocking::new().run(&blocks, &gt);
        assert_eq!(a.pairs(), b.pairs());
    }

    #[test]
    fn empty_ground_truth_degrades_gracefully() {
        let (blocks, _) = blocks_and_gt(10);
        let (retained, _) = SupervisedMetaBlocking::new().run(&blocks, &GroundTruth::new());
        // No labels → everything retained (no information to prune on).
        assert!(!retained.is_empty());
    }
}
