//! Schema-agnostic edge features for supervised meta-blocking.
//!
//! Following \[19\], every candidate comparison (edge) is described by
//! graph-derived features only — no schema knowledge: the five traditional
//! edge weights and the block counts of the two endpoints.

use blast_graph::context::{EdgeAccum, GraphSnapshot};
use blast_graph::weights::{EdgeWeigher, WeightingScheme};

/// Number of features per edge.
pub const FEATURE_COUNT: usize = 7;

/// Computes the feature vector of edge (u, v):
/// `[ARCS, JS, EJS, CBS, ECBS, |B_u|, |B_v|]`.
///
/// Requires [`GraphSnapshot::ensure_degrees`] (EJS).
pub fn edge_features(ctx: &GraphSnapshot, u: u32, v: u32, acc: &EdgeAccum) -> [f64; FEATURE_COUNT] {
    let mut out = [0.0; FEATURE_COUNT];
    for (slot, scheme) in out.iter_mut().zip(WeightingScheme::ALL) {
        *slot = scheme.weight(ctx, u, v, acc);
    }
    // Local block counts, symmetrised (min, max) so the feature doesn't
    // depend on which endpoint sits in which collection.
    let bu = ctx.node_blocks(u) as f64;
    let bv = ctx.node_blocks(v) as f64;
    out[5] = bu.min(bv);
    out[6] = bu.max(bv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;
    use blast_datamodel::entity::ProfileId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    fn ctx_blocks() -> BlockCollection {
        let blocks = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
        ];
        BlockCollection::new(blocks, false, 3, 3)
    }

    #[test]
    fn features_match_schemes() {
        let blocks = ctx_blocks();
        let mut ctx = GraphSnapshot::build(&blocks);
        ctx.ensure_degrees();
        let acc = ctx.edge(0, 1).unwrap();
        let f = edge_features(&ctx, 0, 1, &acc);
        for (i, scheme) in WeightingScheme::ALL.iter().enumerate() {
            assert_eq!(f[i], scheme.weight(&ctx, 0, 1, &acc), "{}", scheme.name());
        }
        assert_eq!(f[5], 2.0); // min(|B_0|, |B_1|)
        assert_eq!(f[6], 2.0);
    }

    #[test]
    fn features_symmetric_in_endpoints() {
        let blocks = ctx_blocks();
        let mut ctx = GraphSnapshot::build(&blocks);
        ctx.ensure_degrees();
        let a01 = ctx.edge(0, 1).unwrap();
        let a10 = ctx.edge(1, 0).unwrap();
        assert_eq!(
            edge_features(&ctx, 0, 1, &a01),
            edge_features(&ctx, 1, 0, &a10)
        );
    }
}
