//! Supervised meta-blocking \[19\] — the learned baseline of §4.1.1.
//!
//! Each blocking-graph edge gets a vector of schema-agnostic features (the
//! five traditional weighting schemes plus the endpoints' block counts); a
//! linear SVM is trained on edges labelled from a fraction of the ground
//! truth (the paper uses 10 % of the matches) and the retained comparisons
//! are the positively classified edges — a WEP-style global decision, since
//! WNP is incompatible with supervised meta-blocking.
//!
//! The SVM is implemented from scratch ([`svm`]): hinge loss, L2
//! regularisation, Pegasos-style SGD — the same decision family (linear
//! kernel) the reference reports as best and fastest.

pub mod features;
pub mod scaler;
pub mod supervised;
pub mod svm;

pub use features::{edge_features, FEATURE_COUNT};
pub use scaler::StandardScaler;
pub use supervised::{SupervisedConfig, SupervisedMetaBlocking};
pub use svm::{LinearSvm, SvmParams};
