//! The writer side of the serving layer: an [`IncrementalPipeline`] whose
//! every commit publishes an immutable [`ServeSnapshot`] into an
//! [`Epoch`].
//!
//! [`ServePipeline`] wraps the engine rather than patching it: the engine
//! keeps its batch-equivalence contract untouched, and this wrapper
//! translates each [`CommitOutcome`]'s `PairDelta` (plus the store's
//! liveness bookkeeping) into a [`CommitUpdate`] for the
//! [`SnapshotBuilder`]. Because the snapshot is built by replaying the
//! engine's own deltas, the published candidate set at seq N is — by
//! construction — exactly `retained()` after commit N, which the
//! equivalence tests and the CI gate then pin against `batch_retained()`.

use crate::epoch::Epoch;
use crate::metrics::ServeMetrics;
use crate::snapshot::{CommitUpdate, ServeSnapshot, SnapshotBuilder};
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_incremental::{CommitOutcome, IncrementalPipeline};
use std::sync::Arc;

/// An incremental pipeline that epoch-publishes a [`ServeSnapshot`] per
/// commit. Single-owner (the writer thread); readers register on
/// [`ServePipeline::epoch`] and never touch this struct.
pub struct ServePipeline {
    inner: IncrementalPipeline,
    builder: SnapshotBuilder,
    epoch: Arc<Epoch<ServeSnapshot>>,
    metrics: ServeMetrics,
    /// Commit sequence of the last published snapshot (0 = pre-ingest).
    seq: u64,
    /// Ids mutated since the last commit (classified live/dead at commit).
    touched: Vec<ProfileId>,
    /// The last published view (chunk-shared with the epoch's current).
    latest: ServeSnapshot,
}

impl ServePipeline {
    /// Wraps an engine. The serve metrics register on the engine's own
    /// registry, so one `/metrics` page exports both the commit and the
    /// serve families.
    pub fn new(inner: IncrementalPipeline) -> Self {
        let metrics = ServeMetrics::on(Arc::clone(inner.metrics().registry()));
        Self {
            inner,
            builder: SnapshotBuilder::new(),
            epoch: Arc::new(Epoch::new(ServeSnapshot::default())),
            metrics,
            seq: 0,
            touched: Vec::new(),
            latest: ServeSnapshot::default(),
        }
    }

    /// The epoch readers register on ([`Epoch::register`]).
    pub fn epoch(&self) -> &Arc<Epoch<ServeSnapshot>> {
        &self.epoch
    }

    /// The serve-side metric handles (cloneable into reader threads).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The wrapped engine (read access — e.g. for the equivalence oracle).
    pub fn inner(&self) -> &IncrementalPipeline {
        &self.inner
    }

    /// Seq of the last published snapshot.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The last published view (chunk-shared, cheap to clone).
    pub fn latest(&self) -> &ServeSnapshot {
        &self.latest
    }

    /// Inserts a profile (see [`IncrementalPipeline::insert`]).
    pub fn insert<'a>(
        &mut self,
        source: SourceId,
        external_id: &str,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> ProfileId {
        let id = self.inner.insert(source, external_id, pairs);
        self.touched.push(id);
        id
    }

    /// Replaces a profile's values (see [`IncrementalPipeline::update`]).
    pub fn update<'a>(
        &mut self,
        id: ProfileId,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) {
        self.inner.update(id, pairs);
        self.touched.push(id);
    }

    /// Tombstones a profile (see [`IncrementalPipeline::delete`]).
    pub fn delete(&mut self, id: ProfileId) {
        self.inner.delete(id);
        self.touched.push(id);
    }

    /// Commits the pending micro-batch and publishes the resulting view at
    /// the next seq. Returns the engine's outcome.
    pub fn commit_and_publish(&mut self) -> CommitOutcome {
        let outcome = self.inner.commit();
        self.seq += 1;

        self.touched.sort_unstable();
        self.touched.dedup();
        let mut update = CommitUpdate {
            seq: self.seq,
            blocks: outcome.blocks as u64,
            ..CommitUpdate::default()
        };
        let store = self.inner.store();
        for &id in &self.touched {
            if store.is_live(id) {
                let ext = store.external_id_of(id).unwrap_or_default();
                update.upserts.push((id.0, Arc::from(ext)));
            } else {
                update.deletes.push(id.0);
            }
        }
        self.touched.clear();
        update.retracted = outcome
            .delta
            .retracted
            .iter()
            .map(|&(a, b)| (a.0, b.0))
            .collect();
        // Weights are stamped from the engine's post-commit accumulators —
        // the same inputs the pruning decision used. Under a memory
        // budget the residency sweep may have demoted the endpoints' slot
        // rows right after the commit; rehydrate them here, on the
        // writer, so published readers never observe (or pay for) a cold
        // slot.
        let mut endpoints: Vec<u32> = outcome
            .delta
            .added
            .iter()
            .flat_map(|&(a, b)| [a.0, b.0])
            .collect();
        endpoints.sort_unstable();
        endpoints.dedup();
        self.inner.prepare_reads(&endpoints);
        update.added = outcome
            .delta
            .added
            .iter()
            .map(|&(a, b)| {
                let w = self.inner.edge_weight(a.0, b.0).unwrap_or(0.0);
                (a.0, b.0, w)
            })
            .collect();

        let snap = self.builder.apply(&update);
        self.latest = snap.clone();
        let stale = self.epoch.publish(snap);
        self.metrics.record_swap(stale);
        outcome
    }

    /// Whether the last published candidate set equals the engine's
    /// current retained set *and* its from-scratch batch counterpart — the
    /// read-your-writes equivalence gate. O(pairs); off the commit path.
    pub fn verify_equivalence(&self) -> bool {
        let published = self.latest.all_pairs();
        let retained: Vec<(u32, u32)> = self
            .inner
            .retained()
            .iter()
            .map(|(a, b)| (a.0, b.0))
            .collect();
        if published != retained {
            return false;
        }
        let batch: Vec<(u32, u32)> = self
            .inner
            .batch_retained()
            .iter()
            .map(|(a, b)| (a.0, b.0))
            .collect();
        published == batch
    }
}

impl std::fmt::Debug for ServePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServePipeline")
            .field("seq", &self.seq)
            .field("pairs", &self.builder.pairs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_graph::meta::PruningAlgorithm;
    use blast_graph::weights::WeightingScheme;
    use blast_incremental::{CleaningConfig, IncrementalPruning};

    fn serve_pipeline(cleaning: CleaningConfig) -> ServePipeline {
        ServePipeline::new(IncrementalPipeline::dirty(
            WeightingScheme::Cbs,
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1),
            cleaning,
        ))
    }

    #[test]
    fn every_commit_publishes_an_equivalent_snapshot() {
        let mut p = serve_pipeline(CleaningConfig::default());
        let mut reader = p.epoch().register().expect("slot");
        let rows = [
            "john abram jr car seller 1985 main street",
            "ellen smith 85 retail abram st 30 ny",
            "jon jr abram 85 car retail main st",
            "ellen smith may 10 1985 retailer abram street ny",
        ];
        for (i, row) in rows.iter().enumerate() {
            p.insert(SourceId(0), &format!("p{i}"), [("text", *row)]);
            p.commit_and_publish();
            assert_eq!(p.seq(), (i + 1) as u64);
            assert!(p.verify_equivalence(), "step {i}");
            let guard = reader.pin();
            assert_eq!(guard.seq(), p.seq(), "reader sees the fresh seq");
            assert_eq!(guard.live(), (i + 1) as u32);
            assert_eq!(guard.external_id(i as u32), Some(format!("p{i}").as_str()));
        }
        // The serve family recorded one swap per commit on the shared
        // registry.
        let snap = p.metrics().snapshot();
        assert_eq!(snap.counter(blast_obs::names::SERVE_SNAPSHOT_SWAPS), 4);
        assert_eq!(snap.counter(blast_obs::names::COMMIT_COUNT), 4);
    }

    #[test]
    fn deletes_retract_and_tombstone_in_the_published_view() {
        // Purging is off: in a two-profile corpus every block holds the
        // whole corpus and default purging would drop them all.
        let mut p = serve_pipeline(CleaningConfig::none());
        let a = p.insert(SourceId(0), "a", [("t", "alpha beta gamma")]);
        p.insert(SourceId(0), "b", [("t", "alpha beta gamma")]);
        p.commit_and_publish();
        assert!(p.latest().contains(0, 1));
        assert!(p.latest().candidates(0).unwrap()[0].weight > 0.0);

        p.delete(a);
        p.commit_and_publish();
        let snap = p.latest();
        assert!(!snap.contains(0, 1));
        assert!(!snap.is_live(0));
        assert!(snap.is_live(1));
        assert_eq!(snap.external_id(0), Some("a"), "tombstones keep their id");
        assert!(p.verify_equivalence());
    }

    #[test]
    fn insert_then_delete_in_one_batch_publishes_a_tombstone() {
        let mut p = serve_pipeline(CleaningConfig::none());
        let a = p.insert(SourceId(0), "a", [("t", "x y")]);
        p.delete(a);
        p.commit_and_publish();
        assert!(!p.latest().is_live(0));
        assert_eq!(p.latest().live(), 0);
        assert!(p.verify_equivalence());
    }
}
