//! `blast-serve`: the online candidate-serving layer — epoch-published
//! snapshots and lock-free concurrent reads under live ingest.
//!
//! The incremental engine ([`blast_incremental::IncrementalPipeline`])
//! turns streamed mutations into candidate-pair deltas; this crate makes
//! the result *queryable while it changes*. The design is a strict
//! reader/writer split:
//!
//! * **Writer** — [`ServePipeline`] wraps the engine; each commit replays
//!   the engine's `PairDelta` into a [`SnapshotBuilder`] and publishes the
//!   resulting immutable [`ServeSnapshot`] (tagged with the commit seq)
//!   into an [`Epoch`].
//! * **Readers** — any number of threads register an epoch [`Reader`] and
//!   answer queries by pinning the current snapshot: wait-free on the read
//!   path (two atomic stores around a pointer load), no `Mutex`/`RwLock`
//!   anywhere a query runs. No reader ever blocks a commit; no commit
//!   ever blocks a reader.
//!
//! Consistency: every query observes exactly one published version, and
//! the version at seq N holds exactly the batch-equivalent candidate set
//! at commit N (the read-your-writes gate `exp_serve` enforces). Memory:
//! snapshots are chunked copy-on-write ([`snapshot::CHUNK_NODES`] rows per
//! `Arc`'d chunk), so publishing costs O(dirty rows + chunks), and epoch
//! reclamation ([`epoch`]) frees retired versions as soon as no pinned
//! reader can still see them — the `serve.stale_epochs` gauge is the
//! backlog.
//!
//! [`http`] mounts the whole thing behind a zero-dependency HTTP/1.1
//! server (`/candidates`, `/topk`, `/stats`, `/metrics`); `blast serve`
//! drives a live ingest against it.

pub mod epoch;
pub mod http;
pub mod metrics;
pub mod pipeline;
pub mod snapshot;

pub use epoch::{Epoch, Guard, Reader, MAX_READERS};
pub use http::{ServeState, Server};
pub use metrics::{ServeMetrics, ServeTotals};
pub use pipeline::ServePipeline;
pub use snapshot::{Candidate, CommitUpdate, ServeSnapshot, SnapshotBuilder};
