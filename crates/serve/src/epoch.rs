//! Epoch-published shared values: one writer swaps immutable versions in,
//! any number of readers observe them **lock-free and wait-free**.
//!
//! The serving layer's contract is asymmetric: commits are rare (tens to
//! thousands per second) and queries are hot (readers must never touch a
//! `Mutex`/`RwLock`, never spin, and never block a commit). The classic
//! shapes all fail one side of it — `RwLock<Arc<T>>` serialises readers
//! against the writer's swap, and a bare `AtomicPtr` swap leaves the
//! writer unable to tell when the previous version can be freed.
//!
//! [`Epoch`] solves reclamation with **quiescent-state tracking** (the
//! scheme RCU-style systems use): every registered reader owns one
//! cache-line-padded sequence slot that is *even while quiescent* and *odd
//! while a read is pinned*. Reading is two `SeqCst` stores around a
//! pointer load — constant work, no loops, no CAS, so the read path is
//! wait-free. Publishing swaps the current pointer, records the sequence
//! vector it observed, and frees a retired version only once every slot
//! that was odd at retirement has since moved — proof its reader finished
//! the read that might have seen the old pointer.
//!
//! Why this is safe (the Dekker-style argument, all four accesses
//! `SeqCst`): order the reader's *pin store* and the writer's *pointer
//! swap* in the single total order of `SeqCst` operations. If the pin
//! precedes the swap, the writer's post-swap scan of the slots observes
//! the odd sequence (or a later value — in which case the reader has
//! already unpinned) and refuses to free. If the swap precedes the pin,
//! the reader's subsequent pointer load observes the *new* pointer, so
//! the retired one was never reachable from that pin. Either way no
//! reader dereferences freed memory.
//!
//! Retired-but-unreclaimed versions are the **stale epochs** the serving
//! metrics gauge reports: a reader camping on a pin keeps exactly the
//! versions it might still see alive, and nothing else.

use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum concurrently registered readers (one bit of the claim mask).
pub const MAX_READERS: usize = 64;

/// One reader's sequence slot, padded to a cache line so reader pins never
/// false-share with their neighbours.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Slot(AtomicU64);

/// A retired version awaiting reclamation: the pointer plus the slot
/// sequences the writer observed right after unlinking it.
struct Retired<T> {
    ptr: *mut T,
    seqs: [u64; MAX_READERS],
}

// Retired pointers are owned by the epoch (readers only borrow).
unsafe impl<T: Send> Send for Retired<T> {}

/// An epoch-published value of type `T`: see the module docs.
pub struct Epoch<T> {
    current: AtomicPtr<T>,
    /// Bitmask of claimed reader slots.
    claimed: AtomicU64,
    slots: Box<[Slot; MAX_READERS]>,
    /// Number of [`Epoch::publish`] calls.
    swaps: AtomicU64,
    /// Writer-side retirement queue. Only `publish`/`collect` lock it —
    /// never the read path.
    retired: Mutex<Vec<Retired<T>>>,
}

// The epoch hands `&T` to arbitrary threads and owns `T`s across threads.
unsafe impl<T: Send + Sync> Send for Epoch<T> {}
unsafe impl<T: Send + Sync> Sync for Epoch<T> {}

impl<T> Epoch<T> {
    /// A new epoch publishing `initial` as version zero.
    pub fn new(initial: T) -> Self {
        Self {
            current: AtomicPtr::new(Box::into_raw(Box::new(initial))),
            claimed: AtomicU64::new(0),
            slots: Box::new(std::array::from_fn(|_| Slot::default())),
            swaps: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Registers a reader, claiming one of the [`MAX_READERS`] slots.
    /// Returns `None` when every slot is taken. Registration is a CAS loop
    /// on the claim mask — it is *not* the read hot path.
    pub fn register(self: &Arc<Self>) -> Option<Reader<T>> {
        loop {
            let mask = self.claimed.load(Ordering::Acquire);
            let free = !mask;
            if free == 0 {
                return None;
            }
            let index = free.trailing_zeros() as usize;
            let bit = 1u64 << index;
            if self
                .claimed
                .compare_exchange(mask, mask | bit, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                debug_assert!(self.slots[index]
                    .0
                    .load(Ordering::Relaxed)
                    .is_multiple_of(2));
                return Some(Reader {
                    epoch: Arc::clone(self),
                    index,
                });
            }
        }
    }

    /// Publishes a new version, retiring the previous one, and attempts to
    /// reclaim every retired version no pinned reader can still see.
    /// Returns the number of versions still awaiting reclamation (the
    /// stale-epoch gauge). Writer-side only; never called by readers.
    pub fn publish(&self, value: T) -> usize {
        let new = Box::into_raw(Box::new(value));
        let old = self.current.swap(new, Ordering::SeqCst);
        let seqs = std::array::from_fn(|i| self.slots[i].0.load(Ordering::SeqCst));
        self.swaps.fetch_add(1, Ordering::Relaxed);
        let mut retired = self.retired.lock().expect("epoch writer poisoned");
        retired.push(Retired { ptr: old, seqs });
        Self::collect_locked(&self.slots, &mut retired);
        retired.len()
    }

    /// Re-attempts reclamation without publishing (e.g. on an idle tick).
    /// Returns the remaining stale-epoch count.
    pub fn collect(&self) -> usize {
        let mut retired = self.retired.lock().expect("epoch writer poisoned");
        Self::collect_locked(&self.slots, &mut retired);
        retired.len()
    }

    /// Number of versions published so far (excluding the initial one).
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Retired versions not yet reclaimed (diagnostics; takes the writer
    /// lock, so keep it off the read path).
    pub fn stale_epochs(&self) -> usize {
        self.retired.lock().expect("epoch writer poisoned").len()
    }

    /// Frees every retired version whose observed-odd slots have all moved
    /// on. Runs under the retirement lock.
    fn collect_locked(slots: &[Slot; MAX_READERS], retired: &mut Vec<Retired<T>>) {
        retired.retain(|r| {
            let still_pinned = r.seqs.iter().enumerate().any(|(i, &seq)| {
                // Even = quiescent at retirement; odd + unchanged = that
                // reader may still hold the retired pointer.
                seq % 2 == 1 && slots[i].0.load(Ordering::SeqCst) == seq
            });
            if !still_pinned {
                // SAFETY: every reader that could have loaded this pointer
                // was observed quiescent (or has re-pinned, in which case
                // its load — SeqCst-after its pin store, which is
                // SeqCst-after our swap — saw a newer pointer).
                unsafe { drop(Box::from_raw(r.ptr)) };
            }
            still_pinned
        });
    }
}

impl<T> Drop for Epoch<T> {
    fn drop(&mut self) {
        // No readers can exist here: `Reader` holds an `Arc<Epoch>`.
        let current = *self.current.get_mut();
        unsafe { drop(Box::from_raw(current)) };
        for r in self
            .retired
            .get_mut()
            .expect("epoch writer poisoned")
            .drain(..)
        {
            unsafe { drop(Box::from_raw(r.ptr)) };
        }
    }
}

impl<T> std::fmt::Debug for Epoch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Epoch")
            .field("swaps", &self.swap_count())
            .field(
                "readers",
                &self.claimed.load(Ordering::Relaxed).count_ones(),
            )
            .finish()
    }
}

/// A registered reader: owns one sequence slot of its epoch. Cheap to keep
/// per thread; [`Reader::pin`] is the wait-free read entry point.
pub struct Reader<T> {
    epoch: Arc<Epoch<T>>,
    index: usize,
}

impl<T> Reader<T> {
    /// Pins the current version for reading. Wait-free: one sequence
    /// store, one pointer load. The guard borrows the reader mutably, so a
    /// reader holds at most one pin at a time (nested pins would corrupt
    /// the even/odd protocol).
    pub fn pin(&mut self) -> Guard<'_, T> {
        let slot = &self.epoch.slots[self.index].0;
        let seq = slot.load(Ordering::Relaxed);
        debug_assert!(seq.is_multiple_of(2), "reader already pinned");
        // SeqCst store-then-load: see the module-level safety argument.
        slot.store(seq + 1, Ordering::SeqCst);
        let ptr = self.epoch.current.load(Ordering::SeqCst);
        Guard { reader: self, ptr }
    }

    /// The shared epoch (e.g. for stats).
    pub fn epoch(&self) -> &Arc<Epoch<T>> {
        &self.epoch
    }
}

impl<T> Drop for Reader<T> {
    fn drop(&mut self) {
        let bit = 1u64 << self.index;
        self.epoch.claimed.fetch_and(!bit, Ordering::AcqRel);
    }
}

impl<T> std::fmt::Debug for Reader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reader").field("slot", &self.index).finish()
    }
}

/// A pinned read of one published version. Dereferences to the version;
/// dropping it unpins (one `Release` store).
pub struct Guard<'a, T> {
    reader: &'a mut Reader<T>,
    ptr: *const T,
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the pointer was loaded while this reader's slot was odd;
        // the writer will not free it until the slot moves (guard drop).
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        let slot = &self.reader.epoch.slots[self.reader.index].0;
        let seq = slot.load(Ordering::Relaxed);
        debug_assert!(seq % 2 == 1, "guard without a pin");
        slot.store(seq + 1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts live instances so reclamation is observable.
    struct Tracked(u64, Arc<AtomicUsize>);

    impl Tracked {
        fn new(v: u64, live: &Arc<AtomicUsize>) -> Self {
            live.fetch_add(1, Ordering::SeqCst);
            Tracked(v, Arc::clone(live))
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.1.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn publish_and_read_roundtrip() {
        let epoch = Arc::new(Epoch::new(0u64));
        let mut reader = epoch.register().expect("slot");
        assert_eq!(*reader.pin(), 0);
        epoch.publish(7);
        assert_eq!(*reader.pin(), 7);
        assert_eq!(epoch.swap_count(), 1);
    }

    #[test]
    fn unpinned_versions_are_reclaimed() {
        let live = Arc::new(AtomicUsize::new(0));
        let epoch = Arc::new(Epoch::new(Tracked::new(0, &live)));
        let mut reader = epoch.register().expect("slot");
        for v in 1..=100 {
            let guard = reader.pin();
            assert!(guard.0 < v);
            drop(guard);
            let stale = epoch.publish(Tracked::new(v, &live));
            // The reader was quiescent at every retirement: nothing
            // lingers beyond the freshly retired version at worst.
            assert!(stale <= 1, "stale epochs grew to {stale}");
        }
        assert!(live.load(Ordering::SeqCst) <= 2);
        drop(reader);
        drop(epoch);
        assert_eq!(live.load(Ordering::SeqCst), 0, "drop frees everything");
    }

    #[test]
    fn pinned_reader_keeps_its_version_alive() {
        let live = Arc::new(AtomicUsize::new(0));
        let epoch = Arc::new(Epoch::new(Tracked::new(0, &live)));
        let mut reader = epoch.register().expect("slot");
        let guard = reader.pin();
        assert_eq!(guard.0, 0);
        for v in 1..=10 {
            epoch.publish(Tracked::new(v, &live));
        }
        // The pinned version 0 plus the current version must be alive (the
        // intermediates were retired while the slot value never moved, but
        // version 0 is the one the guard actually sees).
        assert_eq!(guard.0, 0, "pinned read is immutable");
        assert!(epoch.stale_epochs() >= 1, "camping pin blocks reclamation");
        drop(guard);
        assert_eq!(epoch.collect(), 0, "unpinning releases the backlog");
        assert_eq!(live.load(Ordering::SeqCst), 1, "only current remains");
    }

    #[test]
    fn slots_are_reusable_and_bounded() {
        let epoch = Arc::new(Epoch::new(0u64));
        let readers: Vec<_> = (0..MAX_READERS)
            .map(|_| epoch.register().unwrap())
            .collect();
        assert!(epoch.register().is_none(), "slots exhausted");
        drop(readers);
        assert!(epoch.register().is_some(), "slots recycle");
    }

    #[test]
    fn concurrent_readers_never_see_torn_versions() {
        // Versions carry a self-consistency stamp: (v, v * 3). A torn or
        // freed read would break the invariant.
        let epoch = Arc::new(Epoch::new((0u64, 0u64)));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let epoch = Arc::clone(&epoch);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut reader = epoch.register().expect("slot");
                    let mut last = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let guard = reader.pin();
                        let (v, stamp) = *guard;
                        assert_eq!(stamp, v * 3, "torn read");
                        assert!(v >= last, "versions observed non-monotonically");
                        last = v;
                    }
                });
            }
            for v in 1..=10_000u64 {
                epoch.publish((v, v * 3));
            }
            stop.store(1, Ordering::Relaxed);
        });
        assert_eq!(epoch.swap_count(), 10_000);
        assert_eq!(epoch.collect(), 0);
    }
}
