//! A zero-dependency HTTP/1.1 front end over the epoch-published snapshot.
//!
//! `std` only: one shared [`TcpListener`] and a small fixed pool of reader
//! threads that each block in `accept` concurrently — the kernel
//! load-balances incoming connections across the pool, so there is no
//! user-space dispatch queue (and no lock) in front of the readers.
//! Each worker owns one epoch [`Reader`](crate::epoch::Reader) slot;
//! answering a query is
//! pin → read → unpin against the immutable [`ServeSnapshot`], never a
//! `Mutex`/`RwLock`.
//!
//! Endpoints (all `GET`, JSON unless noted):
//!
//! | path | answer |
//! |------|--------|
//! | `/candidates?id=N` | the retained partners of profile N |
//! | `/topk?id=N&k=K` | the K heaviest partners of N (default 10) |
//! | `/stats` | corpus + serving counters at the current seq |
//! | `/metrics` | Prometheus text exposition (commit + serve families) |
//!
//! Every snapshot-backed response carries the `seq` it was answered at —
//! one pin per request, so a response never mixes two versions.

use crate::epoch::Epoch;
use crate::metrics::{ServeMetrics, ServeTotals};
use crate::snapshot::ServeSnapshot;
use blast_obs::trace::JsonObject;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a reader thread needs to answer queries.
#[derive(Clone)]
pub struct ServeState {
    /// The epoch the writer publishes snapshots into.
    pub epoch: Arc<Epoch<ServeSnapshot>>,
    /// Shared serve-side metric handles (lock-free recording).
    pub metrics: ServeMetrics,
    /// Whether the writer's ingest has drained (surfaced in `/stats`).
    pub ingest_done: Arc<AtomicBool>,
}

/// A running server: the listener address plus the worker pool handles.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// `readers` worker threads. Fails when the bind fails or when more
    /// epoch reader slots are requested than exist.
    pub fn start(state: ServeState, addr: &str, readers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let listener = Arc::new(listener);
        let shutdown = Arc::new(AtomicBool::new(false));
        let readers = readers.max(1);
        let mut workers = Vec::with_capacity(readers);
        for _ in 0..readers {
            let reader = state
                .epoch
                .register()
                .ok_or_else(|| std::io::Error::other("epoch reader slots exhausted"))?;
            let listener = Arc::clone(&listener);
            let shutdown = Arc::clone(&shutdown);
            let state = state.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(&listener, &shutdown, &state, reader);
            }));
        }
        Ok(Server {
            addr: local,
            shutdown,
            workers,
        })
    }

    /// The bound address (the ephemeral port when started with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes every worker, and joins the pool.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // One wake-up connection per worker: each blocked `accept` returns
        // once, sees the flag, and exits.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("readers", &self.workers.len())
            .finish()
    }
}

/// One worker: accept → serve the connection (keep-alive) → repeat.
fn worker_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    state: &ServeState,
    mut reader: crate::epoch::Reader<ServeSnapshot>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = serve_connection(stream, shutdown, state, &mut reader);
    }
}

/// Serves one keep-alive connection until the peer closes, asks to close,
/// or the server shuts down.
fn serve_connection(
    stream: TcpStream,
    shutdown: &AtomicBool,
    state: &ServeState,
    reader: &mut crate::epoch::Reader<ServeSnapshot>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    stream.set_nodelay(true)?;
    let mut input = BufReader::new(stream.try_clone()?);
    let mut output = stream;
    loop {
        let request = match read_request(&mut input, shutdown) {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()),
            Err(e) if would_block(&e) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(_) => return Ok(()),
        };
        let response = route(&request, state, reader);
        write_response(&mut output, &response)?;
        if request.close {
            return Ok(());
        }
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// A parsed request line (the only parts this server needs).
struct Request {
    method: String,
    path: String,
    query: String,
    close: bool,
}

/// Reads one request head; `Ok(None)` on a cleanly closed connection.
fn read_request(
    input: &mut BufReader<TcpStream>,
    shutdown: &AtomicBool,
) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if would_block(&e) && !shutdown.load(Ordering::SeqCst) => continue,
            Err(e) => return Err(e),
        }
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    // Drain headers until the blank line; keep-alive is HTTP/1.1's default.
    let mut close = false;
    loop {
        let mut header = String::new();
        match input.read_line(&mut header) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                let h = header.trim();
                if h.is_empty() {
                    break;
                }
                if let Some((name, value)) = h.split_once(':') {
                    if name.eq_ignore_ascii_case("connection")
                        && value.trim().eq_ignore_ascii_case("close")
                    {
                        close = true;
                    }
                }
            }
            Err(e) if would_block(&e) && !shutdown.load(Ordering::SeqCst) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Some(Request {
        method,
        path,
        query,
        close,
    }))
}

/// An HTTP response about to be written.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            JsonObject::new().field_str("error", message).finish(),
        )
    }
}

fn write_response(output: &mut TcpStream, r: &Response) -> std::io::Result<()> {
    let reason = match r.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        output,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
        r.status,
        reason,
        r.content_type,
        r.body.len(),
        r.body
    )?;
    output.flush()
}

/// The first `name=` parameter of a query string, percent-decoding not
/// included (ids and counts are plain integers).
fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v)
}

/// Dispatches one request. The snapshot-backed endpoints pin exactly once.
fn route(
    request: &Request,
    state: &ServeState,
    reader: &mut crate::epoch::Reader<ServeSnapshot>,
) -> Response {
    if request.method != "GET" {
        return Response::error(405, "only GET is supported");
    }
    match request.path.as_str() {
        "/candidates" | "/topk" => {
            let t0 = Instant::now();
            let Some(id) = query_param(&request.query, "id").and_then(|v| v.parse::<u32>().ok())
            else {
                return Response::error(400, "missing or invalid id parameter");
            };
            let top_k = (request.path == "/topk").then(|| {
                query_param(&request.query, "k")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(10)
            });
            let guard = reader.pin();
            let response = match guard.candidates(id) {
                None => Response::error(404, "unknown profile id"),
                Some(row) => {
                    let listed: Vec<crate::snapshot::Candidate> = match top_k {
                        Some(k) => guard.top_k(id, k),
                        None => row.to_vec(),
                    };
                    let mut items = String::from("[");
                    for (i, c) in listed.iter().enumerate() {
                        if i > 0 {
                            items.push_str(", ");
                        }
                        items.push_str(
                            &JsonObject::new()
                                .field_u64("id", u64::from(c.id))
                                .field_f64("weight", c.weight)
                                .finish(),
                        );
                    }
                    items.push(']');
                    let mut obj = JsonObject::new()
                        .field_u64("seq", guard.seq())
                        .field_u64("id", u64::from(id))
                        .field_bool("live", guard.is_live(id));
                    if let Some(ext) = guard.external_id(id) {
                        obj = obj.field_str("external_id", ext);
                    }
                    let body = obj
                        .field_u64("count", listed.len() as u64)
                        .field_raw("candidates", &items)
                        .finish();
                    Response::json(200, body)
                }
            };
            drop(guard);
            state.metrics.record_query(t0.elapsed().as_secs_f64());
            response
        }
        "/stats" => {
            let guard = reader.pin();
            let (seq, nodes, live, pairs, blocks) = (
                guard.seq(),
                guard.nodes(),
                guard.live(),
                guard.pairs(),
                guard.blocks(),
            );
            drop(guard);
            let totals = ServeTotals::from_snapshot(&state.metrics.snapshot());
            let body = JsonObject::new()
                .field_u64("seq", seq)
                .field_u64("nodes", u64::from(nodes))
                .field_u64("live", u64::from(live))
                .field_u64("pairs", pairs)
                .field_u64("blocks", blocks)
                .field_u64("queries", totals.queries)
                .field_u64("snapshot_swaps", totals.snapshot_swaps)
                .field_i64("stale_epochs", totals.stale_epochs)
                .field_f64("read_p50_secs", totals.read_p50_secs)
                .field_f64("read_p99_secs", totals.read_p99_secs)
                .field_bool("ingest_done", state.ingest_done.load(Ordering::SeqCst))
                .finish();
            Response::json(200, body)
        }
        "/metrics" => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: state.metrics.snapshot().encode_text(),
        },
        _ => Response::error(404, "unknown path"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CommitUpdate, SnapshotBuilder};

    fn test_state() -> ServeState {
        let mut builder = SnapshotBuilder::new();
        let snap = builder.apply(&CommitUpdate {
            seq: 1,
            upserts: vec![
                (0, Arc::from("a")),
                (1, Arc::from("b")),
                (2, Arc::from("c")),
            ],
            added: vec![(0, 1, 2.0), (0, 2, 5.0)],
            blocks: 3,
            ..CommitUpdate::default()
        });
        ServeState {
            epoch: Arc::new(Epoch::new(snap)),
            metrics: ServeMetrics::new(),
            ingest_done: Arc::new(AtomicBool::new(true)),
        }
    }

    /// One blocking HTTP exchange against a running server.
    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .expect("request");
        let mut raw = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut raw).expect("response");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn endpoints_roundtrip() {
        let state = test_state();
        let server = Server::start(state, "127.0.0.1:0", 2).expect("bind");
        let addr = server.addr();

        let (status, body) = get(addr, "/candidates?id=0");
        assert_eq!(status, 200);
        assert!(blast_obs::trace::is_valid_json(&body), "{body}");
        assert!(body.contains("\"seq\": 1"), "{body}");
        assert!(body.contains("\"count\": 2"), "{body}");
        assert!(body.contains("\"external_id\": \"a\""), "{body}");

        let (status, body) = get(addr, "/topk?id=0&k=1");
        assert_eq!(status, 200);
        assert!(body.contains("\"count\": 1"), "{body}");
        assert!(body.contains("\"id\": 2"), "heaviest partner first: {body}");

        let (status, body) = get(addr, "/stats");
        assert_eq!(status, 200);
        assert!(blast_obs::trace::is_valid_json(&body), "{body}");
        assert!(body.contains("\"pairs\": 2"), "{body}");
        assert!(body.contains("\"ingest_done\": true"), "{body}");

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("blast_serve_queries"), "{body}");

        let (status, _) = get(addr, "/candidates?id=99");
        assert_eq!(status, 404);
        let (status, _) = get(addr, "/candidates");
        assert_eq!(status, 400);
        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let state = test_state();
        let server = Server::start(state, "127.0.0.1:0", 1).expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut input = BufReader::new(stream.try_clone().unwrap());
        for _ in 0..3 {
            write!(stream, "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            // Read the head, then exactly Content-Length body bytes.
            let mut length = 0usize;
            loop {
                let mut line = String::new();
                input.read_line(&mut line).expect("header");
                let line = line.trim();
                if line.is_empty() {
                    break;
                }
                if let Some((k, v)) = line.split_once(':') {
                    if k.eq_ignore_ascii_case("content-length") {
                        length = v.trim().parse().unwrap();
                    }
                }
            }
            let mut body = vec![0u8; length];
            use std::io::Read as _;
            input.read_exact(&mut body).expect("body");
            assert!(blast_obs::trace::is_valid_json(
                std::str::from_utf8(&body).unwrap()
            ));
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_the_pool() {
        let server = Server::start(test_state(), "127.0.0.1:0", 4).expect("bind");
        let addr = server.addr();
        server.shutdown();
        // The listener is gone: a fresh connection must fail (or be
        // refused once the socket drains).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err(), "listener closed");
    }
}
