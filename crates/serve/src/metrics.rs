//! Typed serve-side views over a [`Registry`] — the read-path counterpart
//! of [`blast_obs::CommitMetrics`].
//!
//! [`ServeMetrics`] is the write side: the server owns one and every
//! reader thread records through shared handles. All four instruments are
//! `blast-obs` sharded lock-free primitives, so recording a query from the
//! hot path is a couple of relaxed atomic adds — consistent with the
//! serving layer's no-locks-on-read contract. [`ServeTotals`] is the read
//! side, reconstructed from a [`MetricsSnapshot`] (or a
//! [`MetricsSnapshot::delta_since`] window) for `/stats`, the bench, and
//! the smoke script.

use blast_obs::registry::{MetricsSnapshot, Registry};
use blast_obs::{names, Counter, Gauge, Histogram};
use std::sync::Arc;

/// Pre-registered write handles for the serving layer.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    registry: Arc<Registry>,
    queries: Arc<Counter>,
    swaps: Arc<Counter>,
    read_latency: Arc<Histogram>,
    stale_epochs: Arc<Gauge>,
}

impl ServeMetrics {
    /// Registers the serve metrics on a fresh registry.
    pub fn new() -> Self {
        Self::on(Arc::new(Registry::new()))
    }

    /// Registers the serve metrics on `registry` (e.g. the one the
    /// pipeline's `CommitMetrics` already lives on, so `/metrics` exports
    /// both families from one page).
    pub fn on(registry: Arc<Registry>) -> Self {
        Self {
            queries: registry.counter(names::SERVE_QUERIES),
            swaps: registry.counter(names::SERVE_SNAPSHOT_SWAPS),
            read_latency: registry.histogram_with_unit(names::SERVE_READ_LATENCY, 1e-9),
            stale_epochs: registry.gauge(names::SERVE_STALE_EPOCHS),
            registry,
        }
    }

    /// The backing registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Convenience: a snapshot of the backing registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Records one answered query and its wall-clock latency. Hot path:
    /// lock-free, called from every reader thread.
    #[inline]
    pub fn record_query(&self, secs: f64) {
        self.queries.inc();
        self.read_latency.record_secs(secs);
    }

    /// Records one snapshot publication and the epoch's retired backlog
    /// after it (the stale-epoch gauge). Writer path.
    pub fn record_swap(&self, stale_epochs: usize) {
        self.swaps.inc();
        self.stale_epochs.set(stale_epochs as i64);
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything the serving layer recorded, read back out of a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeTotals {
    /// Queries answered in the window.
    pub queries: u64,
    /// Snapshot versions published.
    pub snapshot_swaps: u64,
    /// Retired versions awaiting reclamation (last published value).
    pub stale_epochs: i64,
    /// Read-latency quantiles in seconds (p50 / p99 / p999); zero when no
    /// query was recorded.
    pub read_p50_secs: f64,
    /// 99th percentile read latency.
    pub read_p99_secs: f64,
    /// 99.9th percentile read latency.
    pub read_p999_secs: f64,
    /// Mean read latency.
    pub read_mean_secs: f64,
}

impl ServeTotals {
    /// Reconstructs the totals from a snapshot.
    pub fn from_snapshot(s: &MetricsSnapshot) -> ServeTotals {
        let hist = s.histogram(names::SERVE_READ_LATENCY);
        let q = |p: f64| hist.and_then(|h| h.quantile(p)).unwrap_or(0.0);
        ServeTotals {
            queries: s.counter(names::SERVE_QUERIES),
            snapshot_swaps: s.counter(names::SERVE_SNAPSHOT_SWAPS),
            stale_epochs: s.gauge(names::SERVE_STALE_EPOCHS).unwrap_or(0),
            read_p50_secs: q(0.50),
            read_p99_secs: q(0.99),
            read_p999_secs: q(0.999),
            read_mean_secs: hist.and_then(|h| h.mean()).unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_read_back_roundtrips() {
        let m = ServeMetrics::new();
        for _ in 0..100 {
            m.record_query(1e-6);
        }
        m.record_swap(3);
        m.record_swap(1);
        let t = ServeTotals::from_snapshot(&m.snapshot());
        assert_eq!(t.queries, 100);
        assert_eq!(t.snapshot_swaps, 2);
        assert_eq!(t.stale_epochs, 1, "gauge keeps the last value");
        assert!(t.read_p50_secs > 0.0);
        assert!(t.read_p999_secs >= t.read_p50_secs);
        assert!(t.read_mean_secs > 0.0);
    }

    #[test]
    fn empty_registry_reads_back_zeroes() {
        let t = ServeTotals::from_snapshot(&ServeMetrics::new().snapshot());
        assert_eq!(t, ServeTotals::default());
    }

    #[test]
    fn shares_a_registry_with_commit_metrics() {
        let commit = blast_obs::CommitMetrics::new();
        let serve = ServeMetrics::on(Arc::clone(commit.registry()));
        serve.record_query(1e-6);
        let text = serve.snapshot().encode_text();
        assert!(text.contains("blast_serve_queries"), "{text}");
        assert!(text.contains("blast_commit_count"), "{text}");
    }
}
