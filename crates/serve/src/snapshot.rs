//! The immutable, versioned view the serving layer publishes per commit.
//!
//! A [`ServeSnapshot`] answers the read-side questions — candidates of a
//! profile, top-k neighbours by weight, liveness, corpus stats — without
//! touching the incremental engine's mutable structures. Readers hold it
//! through an epoch guard ([`crate::epoch`]); everything inside is plain
//! immutable data, so queries are allocation-light and lock-free.
//!
//! Publishing must not cost O(corpus) per commit, and a deep copy of the
//! adjacency would. The snapshot is therefore **chunked copy-on-write**:
//! node rows live in fixed-size chunks behind `Arc`s, and the
//! [`SnapshotBuilder`] clones only the chunks a commit's delta actually
//! touches (`Arc::make_mut`), re-sharing every untouched chunk with all
//! previously published versions. A commit touching `d` rows publishes in
//! O(d + corpus/[`CHUNK_NODES`]) — the second term is the pointer-vector
//! clone, 8 bytes per chunk.
//!
//! Consistency contract: the snapshot's candidate rows mirror
//! `IncrementalPipeline::retained()` **exactly as of the tagged commit
//! seq** — the builder replays the engine's own `PairDelta`, so a query at
//! seq N returns the batch-equivalent candidate set at commit N (the
//! CI-gated read-your-writes check). Edge *weights* are captured when a
//! pair enters the set; a later commit that reweighs a surviving pair
//! without flipping it refreshes the weight only for rows the delta
//! touches, so ordering inside `top_k` is best-effort between flips while
//! the candidate *set* is exact.

use std::sync::Arc;

/// Node rows per copy-on-write chunk. Power of two so the row → (chunk,
/// offset) split is a shift + mask.
pub const CHUNK_NODES: usize = 512;

/// One retained comparison partner of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The partner's global profile id.
    pub id: u32,
    /// The retained edge's pruned weight when it last entered/changed.
    pub weight: f64,
}

/// One node's serve-side row.
#[derive(Debug, Clone, Default)]
struct NodeRow {
    /// The profile's external id (`None` until first seen).
    external_id: Option<Arc<str>>,
    /// Whether the profile is live (not tombstoned).
    live: bool,
    /// Retained partners, ascending by id.
    candidates: Vec<Candidate>,
}

/// A fixed-capacity block of node rows (the copy-on-write unit).
#[derive(Debug, Clone, Default)]
struct Chunk {
    rows: Vec<NodeRow>,
}

/// An immutable published view at one commit seq. Cheap to clone at the
/// chunk granularity; never mutated after publication.
#[derive(Debug, Clone, Default)]
pub struct ServeSnapshot {
    /// The commit sequence this view corresponds to (0 = empty pre-ingest
    /// snapshot; the N-th commit publishes seq N).
    seq: u64,
    chunks: Vec<Arc<Chunk>>,
    /// Total global id slots covered.
    nodes: u32,
    /// Live (non-tombstoned) profiles.
    live: u32,
    /// Retained comparisons (each pair counted once).
    pairs: u64,
    /// Cleaned blocks at this commit (stats surface only).
    blocks: u64,
}

impl ServeSnapshot {
    /// The commit seq this snapshot was published at.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Total global id slots (live + tombstoned).
    #[inline]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Live profiles.
    #[inline]
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Retained comparisons (each pair once).
    #[inline]
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// Cleaned blocks at this commit.
    #[inline]
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    #[inline]
    fn row(&self, id: u32) -> Option<&NodeRow> {
        if id >= self.nodes {
            return None;
        }
        let i = id as usize;
        self.chunks[i / CHUNK_NODES].rows.get(i % CHUNK_NODES)
    }

    /// Whether the profile id exists and is live.
    pub fn is_live(&self, id: u32) -> bool {
        self.row(id).is_some_and(|r| r.live)
    }

    /// The profile's external id, if the id is known.
    pub fn external_id(&self, id: u32) -> Option<&str> {
        self.row(id)?.external_id.as_deref()
    }

    /// The retained partners of `id`, ascending by partner id. `None` when
    /// the id is out of range; an empty slice when it simply has no
    /// candidates.
    pub fn candidates(&self, id: u32) -> Option<&[Candidate]> {
        self.row(id).map(|r| r.candidates.as_slice())
    }

    /// The `k` heaviest partners of `id`, descending by weight (ties:
    /// ascending id, so the order is total and deterministic).
    pub fn top_k(&self, id: u32, k: usize) -> Vec<Candidate> {
        let Some(row) = self.row(id) else {
            return Vec::new();
        };
        let mut out = row.candidates.clone();
        out.sort_by(|a, b| b.weight.total_cmp(&a.weight).then_with(|| a.id.cmp(&b.id)));
        out.truncate(k);
        out
    }

    /// Whether the pair `(a, b)` is retained at this seq.
    pub fn contains(&self, a: u32, b: u32) -> bool {
        self.row(a)
            .is_some_and(|r| r.candidates.binary_search_by_key(&b, |c| c.id).is_ok())
    }

    /// Every retained pair, smaller id first, ascending — the equivalence
    /// oracle's view (O(pairs); read path only, never the publish path).
    pub fn all_pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.pairs as usize);
        for (ci, chunk) in self.chunks.iter().enumerate() {
            for (ri, row) in chunk.rows.iter().enumerate() {
                let u = (ci * CHUNK_NODES + ri) as u32;
                for c in &row.candidates {
                    if c.id > u {
                        out.push((u, c.id));
                    }
                }
            }
        }
        out
    }
}

/// One commit's worth of snapshot changes, in engine terms. The writer
/// translates `CommitOutcome` + store bookkeeping into this.
#[derive(Debug, Clone, Default)]
pub struct CommitUpdate {
    /// The seq to tag the published snapshot with.
    pub seq: u64,
    /// Profiles inserted or updated this commit: `(id, external_id)`.
    /// Marks the row live and (re)sets its external id.
    pub upserts: Vec<(u32, Arc<str>)>,
    /// Profiles tombstoned this commit.
    pub deletes: Vec<u32>,
    /// Pairs entering the candidate set, with their pruned weights.
    pub added: Vec<(u32, u32, f64)>,
    /// Pairs leaving the candidate set.
    pub retracted: Vec<(u32, u32)>,
    /// Cleaned-block count after the commit.
    pub blocks: u64,
}

/// The writer-side accumulator: owns the working chunk vector and stamps
/// out one immutable [`ServeSnapshot`] per commit, copying only dirty
/// chunks.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    chunks: Vec<Arc<Chunk>>,
    nodes: u32,
    live: u32,
    pairs: u64,
}

impl SnapshotBuilder {
    /// An empty builder (publishes seq-0 views until the first commit).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the chunk table to cover `id`.
    fn ensure_node(&mut self, id: u32) {
        if id < self.nodes {
            return;
        }
        self.nodes = id + 1;
        let needed = (self.nodes as usize).div_ceil(CHUNK_NODES);
        while self.chunks.len() < needed {
            self.chunks.push(Arc::new(Chunk::default()));
        }
        // Only the last chunk can be short; fill it to cover `id`.
        let last = self.chunks.len() - 1;
        let rows_in_last = self.nodes as usize - last * CHUNK_NODES;
        let chunk = Arc::make_mut(&mut self.chunks[last]);
        if chunk.rows.len() < rows_in_last {
            chunk.rows.resize_with(rows_in_last, NodeRow::default);
        }
    }

    /// Mutable access to one node row (copy-on-write at chunk granularity).
    fn row_mut(&mut self, id: u32) -> &mut NodeRow {
        self.ensure_node(id);
        let i = id as usize;
        let chunk = Arc::make_mut(&mut self.chunks[i / CHUNK_NODES]);
        &mut chunk.rows[i % CHUNK_NODES]
    }

    /// Applies one commit's changes and stamps the immutable view to
    /// publish. O(touched rows + chunk count): untouched chunks are shared
    /// with every previously stamped snapshot.
    pub fn apply(&mut self, update: &CommitUpdate) -> ServeSnapshot {
        for (id, ext) in &update.upserts {
            let row = self.row_mut(*id);
            let was_live = row.live;
            row.live = true;
            row.external_id = Some(Arc::clone(ext));
            if !was_live {
                self.live += 1;
            }
        }
        for id in &update.deletes {
            let row = self.row_mut(*id);
            if row.live {
                row.live = false;
                self.live -= 1;
            }
        }
        for &(a, b) in &update.retracted {
            if self.remove_candidate(a, b) & self.remove_candidate(b, a) {
                self.pairs -= 1;
            }
        }
        for &(a, b, w) in &update.added {
            if self.add_candidate(a, b, w) & self.add_candidate(b, a, w) {
                self.pairs += 1;
            }
        }
        ServeSnapshot {
            seq: update.seq,
            chunks: self.chunks.clone(),
            nodes: self.nodes,
            live: self.live,
            pairs: self.pairs,
            blocks: update.blocks,
        }
    }

    /// Inserts `b` into `a`'s row (sorted by id); true when new.
    fn add_candidate(&mut self, a: u32, b: u32, weight: f64) -> bool {
        let row = self.row_mut(a);
        match row.candidates.binary_search_by_key(&b, |c| c.id) {
            Ok(i) => {
                row.candidates[i].weight = weight;
                false
            }
            Err(i) => {
                row.candidates.insert(i, Candidate { id: b, weight });
                true
            }
        }
    }

    /// Removes `b` from `a`'s row; true when it was present.
    fn remove_candidate(&mut self, a: u32, b: u32) -> bool {
        if a >= self.nodes {
            return false;
        }
        let row = self.row_mut(a);
        match row.candidates.binary_search_by_key(&b, |c| c.id) {
            Ok(i) => {
                row.candidates.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Retained pairs currently accumulated (diagnostics).
    pub fn pairs(&self) -> u64 {
        self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn empty_snapshot_answers_cleanly() {
        let snap = ServeSnapshot::default();
        assert_eq!(snap.seq(), 0);
        assert_eq!(snap.candidates(0), None);
        assert!(snap.top_k(5, 3).is_empty());
        assert!(!snap.is_live(0));
        assert!(!snap.contains(0, 1));
        assert!(snap.all_pairs().is_empty());
    }

    #[test]
    fn apply_builds_mirrored_rows() {
        let mut b = SnapshotBuilder::new();
        let snap = b.apply(&CommitUpdate {
            seq: 1,
            upserts: vec![(0, ext("a")), (1, ext("b")), (2, ext("c"))],
            added: vec![(0, 1, 2.0), (0, 2, 5.0)],
            blocks: 3,
            ..CommitUpdate::default()
        });
        assert_eq!(snap.seq(), 1);
        assert_eq!(snap.nodes(), 3);
        assert_eq!(snap.live(), 3);
        assert_eq!(snap.pairs(), 2);
        assert_eq!(snap.blocks(), 3);
        assert_eq!(snap.external_id(1), Some("b"));
        let row: Vec<u32> = snap.candidates(0).unwrap().iter().map(|c| c.id).collect();
        assert_eq!(row, vec![1, 2]);
        assert!(snap.contains(1, 0) && snap.contains(2, 0));
        assert_eq!(snap.all_pairs(), vec![(0, 1), (0, 2)]);
        let top = snap.top_k(0, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].id, 2, "heaviest first");
    }

    #[test]
    fn published_snapshots_are_immutable_under_later_commits() {
        let mut b = SnapshotBuilder::new();
        let v1 = b.apply(&CommitUpdate {
            seq: 1,
            upserts: vec![(0, ext("a")), (1, ext("b"))],
            added: vec![(0, 1, 1.0)],
            ..CommitUpdate::default()
        });
        let v2 = b.apply(&CommitUpdate {
            seq: 2,
            deletes: vec![1],
            retracted: vec![(0, 1)],
            ..CommitUpdate::default()
        });
        // v1 still sees the pair and the live profile; v2 does not.
        assert!(v1.contains(0, 1));
        assert!(v1.is_live(1));
        assert!(!v2.contains(0, 1));
        assert!(!v2.is_live(1));
        assert_eq!(v2.pairs(), 0);
        assert_eq!(v2.nodes(), 2, "tombstones keep their slot");
    }

    #[test]
    fn untouched_chunks_are_shared_not_copied() {
        let mut b = SnapshotBuilder::new();
        // Two chunks' worth of nodes, pairs only in chunk 0.
        let upserts: Vec<_> = (0..(CHUNK_NODES as u32 + 10))
            .map(|i| (i, ext(&format!("p{i}"))))
            .collect();
        let v1 = b.apply(&CommitUpdate {
            seq: 1,
            upserts,
            added: vec![(0, 1, 1.0)],
            ..CommitUpdate::default()
        });
        // A second commit touching only chunk 1 must share chunk 0.
        let v2 = b.apply(&CommitUpdate {
            seq: 2,
            added: vec![(CHUNK_NODES as u32, CHUNK_NODES as u32 + 1, 2.0)],
            ..CommitUpdate::default()
        });
        assert!(
            Arc::ptr_eq(&v1.chunks[0], &v2.chunks[0]),
            "clean chunk is shared"
        );
        assert!(
            !Arc::ptr_eq(&v1.chunks[1], &v2.chunks[1]),
            "dirty chunk is copied"
        );
    }

    #[test]
    fn add_is_idempotent_and_refreshes_weight() {
        let mut b = SnapshotBuilder::new();
        b.apply(&CommitUpdate {
            seq: 1,
            upserts: vec![(0, ext("a")), (1, ext("b"))],
            added: vec![(0, 1, 1.0)],
            ..CommitUpdate::default()
        });
        let v2 = b.apply(&CommitUpdate {
            seq: 2,
            added: vec![(0, 1, 9.0)],
            ..CommitUpdate::default()
        });
        assert_eq!(v2.pairs(), 1, "re-add does not double count");
        assert_eq!(v2.candidates(0).unwrap()[0].weight, 9.0);
        let v3 = b.apply(&CommitUpdate {
            seq: 3,
            retracted: vec![(0, 1), (0, 1)],
            ..CommitUpdate::default()
        });
        assert_eq!(v3.pairs(), 0, "double retract does not underflow");
    }

    #[test]
    fn top_k_order_is_total() {
        let mut b = SnapshotBuilder::new();
        let snap = b.apply(&CommitUpdate {
            seq: 1,
            upserts: (0..5).map(|i| (i, ext(&format!("p{i}")))).collect(),
            added: vec![(0, 1, 3.0), (0, 2, 3.0), (0, 3, 7.0), (0, 4, 1.0)],
            ..CommitUpdate::default()
        });
        let ids: Vec<u32> = snap.top_k(0, 10).iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![3, 1, 2, 4], "weight desc, id asc on ties");
    }
}
