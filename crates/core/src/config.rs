//! End-to-end pipeline configuration.

use crate::schema::extraction::LooseSchemaConfig;

/// Configuration of the full BLAST pipeline (Fig. 4).
#[derive(Debug, Clone)]
pub struct BlastConfig {
    /// Phase 1: loose schema extraction (LMI/AC, α, LSH, glue, tokenizer —
    /// the tokenizer is shared with phase 2's Token Blocking).
    pub schema: LooseSchemaConfig,
    /// Apply Block Purging after blocking (the §4.1 workflow). The fraction
    /// is the maximum share of the collection's profiles a block may hold.
    pub purging: bool,
    /// Maximum profile fraction per block for purging (default 0.5).
    pub purge_fraction: f64,
    /// Apply Block Filtering after purging (the §4.1 workflow).
    pub filtering: bool,
    /// Block Filtering ratio: keep each profile in this fraction of its
    /// smallest blocks (default 0.8, "filter out the 20 % least significant
    /// blocks per profile").
    pub filter_ratio: f64,
    /// BLAST pruning constant c (θᵢ = Mᵢ/c; default 2).
    pub c: f64,
    /// BLAST pruning constant d (θᵢⱼ = (θᵢ+θⱼ)/d; default 2).
    pub d: f64,
    /// Multiply χ² by the aggregate entropy h(B_uv) (default true; false is
    /// the Fig. 8 "chi" ablation).
    pub use_entropy: bool,
}

impl Default for BlastConfig {
    fn default() -> Self {
        Self {
            schema: LooseSchemaConfig::default(),
            purging: true,
            purge_fraction: 0.5,
            filtering: true,
            filter_ratio: 0.8,
            c: 2.0,
            d: 2.0,
            use_entropy: true,
        }
    }
}

impl BlastConfig {
    /// The paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Disables purging and filtering (raw token-blocking graph).
    pub fn without_block_cleaning(mut self) -> Self {
        self.purging = false;
        self.filtering = false;
        self
    }

    /// Sets the pruning constants.
    pub fn with_pruning_constants(mut self, c: f64, d: f64) -> Self {
        assert!(c > 0.0 && d > 0.0, "c and d must be positive");
        self.c = c;
        self.d = d;
        self
    }

    /// Replaces the schema-extraction configuration.
    pub fn with_schema(mut self, schema: LooseSchemaConfig) -> Self {
        self.schema = schema;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BlastConfig::default();
        assert_eq!(c.c, 2.0);
        assert_eq!(c.d, 2.0);
        assert!(c.use_entropy);
        assert!(c.purging);
        assert!(c.filtering);
        assert_eq!(c.filter_ratio, 0.8);
        assert_eq!(c.purge_fraction, 0.5);
        assert_eq!(c.schema.alpha, 0.9);
    }

    #[test]
    fn builders_compose() {
        let c = BlastConfig::new()
            .without_block_cleaning()
            .with_pruning_constants(3.0, 1.5);
        assert!(!c.purging && !c.filtering);
        assert_eq!(c.c, 3.0);
        assert_eq!(c.d, 1.5);
    }
}
