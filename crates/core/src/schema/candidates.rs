//! Candidate attribute-pair generation: all pairs, or the LSH-based
//! pre-processing step of §3.1.2.
//!
//! Attribute-match induction needs the similarity of attribute-profile
//! pairs. Comparing all of them is O(N₁·N₂); with thousands of attributes
//! (the paper's dbp has 30k × 50k) this is infeasible, so MinHash + banding
//! restricts the comparisons to pairs likely above a Jaccard threshold.

use crate::schema::attribute_profile::AttributeProfiles;
use blast_lsh::banding::BandingIndex;
use blast_lsh::minhash::MinHasher;
use blast_lsh::scurve::params_for_threshold;

/// Where attribute-match induction gets its candidate pairs from.
#[derive(Debug, Clone)]
pub enum CandidateSource {
    /// Compare every cross-source pair (every pair for dirty inputs):
    /// exact but quadratic.
    AllPairs,
    /// MinHash + banding: only colliding pairs are compared.
    Lsh {
        /// Rows per band.
        rows: usize,
        /// Number of bands (signature length = rows·bands).
        bands: usize,
        /// Seed for the MinHash family.
        seed: u64,
    },
}

impl CandidateSource {
    /// The paper's example configuration: r = 5, b = 30 (threshold ≈ 0.5).
    pub fn lsh_default() -> Self {
        CandidateSource::Lsh {
            rows: 5,
            bands: 30,
            seed: 0x000b_1a57,
        }
    }

    /// Picks (rows, bands) within a signature budget of `n_hashes` so the
    /// estimated LSH threshold lands closest to `threshold` (the Fig. 10 /
    /// Table 6 sweeps).
    pub fn lsh_with_threshold(n_hashes: usize, threshold: f64, seed: u64) -> Self {
        let (rows, bands) = params_for_threshold(n_hashes, threshold);
        CandidateSource::Lsh { rows, bands, seed }
    }

    /// The estimated Jaccard threshold of this source (`None` for
    /// [`CandidateSource::AllPairs`], which imposes none).
    pub fn threshold(&self) -> Option<f64> {
        match self {
            CandidateSource::AllPairs => None,
            CandidateSource::Lsh { rows, bands, .. } => {
                Some(blast_lsh::scurve::estimate_threshold(*rows, *bands))
            }
        }
    }

    /// Generates the candidate column pairs for `profiles`, cross-source
    /// when the profiles are bipartite, all distinct pairs otherwise.
    /// Pairs are `(smaller, larger)` in deterministic order.
    pub fn pairs(&self, profiles: &AttributeProfiles) -> Vec<(u32, u32)> {
        let n = profiles.len();
        let sep = profiles.separator();
        match self {
            CandidateSource::AllPairs => {
                if profiles.is_bipartite() {
                    let mut out = Vec::with_capacity(sep * (n - sep));
                    for i in 0..sep as u32 {
                        for j in sep as u32..n as u32 {
                            out.push((i, j));
                        }
                    }
                    out
                } else {
                    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
                    for i in 0..n as u32 {
                        for j in i + 1..n as u32 {
                            out.push((i, j));
                        }
                    }
                    out
                }
            }
            CandidateSource::Lsh { rows, bands, seed } => {
                let hasher = MinHasher::new(rows * bands, *seed);
                let mut index = BandingIndex::new(*bands, *rows);
                for (i, col) in profiles.columns().iter().enumerate() {
                    if col.tokens.is_empty() {
                        continue; // empty columns would all collide spuriously
                    }
                    let sig = hasher.signature(col.tokens.iter().copied());
                    index.insert(i as u32, &sig);
                }
                if profiles.is_bipartite() {
                    index.candidate_pairs_bipartite(sep as u32)
                } else {
                    index.candidate_pairs()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;
    use blast_datamodel::input::ErInput;
    use blast_datamodel::tokenizer::Tokenizer;

    fn bipartite_profiles() -> AttributeProfiles {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs(
            "a",
            [("name", "alpha beta gamma delta"), ("year", "1999 2000")],
        );
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs(
            "b",
            [("label", "alpha beta gamma delta"), ("price", "42 43")],
        );
        AttributeProfiles::build(&ErInput::clean_clean(d1, d2), &Tokenizer::new())
    }

    #[test]
    fn all_pairs_bipartite_is_cross_product() {
        let profiles = bipartite_profiles();
        let pairs = CandidateSource::AllPairs.pairs(&profiles);
        // 2 × 2 attributes.
        assert_eq!(pairs.len(), 4);
        for (i, j) in pairs {
            assert!((i as usize) < profiles.separator());
            assert!((j as usize) >= profiles.separator());
        }
    }

    #[test]
    fn all_pairs_dirty_is_triangular() {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs("p", [("a", "x"), ("b", "y"), ("c", "z")]);
        let profiles = AttributeProfiles::build(&ErInput::dirty(d), &Tokenizer::new());
        let pairs = CandidateSource::AllPairs.pairs(&profiles);
        assert_eq!(pairs.len(), 3); // C(3,2)
    }

    #[test]
    fn lsh_finds_identical_attributes() {
        let profiles = bipartite_profiles();
        let pairs = CandidateSource::lsh_default().pairs(&profiles);
        // name↔label share all 4 tokens (J = 1) → must collide;
        // year↔price are disjoint → extremely unlikely to collide.
        let name = profiles.column_of(SourceId(0), blast_datamodel::interner::Symbol(0));
        assert!(name.is_some());
        assert!(
            pairs.iter().any(|&(i, j)| {
                profiles.columns()[i as usize].tokens == profiles.columns()[j as usize].tokens
            }),
            "the identical pair must be a candidate: {pairs:?}"
        );
        assert!(
            pairs.len() <= 2,
            "dissimilar pairs should be filtered: {pairs:?}"
        );
    }

    #[test]
    fn lsh_subset_of_all_pairs() {
        let profiles = bipartite_profiles();
        let all = CandidateSource::AllPairs.pairs(&profiles);
        for p in CandidateSource::lsh_default().pairs(&profiles) {
            assert!(all.contains(&p));
        }
    }

    #[test]
    fn threshold_reporting() {
        assert!(CandidateSource::AllPairs.threshold().is_none());
        let t = CandidateSource::lsh_default().threshold().unwrap();
        assert!((t - 0.506).abs() < 0.01);
        let src = CandidateSource::lsh_with_threshold(150, 0.32, 1);
        let t = src.threshold().unwrap();
        assert!((t - 0.32).abs() < 0.1, "requested .32, got {t}");
    }
}
