//! Attribute profiles: the representation model of §2.1.
//!
//! Each attribute `aⱼ` is the tuple ⟨aⱼ, τ(V_aⱼ)⟩ — the set of tokens its
//! values produce under the value-transformation function τ. With the
//! binary-presence weighting of LMI, an attribute *is* its token set; token
//! ids come from one interner shared across both sources so sets are
//! directly comparable. The token *multiset* counts are also kept, because
//! the entropy extraction (§3.1.3) needs the value distribution.

use blast_datamodel::entity::{AttributeId, SourceId};
use blast_datamodel::hash::FastMap;
use blast_datamodel::input::ErInput;
use blast_datamodel::interner::Interner;
use blast_datamodel::tokenizer::Tokenizer;

use crate::schema::entropy::shannon_entropy;

/// One attribute's profile: its token set (sorted, distinct) and Shannon
/// entropy.
#[derive(Debug, Clone)]
pub struct AttributeColumn {
    /// The source collection the attribute belongs to.
    pub source: SourceId,
    /// The attribute id within its collection.
    pub attribute: AttributeId,
    /// Sorted distinct token ids of τ(V_a).
    pub tokens: Vec<u32>,
    /// Shannon entropy (log₂) of the attribute's token distribution.
    pub entropy: f64,
}

/// The attribute profiles of an ER input: all columns of source 0 first,
/// then all columns of source 1 (for dirty inputs there is a single source).
#[derive(Debug, Clone)]
pub struct AttributeProfiles {
    columns: Vec<AttributeColumn>,
    /// Index of the first column of source 1 (== `columns.len()` for dirty).
    separator: usize,
    distinct_tokens: usize,
}

impl AttributeProfiles {
    /// Builds the profiles by tokenizing every value of every profile.
    pub fn build(input: &ErInput, tokenizer: &Tokenizer) -> Self {
        let mut tokens = Interner::new();
        // (source, attribute) → token → multiplicity.
        let mut per_attr: FastMap<(SourceId, AttributeId), FastMap<u32, u64>> = FastMap::default();
        for (_, source, profile) in input.iter_profiles() {
            for (attr, value) in &profile.values {
                let counts = per_attr.entry((source, *attr)).or_default();
                tokenizer.for_each_token(value, |tok| {
                    *counts.entry(tokens.intern(tok).0).or_insert(0) += 1;
                });
            }
        }

        // Deterministic column order: source, then attribute id.
        let mut keys: Vec<(SourceId, AttributeId)> = per_attr.keys().copied().collect();
        keys.sort_unstable();
        let separator = keys.partition_point(|(s, _)| s.0 == 0);

        let columns = keys
            .into_iter()
            .map(|key| {
                let counts = per_attr.remove(&key).expect("key from map");
                let entropy = shannon_entropy(counts.values().copied());
                let mut toks: Vec<u32> = counts.into_keys().collect();
                toks.sort_unstable();
                AttributeColumn {
                    source: key.0,
                    attribute: key.1,
                    tokens: toks,
                    entropy,
                }
            })
            .collect();

        Self {
            columns,
            separator,
            distinct_tokens: tokens.len(),
        }
    }

    /// All columns, source 0 first.
    #[inline]
    pub fn columns(&self) -> &[AttributeColumn] {
        &self.columns
    }

    /// Number of columns (|A_E1| + |A_E2|).
    #[inline]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether there are no columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the first source-1 column.
    #[inline]
    pub fn separator(&self) -> usize {
        self.separator
    }

    /// Whether the profiles span two sources.
    #[inline]
    pub fn is_bipartite(&self) -> bool {
        self.separator < self.columns.len() && self.separator > 0
    }

    /// Number of distinct tokens across all attributes (|T_A|).
    #[inline]
    pub fn distinct_tokens(&self) -> usize {
        self.distinct_tokens
    }

    /// Finds the column index of `(source, attribute)`.
    pub fn column_of(&self, source: SourceId, attribute: AttributeId) -> Option<usize> {
        self.columns
            .binary_search_by_key(&(source, attribute), |c| (c.source, c.attribute))
            .ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;

    fn sample() -> ErInput {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("a1", [("name", "John Smith"), ("year", "1985")]);
        d1.push_pairs("a2", [("name", "Ellen Smith"), ("year", "1985")]);
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("b1", [("full name", "John Smith")]);
        ErInput::clean_clean(d1, d2)
    }

    #[test]
    fn columns_split_by_source() {
        let profiles = AttributeProfiles::build(&sample(), &Tokenizer::new());
        assert_eq!(profiles.len(), 3); // name, year | full name
        assert_eq!(profiles.separator(), 2);
        assert!(profiles.is_bipartite());
        assert_eq!(profiles.columns()[2].source, SourceId(1));
    }

    #[test]
    fn token_sets_are_sorted_distinct() {
        let profiles = AttributeProfiles::build(&sample(), &Tokenizer::new());
        for col in profiles.columns() {
            assert!(col.tokens.windows(2).all(|w| w[0] < w[1]));
        }
        // name column has tokens {john, smith, ellen} (distinct although
        // smith occurs twice).
        let name_col = &profiles.columns()[0];
        assert_eq!(name_col.tokens.len(), 3);
    }

    #[test]
    fn entropy_reflects_distribution() {
        let profiles = AttributeProfiles::build(&sample(), &Tokenizer::new());
        // name: counts {john:1, smith:2, ellen:1} → H = 1.5 bits
        // year: counts {1985:2} → H = 0.
        let name_col = &profiles.columns()[0];
        let year_col = &profiles.columns()[1];
        assert!((name_col.entropy - 1.5).abs() < 1e-12);
        assert_eq!(year_col.entropy, 0.0);
        assert!(
            name_col.entropy > year_col.entropy,
            "names more informative than years"
        );
    }

    #[test]
    fn column_lookup() {
        let input = sample();
        let profiles = AttributeProfiles::build(&input, &Tokenizer::new());
        let blast_datamodel::input::ErInput::CleanClean { d1, d2 } = &input else {
            unreachable!()
        };
        let name = d1.attribute_id("name").unwrap();
        assert_eq!(profiles.column_of(SourceId(0), name), Some(0));
        let full = d2.attribute_id("full name").unwrap();
        assert_eq!(profiles.column_of(SourceId(1), full), Some(2));
    }

    #[test]
    fn dirty_input_single_source() {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs("p", [("x", "a b"), ("y", "c")]);
        let profiles = AttributeProfiles::build(&ErInput::dirty(d), &Tokenizer::new());
        assert_eq!(profiles.separator(), profiles.len());
        assert!(!profiles.is_bipartite());
        assert_eq!(profiles.distinct_tokens(), 3);
    }
}
