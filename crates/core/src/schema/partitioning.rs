//! The attributes partitioning: the first half of the loose schema
//! information (§3.1), plus the aggregate entropy of each cluster.
//!
//! The partitioning implements [`KeyDisambiguator`], so Token Blocking can
//! split keys per cluster (phase 2), and maps every block to its cluster's
//! aggregate entropy for the χ²·h weighting (phase 3).

use crate::schema::attribute_profile::AttributeProfiles;
use crate::schema::entropy::aggregate_entropy;
use blast_blocking::collection::BlockCollection;
use blast_blocking::key::{ClusterId, KeyDisambiguator};
use blast_datamodel::entity::{AttributeId, SourceId};
use blast_datamodel::hash::FastMap;

/// A non-overlapping partitioning of the attribute name space with
/// per-cluster aggregate entropies. Cluster 0 is the glue cluster.
#[derive(Debug, Clone)]
pub struct AttributePartitioning {
    map: FastMap<(SourceId, AttributeId), ClusterId>,
    /// Aggregate entropy per cluster id (index 0 = glue).
    entropies: Vec<f64>,
    /// Members per cluster id.
    sizes: Vec<u32>,
    glue_enabled: bool,
}

impl AttributePartitioning {
    /// Builds the partitioning from induction clusters (column-index
    /// groups). Attributes in no cluster go to the glue cluster when
    /// `glue` is true, and are excluded from blocking otherwise (§4.4).
    pub fn from_clusters(profiles: &AttributeProfiles, clusters: &[Vec<u32>], glue: bool) -> Self {
        let n_clusters = clusters.len() + 1; // + glue
        let mut map = FastMap::default();
        let mut member_entropies: Vec<Vec<f64>> = vec![Vec::new(); n_clusters];
        let mut clustered = vec![false; profiles.len()];

        for (k, members) in clusters.iter().enumerate() {
            let cid = ClusterId(k as u32 + 1);
            for &col in members {
                let column = &profiles.columns()[col as usize];
                map.insert((column.source, column.attribute), cid);
                member_entropies[cid.index()].push(column.entropy);
                clustered[col as usize] = true;
            }
        }
        for (col, column) in profiles.columns().iter().enumerate() {
            if !clustered[col] {
                if glue {
                    map.insert((column.source, column.attribute), ClusterId::GLUE);
                }
                member_entropies[0].push(column.entropy);
            }
        }

        let sizes = member_entropies.iter().map(|m| m.len() as u32).collect();
        let entropies = member_entropies
            .iter()
            .map(|m| aggregate_entropy(m))
            .collect();
        Self {
            map,
            entropies,
            sizes,
            glue_enabled: glue,
        }
    }

    /// The trivial partitioning: every attribute in the glue cluster
    /// (schema-agnostic blocking with entropy still usable).
    pub fn trivial(profiles: &AttributeProfiles) -> Self {
        Self::from_clusters(profiles, &[], true)
    }

    /// Number of clusters including the glue cluster.
    pub fn cluster_count(&self) -> usize {
        self.entropies.len()
    }

    /// Number of non-glue clusters (the paper's "k clusters with LMI").
    pub fn induced_clusters(&self) -> usize {
        self.entropies.len() - 1
    }

    /// The aggregate entropy H̄(Cₖ).
    pub fn entropy_of(&self, cluster: ClusterId) -> f64 {
        self.entropies[cluster.index()]
    }

    /// All aggregate entropies, indexed by cluster id.
    pub fn entropies(&self) -> &[f64] {
        &self.entropies
    }

    /// Cluster sizes, indexed by cluster id.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Whether unclustered attributes are kept (glue) or dropped.
    pub fn glue_enabled(&self) -> bool {
        self.glue_enabled
    }

    /// Per-block entropy factors for a block collection built with this
    /// partitioning: each block's cluster's aggregate entropy (the h(bᵢ) of
    /// §3.1.3).
    pub fn block_entropies(&self, blocks: &BlockCollection) -> Vec<f64> {
        blocks
            .blocks()
            .iter()
            .map(|b| self.entropy_of(b.cluster))
            .collect()
    }
}

impl KeyDisambiguator for AttributePartitioning {
    fn cluster_of(&self, source: SourceId, attribute: AttributeId) -> Option<ClusterId> {
        match self.map.get(&(source, attribute)) {
            Some(&c) => Some(c),
            None if self.glue_enabled => Some(ClusterId::GLUE),
            None => None,
        }
    }

    fn cluster_count(&self) -> usize {
        self.entropies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::input::ErInput;
    use blast_datamodel::tokenizer::Tokenizer;

    fn profiles() -> (AttributeProfiles, ErInput) {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs(
            "a",
            [("name", "john ellen mary susan"), ("year", "1985 1985")],
        );
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs(
            "b",
            [("full name", "john ellen mary bob"), ("date", "1985")],
        );
        let input = ErInput::clean_clean(d1, d2);
        let p = AttributeProfiles::build(&input, &Tokenizer::new());
        (p, input)
    }

    #[test]
    fn clusters_get_sequential_ids_and_entropies() {
        let (profiles, _) = profiles();
        // Cluster = {col0 = (0,name), col2 = (1,full name)}.
        let part = AttributePartitioning::from_clusters(&profiles, &[vec![0, 2]], true);
        assert_eq!(part.cluster_count(), 2);
        assert_eq!(part.induced_clusters(), 1);
        // name entropy = 2 bits (4 uniform), full name = 2 bits; year (2×
        // same token) = 0, date = 0 → glue aggregate 0.
        assert!((part.entropy_of(ClusterId(1)) - 2.0).abs() < 1e-9);
        assert_eq!(part.entropy_of(ClusterId::GLUE), 0.0);
        assert_eq!(part.sizes(), &[2, 2]);
    }

    #[test]
    fn disambiguates_clustered_and_glue_attributes() {
        let (profiles, input) = profiles();
        let part = AttributePartitioning::from_clusters(&profiles, &[vec![0, 2]], true);
        let ErInput::CleanClean { d1, d2 } = &input else {
            unreachable!()
        };
        let name = d1.attribute_id("name").unwrap();
        let year = d1.attribute_id("year").unwrap();
        let full = d2.attribute_id("full name").unwrap();
        assert_eq!(part.cluster_of(SourceId(0), name), Some(ClusterId(1)));
        assert_eq!(part.cluster_of(SourceId(1), full), Some(ClusterId(1)));
        assert_eq!(part.cluster_of(SourceId(0), year), Some(ClusterId::GLUE));
    }

    #[test]
    fn glue_disabled_excludes_unclustered() {
        let (profiles, input) = profiles();
        let part = AttributePartitioning::from_clusters(&profiles, &[vec![0, 2]], false);
        let ErInput::CleanClean { d1, .. } = &input else {
            unreachable!()
        };
        let year = d1.attribute_id("year").unwrap();
        assert_eq!(part.cluster_of(SourceId(0), year), None);
        assert!(!part.glue_enabled());
    }

    #[test]
    fn trivial_partitioning_is_single_glue() {
        let (profiles, input) = profiles();
        let part = AttributePartitioning::trivial(&profiles);
        assert_eq!(part.cluster_count(), 1);
        let ErInput::CleanClean { d1, .. } = &input else {
            unreachable!()
        };
        let name = d1.attribute_id("name").unwrap();
        assert_eq!(part.cluster_of(SourceId(0), name), Some(ClusterId::GLUE));
        // Glue entropy = mean of all four attribute entropies = (2+0+2+0)/4.
        assert!((part.entropy_of(ClusterId::GLUE) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_entropies_follow_clusters() {
        use blast_blocking::token_blocking::TokenBlocking;
        let (profiles, input) = profiles();
        let part = AttributePartitioning::from_clusters(&profiles, &[vec![0, 2]], true);
        let blocks = TokenBlocking::new().build_with(&input, &part);
        let ents = part.block_entropies(&blocks);
        assert_eq!(ents.len(), blocks.len());
        for (b, e) in blocks.blocks().iter().zip(&ents) {
            assert_eq!(*e, part.entropy_of(b.cluster));
        }
        // The shared "1985" token in the glue cluster must carry entropy 0;
        // name tokens carry 2 bits.
        let name_block = blocks
            .block_by_label("john#c1")
            .expect("name cluster block");
        assert!((part.entropy_of(name_block.cluster) - 2.0).abs() < 1e-9);
    }
}
