//! Loose schema information extraction (§3.1).
//!
//! The *loose schema information* consists of (a) the **attributes
//! partitioning** — non-overlapping clusters of attributes whose values are
//! similar across the two sources — and (b) the **aggregate entropy** of
//! each cluster. Neither uses attribute names or any external semantics:
//! everything is computed from the attribute *values* (§2.1's
//! attribute-match induction).

pub mod ac;
pub mod attribute_profile;
pub mod candidates;
pub mod entropy;
pub mod extraction;
pub mod lmi;
pub mod partitioning;
pub mod similarity;
pub mod union_find;

pub use ac::AttributeClustering;
pub use attribute_profile::{AttributeColumn, AttributeProfiles};
pub use candidates::CandidateSource;
pub use extraction::{
    InductionAlgorithm, LooseSchemaConfig, LooseSchemaExtractor, LooseSchemaInfo,
};
pub use lmi::Lmi;
pub use partitioning::AttributePartitioning;
