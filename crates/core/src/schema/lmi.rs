//! Loose attribute-Match Induction — Algorithm 1 (§3.1.1).
//!
//! LMI collects the Jaccard similarity of the candidate attribute pairs,
//! tracks each attribute's best match, marks as *candidate matches* the
//! attributes within `α · maxSim` of that best (α = 0.9 by default), keeps
//! only *mutual* candidates as edges, and returns the connected components
//! with more than one member. Compared with Attribute Clustering, the
//! mutual-candidate rule yields cohesive clusters (§4.3).

use crate::schema::attribute_profile::AttributeProfiles;
use crate::schema::similarity::jaccard_sorted;
use crate::schema::union_find::UnionFind;
use blast_datamodel::parallel::{default_threads, parallel_map};

/// Loose attribute-Match Induction.
#[derive(Debug, Clone, Copy)]
pub struct Lmi {
    /// Fraction of an attribute's best similarity another attribute must
    /// reach to become a candidate match (Algorithm 1's α).
    pub alpha: f64,
}

impl Default for Lmi {
    fn default() -> Self {
        Self { alpha: 0.9 }
    }
}

impl Lmi {
    /// LMI with the default α = 0.9.
    pub fn new() -> Self {
        Self::default()
    }

    /// LMI with a custom α ∈ (0, 1].
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Self { alpha }
    }

    /// Clusters the attribute columns reachable through `candidates`.
    /// Returns clusters of column indices (each with ≥ 2 members), sorted.
    pub fn cluster(
        &self,
        profiles: &AttributeProfiles,
        candidates: &[(u32, u32)],
    ) -> Vec<Vec<u32>> {
        let n = profiles.len();
        if n == 0 || candidates.is_empty() {
            return Vec::new();
        }
        let cols = profiles.columns();

        // Lines 3–8: similarities and per-attribute maxima.
        let threads = default_threads(candidates.len());
        let sims = parallel_map(candidates, threads, |&(i, j)| {
            jaccard_sorted(&cols[i as usize].tokens, &cols[j as usize].tokens)
        });
        let mut max_sim = vec![0.0f64; n];
        for (&(i, j), &s) in candidates.iter().zip(&sims) {
            if s > max_sim[i as usize] {
                max_sim[i as usize] = s;
            }
            if s > max_sim[j as usize] {
                max_sim[j as usize] = s;
            }
        }

        // Lines 9–13: candidate matches within α of each side's best.
        let mut cand: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (&(i, j), &s) in candidates.iter().zip(&sims) {
            if s <= 0.0 {
                continue;
            }
            if s >= self.alpha * max_sim[i as usize] {
                cand[i as usize].push(j);
            }
            if s >= self.alpha * max_sim[j as usize] {
                cand[j as usize].push(i);
            }
        }

        // Lines 14–16: mutual candidates become edges.
        let mut uf = UnionFind::new(n);
        for (i, list) in cand.iter().enumerate() {
            let i = i as u32;
            for &j in list {
                if cand[j as usize].contains(&i) {
                    uf.union(i, j);
                }
            }
        }

        // Line 17: connected components with cardinality > 1.
        uf.components(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::candidates::CandidateSource;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;
    use blast_datamodel::input::ErInput;
    use blast_datamodel::tokenizer::Tokenizer;

    /// Two sources where name-ish attributes share values and the rest are
    /// dissimilar — the paper's running example (Figs. 1–2).
    fn people() -> AttributeProfiles {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs(
            "a1",
            [
                ("name", "john abram ellen smith mary jones"),
                ("addr", "main st 30 ny"),
            ],
        );
        d1.push_pairs(
            "a2",
            [
                ("name", "bob dylan susan boyle"),
                ("addr", "elm street 12 la"),
            ],
        );
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs(
            "b1",
            [
                ("full name", "john abram ellen smith mary jones bob"),
                ("occupation", "retail seller teacher"),
            ],
        );
        d2.push_pairs(
            "b2",
            [
                ("full name", "dylan susan boyle"),
                ("occupation", "car seller"),
            ],
        );
        AttributeProfiles::build(&ErInput::clean_clean(d1, d2), &Tokenizer::new())
    }

    #[test]
    fn clusters_similar_name_attributes() {
        let profiles = people();
        let candidates = CandidateSource::AllPairs.pairs(&profiles);
        let clusters = Lmi::new().cluster(&profiles, &candidates);
        assert_eq!(
            clusters.len(),
            1,
            "only name↔full name are similar: {clusters:?}"
        );
        let cluster = &clusters[0];
        let members: Vec<(&str, u8)> = cluster
            .iter()
            .map(|&c| {
                let col = &profiles.columns()[c as usize];
                ("", col.source.0)
            })
            .collect();
        assert_eq!(cluster.len(), 2);
        assert_eq!(members[0].1, 0);
        assert_eq!(members[1].1, 1);
    }

    #[test]
    fn dissimilar_attributes_stay_out() {
        let profiles = people();
        let candidates = CandidateSource::AllPairs.pairs(&profiles);
        let clusters = Lmi::new().cluster(&profiles, &candidates);
        // Exactly the two name-ish columns cluster; addr and occupation
        // (no shared tokens across sources) stay unclustered.
        let clustered: Vec<u32> = clusters.iter().flatten().copied().collect();
        assert_eq!(clustered.len(), 2);
        // Columns: 0 = (s0, addr), 1 = (s0, name), 2 = (s1, full name),
        // 3 = (s1, occupation) — in (source, attribute-id) order; resolve
        // robustly via token-set sizes instead of hard-coding.
        for &c in &clustered {
            let col = &profiles.columns()[c as usize];
            assert!(
                col.tokens.len() >= 6,
                "only the large name columns cluster, got {} tokens",
                col.tokens.len()
            );
        }
    }

    #[test]
    fn empty_candidates_yield_no_clusters() {
        let profiles = people();
        assert!(Lmi::new().cluster(&profiles, &[]).is_empty());
    }

    /// The mutual-candidate rule: a "hub" attribute similar to two others
    /// does not chain them together unless they are near each other's best.
    #[test]
    fn mutuality_prevents_weak_chaining() {
        let mut d1 = EntityCollection::new(SourceId(0));
        // a: strongly similar to hub; b: weakly similar to hub.
        d1.push_pairs(
            "x",
            [
                ("a", "t1 t2 t3 t4 t5 t6 t7 t8"),
                ("b", "t1 u2 u3 u4 u5 u6 u7 u8"),
            ],
        );
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("y", [("hub", "t1 t2 t3 t4 t5 t6 t7 t8")]);
        let profiles = AttributeProfiles::build(&ErInput::clean_clean(d1, d2), &Tokenizer::new());
        let candidates = CandidateSource::AllPairs.pairs(&profiles);
        let clusters = Lmi::new().cluster(&profiles, &candidates);
        // hub's best is a (J = 1); b (J = 1/15) is far below α·1 → only
        // {a, hub} clusters.
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn alpha_one_requires_exact_best() {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("x", [("a", "t1 t2 t3 t4"), ("b", "t1 t2 t3 u4")]);
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("y", [("c", "t1 t2 t3 t4")]);
        let profiles = AttributeProfiles::build(&ErInput::clean_clean(d1, d2), &Tokenizer::new());
        let candidates = CandidateSource::AllPairs.pairs(&profiles);
        // With α = 1: c's best is a (J=1); b (J=0.6) is not candidate for c.
        let clusters = Lmi::with_alpha(1.0).cluster(&profiles, &candidates);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 2);
        // With small α, b also becomes a mutual candidate of c → one
        // 3-cluster.
        let clusters = Lmi::with_alpha(0.1).cluster(&profiles, &candidates);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
    }
}
