//! Disjoint-set forest for the connected-components step of LMI/AC
//! (Algorithm 1, line 17).

/// Union–find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// The connected components with at least `min_size` members, each
    /// sorted, in deterministic order (by smallest member).
    pub fn components(&mut self, min_size: usize) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); n];
        for x in 0..n as u32 {
            let root = self.find(x);
            groups[root as usize].push(x);
        }
        let mut out: Vec<Vec<u32>> = groups.into_iter().filter(|g| g.len() >= min_size).collect();
        out.sort_unstable_by_key(|g| g[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unions_form_components() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(4, 5);
        let comps = uf.components(2);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![4, 5]]);
        // Singletons excluded with min_size=2; included with 1.
        let comps = uf.components(1);
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
    }

    proptest! {
        #[test]
        fn prop_components_partition(edges in proptest::collection::vec((0u32..20, 0u32..20), 0..40)) {
            let mut uf = UnionFind::new(20);
            for (a, b) in edges {
                uf.union(a, b);
            }
            let comps = uf.components(1);
            let mut all: Vec<u32> = comps.into_iter().flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..20).collect::<Vec<_>>());
        }

        #[test]
        fn prop_connectivity_transitive(chain in proptest::collection::vec(0u32..10, 2..10)) {
            let mut uf = UnionFind::new(10);
            for w in chain.windows(2) {
                uf.union(w[0], w[1]);
            }
            prop_assert_eq!(uf.find(chain[0]), uf.find(*chain.last().unwrap()));
        }
    }
}
