//! Attribute Clustering (AC) — the attribute-match induction baseline of
//! \[18\], compared against LMI in §4.3.
//!
//! AC links every attribute to its single most-similar attribute (if any
//! similarity is positive) and takes connected components. The difference
//! from LMI: AC groups "attributes similar to other similar attributes"
//! (transitive chains through best-match links), while LMI's
//! mutual-candidate rule yields cohesive clusters.

use crate::schema::attribute_profile::AttributeProfiles;
use crate::schema::similarity::jaccard_sorted;
use crate::schema::union_find::UnionFind;
use blast_datamodel::parallel::{default_threads, parallel_map};

/// The Attribute Clustering algorithm of \[18\].
#[derive(Debug, Clone, Copy, Default)]
pub struct AttributeClustering;

impl AttributeClustering {
    /// Creates the algorithm (no parameters: AC always links to the single
    /// best match).
    pub fn new() -> Self {
        Self
    }

    /// Clusters the attribute columns reachable through `candidates`.
    /// Returns clusters of column indices (each with ≥ 2 members), sorted.
    pub fn cluster(
        &self,
        profiles: &AttributeProfiles,
        candidates: &[(u32, u32)],
    ) -> Vec<Vec<u32>> {
        let n = profiles.len();
        if n == 0 || candidates.is_empty() {
            return Vec::new();
        }
        let cols = profiles.columns();
        let threads = default_threads(candidates.len());
        let sims = parallel_map(candidates, threads, |&(i, j)| {
            jaccard_sorted(&cols[i as usize].tokens, &cols[j as usize].tokens)
        });

        // Best match per column (ties → smaller index, deterministic).
        let mut best: Vec<(f64, u32)> = vec![(0.0, u32::MAX); n];
        for (&(i, j), &s) in candidates.iter().zip(&sims) {
            if s <= 0.0 {
                continue;
            }
            if s > best[i as usize].0 || (s == best[i as usize].0 && j < best[i as usize].1) {
                best[i as usize] = (s, j);
            }
            if s > best[j as usize].0 || (s == best[j as usize].0 && i < best[j as usize].1) {
                best[j as usize] = (s, i);
            }
        }

        let mut uf = UnionFind::new(n);
        for (i, &(s, j)) in best.iter().enumerate() {
            if s > 0.0 && j != u32::MAX {
                uf.union(i as u32, j);
            }
        }
        uf.components(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::candidates::CandidateSource;
    use crate::schema::lmi::Lmi;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;
    use blast_datamodel::input::ErInput;
    use blast_datamodel::tokenizer::Tokenizer;

    fn profiles_from(pairs1: &[(&str, &str)], pairs2: &[(&str, &str)]) -> AttributeProfiles {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("x", pairs1.iter().copied());
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("y", pairs2.iter().copied());
        AttributeProfiles::build(&ErInput::clean_clean(d1, d2), &Tokenizer::new())
    }

    #[test]
    fn links_best_matches() {
        let profiles = profiles_from(
            &[("title", "entity resolution blocking"), ("year", "2016")],
            &[
                ("paper", "entity resolution blocking meta"),
                ("date", "2016"),
            ],
        );
        let candidates = CandidateSource::AllPairs.pairs(&profiles);
        let clusters = AttributeClustering::new().cluster(&profiles, &candidates);
        // title↔paper and year↔date both cluster.
        assert_eq!(clusters.len(), 2);
        for c in &clusters {
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn zero_similarity_stays_singleton() {
        let profiles = profiles_from(&[("a", "x y z")], &[("b", "p q r")]);
        let candidates = CandidateSource::AllPairs.pairs(&profiles);
        assert!(AttributeClustering::new()
            .cluster(&profiles, &candidates)
            .is_empty());
    }

    /// §4.3: AC chains through best-match links where LMI stays cohesive —
    /// a hub weakly similar to one side and strongly to another drags all
    /// three together under AC, but LMI separates them.
    #[test]
    fn ac_chains_where_lmi_is_cohesive() {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs(
            "x",
            [
                ("strong", "t1 t2 t3 t4 t5 t6 t7 t8"),
                // weak's *only* positive similarity is to hub (1 shared token).
                ("weak", "t1 w2 w3 w4 w5 w6 w7 w8"),
            ],
        );
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("y", [("hub", "t1 t2 t3 t4 t5 t6 t7 t8")]);
        let profiles = AttributeProfiles::build(&ErInput::clean_clean(d1, d2), &Tokenizer::new());
        let candidates = CandidateSource::AllPairs.pairs(&profiles);

        // AC: weak's best match is hub (J = 1/15 > 0) → 3-cluster.
        let ac = AttributeClustering::new().cluster(&profiles, &candidates);
        assert_eq!(ac.len(), 1);
        assert_eq!(ac[0].len(), 3, "AC chains weak into the cluster");

        // LMI: hub's candidates only include strong (weak ≪ α·maxSim) →
        // cohesive 2-cluster.
        let lmi = Lmi::new().cluster(&profiles, &candidates);
        assert_eq!(lmi.len(), 1);
        assert_eq!(lmi[0].len(), 2, "LMI keeps the cohesive pair only");
    }

    #[test]
    fn identical_results_when_matches_are_clean() {
        // With clean 1:1 attribute correspondences AC and LMI agree — the
        // paper's observation that on large datasets behaviour is similar.
        let profiles = profiles_from(
            &[("name", "ann bob carl dan"), ("city", "rome paris london")],
            &[("label", "ann bob carl dan"), ("town", "rome paris london")],
        );
        let candidates = CandidateSource::AllPairs.pairs(&profiles);
        let ac = AttributeClustering::new().cluster(&profiles, &candidates);
        let lmi = Lmi::new().cluster(&profiles, &candidates);
        assert_eq!(ac, lmi);
        assert_eq!(ac.len(), 2);
    }
}
