//! Shannon entropy extraction (§3.1.3, Definition 3).
//!
//! "The higher the entropy of an attribute, the more significant is the
//! observation of a particular value for that attribute." BLAST computes
//! H(X) = −Σ p(x)·log p(x) over each attribute's token distribution, then
//! characterises each attribute cluster Cₖ with the aggregate entropy
//! H̄(Cₖ) = mean of its members' entropies.

/// Shannon entropy (log₂) of a discrete distribution given as raw counts.
/// Zero counts are ignored; an empty/degenerate distribution has entropy 0.
pub fn shannon_entropy(counts: impl IntoIterator<Item = u64>) -> f64 {
    let counts: Vec<u64> = counts.into_iter().filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for c in counts {
        let p = c as f64 / total;
        h -= p * p.log2();
    }
    // -0.0 from single-value distributions.
    if h == 0.0 {
        0.0
    } else {
        h
    }
}

/// Aggregate entropy of a cluster: the mean of its members' entropies
/// (H̄(Cₖ) = 1/|Cₖ| · Σ H(Aⱼ)).
pub fn aggregate_entropy(member_entropies: &[f64]) -> f64 {
    if member_entropies.is_empty() {
        0.0
    } else {
        member_entropies.iter().sum::<f64>() / member_entropies.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_distribution_maximises() {
        // 2 equiprobable values → 1 bit; 100 → log2(100).
        assert!((shannon_entropy([1, 1]) - 1.0).abs() < 1e-12);
        let h100 = shannon_entropy(vec![7u64; 100]);
        assert!((h100 - 100f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn constant_attribute_has_zero_entropy() {
        assert_eq!(shannon_entropy([42]), 0.0);
        assert_eq!(shannon_entropy([]), 0.0);
        assert_eq!(shannon_entropy([0, 0, 5]), 0.0);
        assert!(shannon_entropy([42]).is_sign_positive(), "no -0.0");
    }

    /// The paper's intuition: "year of birth is less informative than name"
    /// because it has fewer distinct values.
    #[test]
    fn names_beat_years() {
        // 50 distinct names vs 30 distinct years with a skew.
        let names = shannon_entropy(vec![2u64; 50]);
        let mut years = vec![1u64; 30];
        years[0] = 40; // many people born the same year
        let years = shannon_entropy(years);
        assert!(names > years);
    }

    #[test]
    fn aggregate_is_mean() {
        // Figure 3a: cluster1 (name) 3.5, cluster2 2.0.
        assert!((aggregate_entropy(&[3.0, 4.0]) - 3.5).abs() < 1e-12);
        assert_eq!(aggregate_entropy(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_entropy_nonneg_and_bounded(counts in proptest::collection::vec(1u64..1000, 1..30)) {
            let h = shannon_entropy(counts.clone());
            prop_assert!(h >= 0.0);
            prop_assert!(h <= (counts.len() as f64).log2() + 1e-9, "≤ log2(n) for n outcomes");
        }

        #[test]
        fn prop_entropy_invariant_to_scaling(counts in proptest::collection::vec(1u64..100, 1..12), k in 1u64..50) {
            let h1 = shannon_entropy(counts.clone());
            let h2 = shannon_entropy(counts.iter().map(|c| c * k));
            prop_assert!((h1 - h2).abs() < 1e-9);
        }
    }
}
