//! Phase 1 of BLAST (Fig. 4): loose schema information extraction.
//!
//! Orchestrates: attribute profiles → candidate pairs (all or LSH) →
//! attribute-match induction (LMI or AC) → partitioning + aggregate
//! entropies.

use crate::schema::ac::AttributeClustering;
use crate::schema::attribute_profile::AttributeProfiles;
use crate::schema::candidates::CandidateSource;
use crate::schema::lmi::Lmi;
use crate::schema::partitioning::AttributePartitioning;
use blast_datamodel::input::ErInput;
use blast_datamodel::tokenizer::Tokenizer;

/// Which attribute-match induction algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InductionAlgorithm {
    /// Loose attribute-Match Induction (Algorithm 1) — BLAST's default.
    Lmi,
    /// Attribute Clustering \[18\] — the baseline of §4.3.
    AttributeClustering,
}

/// Configuration of the extraction phase.
#[derive(Debug, Clone)]
pub struct LooseSchemaConfig {
    /// Induction algorithm (default LMI).
    pub algorithm: InductionAlgorithm,
    /// LMI's α (default 0.9). Ignored by AC.
    pub alpha: f64,
    /// Candidate-pair source (default all pairs; switch to LSH for
    /// many-attribute sources).
    pub candidates: CandidateSource,
    /// Whether unclustered attributes go to the glue cluster (default) or
    /// are excluded from blocking (§4.4's experiment).
    pub glue: bool,
    /// The value-transformation function τ.
    pub tokenizer: Tokenizer,
}

impl Default for LooseSchemaConfig {
    fn default() -> Self {
        Self {
            algorithm: InductionAlgorithm::Lmi,
            alpha: 0.9,
            candidates: CandidateSource::AllPairs,
            glue: true,
            tokenizer: Tokenizer::new(),
        }
    }
}

/// The extracted loose schema information plus diagnostics.
#[derive(Debug, Clone)]
pub struct LooseSchemaInfo {
    /// The attributes partitioning with aggregate entropies.
    pub partitioning: AttributePartitioning,
    /// Number of attribute columns considered (|A_E1| + |A_E2|).
    pub columns: usize,
    /// Candidate pairs actually compared (|A_E1|·|A_E2| without LSH).
    pub candidate_pairs: usize,
    /// Induced (non-glue) clusters.
    pub clusters: usize,
}

/// Runs phase 1.
#[derive(Debug, Clone, Default)]
pub struct LooseSchemaExtractor {
    config: LooseSchemaConfig,
}

impl LooseSchemaExtractor {
    /// Extractor with the given configuration.
    pub fn new(config: LooseSchemaConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LooseSchemaConfig {
        &self.config
    }

    /// Extracts the loose schema information from an ER input.
    pub fn extract(&self, input: &ErInput) -> LooseSchemaInfo {
        let profiles = AttributeProfiles::build(input, &self.config.tokenizer);
        self.extract_from_profiles(&profiles)
    }

    /// Extraction starting from prebuilt attribute profiles (lets callers
    /// reuse the profiles across configurations, e.g. the Fig. 10 sweep).
    pub fn extract_from_profiles(&self, profiles: &AttributeProfiles) -> LooseSchemaInfo {
        let candidates = self.config.candidates.pairs(profiles);
        let clusters = match self.config.algorithm {
            InductionAlgorithm::Lmi => {
                Lmi::with_alpha(self.config.alpha).cluster(profiles, &candidates)
            }
            InductionAlgorithm::AttributeClustering => {
                AttributeClustering::new().cluster(profiles, &candidates)
            }
        };
        let partitioning =
            AttributePartitioning::from_clusters(profiles, &clusters, self.config.glue);
        LooseSchemaInfo {
            partitioning,
            columns: profiles.len(),
            candidate_pairs: candidates.len(),
            clusters: clusters.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;

    fn bibliographic() -> ErInput {
        let mut d1 = EntityCollection::new(SourceId(0));
        let mut d2 = EntityCollection::new(SourceId(1));
        for i in 0..30 {
            d1.push_pairs(
                &format!("a{i}"),
                [
                    (
                        "title",
                        &*format!("entity resolution study number {i} alpha beta"),
                    ),
                    ("venue", &*format!("conf{}", i % 3)),
                    ("year", &*format!("{}", 1990 + i % 10)),
                ],
            );
            d2.push_pairs(
                &format!("b{i}"),
                [
                    (
                        "paper",
                        &*format!("entity resolution study number {i} alpha beta"),
                    ),
                    ("booktitle", &*format!("conf{}", i % 3)),
                    ("date", &*format!("{}", 1990 + i % 10)),
                ],
            );
        }
        ErInput::clean_clean(d1, d2)
    }

    #[test]
    fn lmi_extraction_finds_the_three_correspondences() {
        let info =
            LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&bibliographic());
        assert_eq!(info.columns, 6);
        assert_eq!(info.candidate_pairs, 9);
        assert_eq!(info.clusters, 3, "title↔paper, venue↔booktitle, year↔date");
        assert_eq!(info.partitioning.cluster_count(), 4);
    }

    #[test]
    fn lsh_extraction_matches_all_pairs_on_similar_attributes() {
        let input = bibliographic();
        let exact = LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&input);
        let lsh = LooseSchemaExtractor::new(LooseSchemaConfig {
            candidates: CandidateSource::lsh_default(),
            ..Default::default()
        })
        .extract(&input);
        // Identical attributes (J = 1 ≫ 0.5 threshold) are always candidates,
        // so the induced clusters coincide.
        assert_eq!(lsh.clusters, exact.clusters);
        assert!(lsh.candidate_pairs <= exact.candidate_pairs);
    }

    #[test]
    fn ac_variant_runs() {
        let info = LooseSchemaExtractor::new(LooseSchemaConfig {
            algorithm: InductionAlgorithm::AttributeClustering,
            ..Default::default()
        })
        .extract(&bibliographic());
        assert_eq!(info.clusters, 3);
    }

    #[test]
    fn dirty_extraction_clusters_within_single_source() {
        // A dirty collection whose "name"/"label" attributes share values.
        let mut d = EntityCollection::new(SourceId(0));
        for i in 0..20 {
            d.push_pairs(
                &format!("p{i}"),
                [
                    ("name", &*format!("person {i} common tokens here")),
                    ("age", &*format!("{}", 20 + i)),
                ],
            );
            d.push_pairs(
                &format!("q{i}"),
                [
                    ("label", &*format!("person {i} common tokens here")),
                    ("years", &*format!("{}", 20 + i)),
                ],
            );
        }
        let info =
            LooseSchemaExtractor::new(LooseSchemaConfig::default()).extract(&ErInput::dirty(d));
        assert!(
            info.clusters >= 1,
            "name↔label must cluster in dirty mode too"
        );
    }
}
