//! Similarity measure for attribute profiles (§2.1).
//!
//! LMI uses the Jaccard coefficient over the binary token vectors — with
//! binary presence, `Tᵢ·Tⱼ` is the intersection size and `|Tᵢ|²` the set
//! size, so footnote 5's formula reduces to |∩| / |∪|.

/// Jaccard coefficient of two sorted, deduplicated id slices.
pub fn jaccard_sorted(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Size of the intersection of two sorted id slices.
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_cases() {
        assert_eq!(jaccard_sorted(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard_sorted(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard_sorted(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard_sorted(&[], &[]), 0.0);
        assert_eq!(jaccard_sorted(&[1], &[]), 0.0);
    }

    #[test]
    fn intersection_counts() {
        assert_eq!(intersection_size(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
    }

    proptest! {
        #[test]
        fn prop_matches_set_arithmetic(
            a in proptest::collection::btree_set(0u32..60, 0..30),
            b in proptest::collection::btree_set(0u32..60, 0..30),
        ) {
            let va: Vec<u32> = a.iter().copied().collect();
            let vb: Vec<u32> = b.iter().copied().collect();
            let inter = a.intersection(&b).count();
            let union = a.union(&b).count();
            prop_assert_eq!(intersection_size(&va, &vb), inter);
            let expected = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
            prop_assert!((jaccard_sorted(&va, &vb) - expected).abs() < 1e-12);
        }

        #[test]
        fn prop_symmetric(
            a in proptest::collection::btree_set(0u32..40, 0..20),
            b in proptest::collection::btree_set(0u32..40, 0..20),
        ) {
            let va: Vec<u32> = a.iter().copied().collect();
            let vb: Vec<u32> = b.iter().copied().collect();
            prop_assert_eq!(jaccard_sorted(&va, &vb), jaccard_sorted(&vb, &va));
        }
    }
}
