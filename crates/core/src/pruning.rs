//! BLAST's graph pruning (§3.3.2).
//!
//! WNP thresholds that depend on the number of adjacent edges (like the mean
//! weight) are sensitive to low-weight neighbours: adding unrelated profiles
//! changes whether an edge survives (Fig. 6). BLAST instead anchors each
//! node's threshold to its *local maximum* weight — θᵢ = Mᵢ/c — and resolves
//! the two-threshold ambiguity of Fig. 7 with a single per-edge threshold
//! θᵢⱼ = (θᵢ + θⱼ)/d. The paper uses c = d = 2.

use blast_graph::context::GraphSnapshot;
use blast_graph::pruning::common::{collect_edges, node_pass, pair};
use blast_graph::retained::RetainedPairs;
use blast_graph::weights::EdgeWeigher;

/// BLAST's weight-based, node-centric, degree-independent pruning.
#[derive(Debug, Clone, Copy)]
pub struct BlastPruning {
    /// Local threshold divisor: θᵢ = Mᵢ/c. Higher c → higher PC, lower PQ.
    pub c: f64,
    /// Pair threshold divisor: θᵢⱼ = (θᵢ + θⱼ)/d. d = 2 → mean of the two.
    pub d: f64,
}

impl Default for BlastPruning {
    fn default() -> Self {
        Self { c: 2.0, d: 2.0 }
    }
}

impl BlastPruning {
    /// The paper's configuration (c = 2, d = 2).
    pub fn new() -> Self {
        Self::default()
    }

    /// Custom constants (both must be positive).
    pub fn with_constants(c: f64, d: f64) -> Self {
        assert!(c > 0.0 && d > 0.0, "c and d must be positive");
        Self { c, d }
    }

    /// The per-node thresholds θᵢ = Mᵢ/c (+∞ for isolated nodes).
    pub fn thresholds(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> Vec<f64> {
        let c = self.c;
        node_pass(ctx, weigher, move |_, adj| {
            let max = adj
                .iter()
                .map(|(_, w)| *w)
                .fold(f64::NEG_INFINITY, f64::max);
            if max.is_finite() {
                max / c
            } else {
                f64::INFINITY
            }
        })
    }

    /// Prunes the graph: edge (u,v) survives iff w > 0 and
    /// w ≥ (θᵤ + θᵥ)/d.
    pub fn prune(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        let thresholds = self.thresholds(ctx, weigher);
        let d = self.d;
        let pairs = collect_edges(ctx, weigher, |u, v, w| {
            let theta = (thresholds[u as usize] + thresholds[v as usize]) / d;
            (w > 0.0 && w >= theta).then(|| pair(u, v))
        });
        RetainedPairs::new(pairs)
    }

    /// Like [`BlastPruning::prune`], but keeps each surviving edge's weight —
    /// downstream matchers can process the most promising comparisons first
    /// (e.g. for progressive ER or budgeted matching). Pairs are sorted by
    /// descending weight, ties by id.
    pub fn prune_scored(
        &self,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
    ) -> Vec<(
        blast_datamodel::entity::ProfileId,
        blast_datamodel::entity::ProfileId,
        f64,
    )> {
        let thresholds = self.thresholds(ctx, weigher);
        let d = self.d;
        let mut scored = collect_edges(ctx, weigher, |u, v, w| {
            let theta = (thresholds[u as usize] + thresholds[v as usize]) / d;
            (w > 0.0 && w >= theta).then(|| {
                let (a, b) = pair(u, v);
                (a, b, w)
            })
        });
        scored.sort_unstable_by(|x, y| {
            y.2.partial_cmp(&x.2)
                .expect("no NaN weights")
                .then_with(|| (x.0, x.1).cmp(&(y.0, y.1)))
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighting::ChiSquaredWeigher;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;
    use blast_blocking::token_blocking::TokenBlocking;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::{ProfileId, SourceId};
    use blast_datamodel::input::ErInput;
    use blast_graph::weights::WeightingScheme;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    /// A star around node 0: weight 4 to node 1, weight 1 to nodes 2..n.
    fn star(extra: u32) -> BlockCollection {
        let mut blocks = Vec::new();
        for i in 0..4 {
            blocks.push(Block::new(
                format!("m{i}"),
                ClusterId::GLUE,
                ids(&[0, 1]),
                u32::MAX,
            ));
        }
        for e in 0..extra {
            blocks.push(Block::new(
                format!("x{e}"),
                ClusterId::GLUE,
                ids(&[0, 2 + e]),
                u32::MAX,
            ));
        }
        let n = 2 + extra;
        BlockCollection::new(blocks, false, n, n)
    }

    #[test]
    fn thresholds_are_local_max_over_c() {
        let blocks = star(2);
        let ctx = GraphSnapshot::build(&blocks);
        let t = BlastPruning::new().thresholds(&ctx, &WeightingScheme::Cbs);
        // node 0: max weight 4 → θ = 2; node 1: max 4 → 2; nodes 2,3: max 1.
        assert!((t[0] - 2.0).abs() < 1e-12);
        assert!((t[1] - 2.0).abs() < 1e-12);
        assert!((t[2] - 0.5).abs() < 1e-12);
    }

    /// The Fig. 6 robustness property: BLAST's threshold for node 0 does not
    /// move when unrelated low-weight neighbours appear.
    #[test]
    fn threshold_independent_of_degree() {
        let few = star(1);
        let many = star(40);
        let ctx_few = GraphSnapshot::build(&few);
        let ctx_many = GraphSnapshot::build(&many);
        let t_few = BlastPruning::new().thresholds(&ctx_few, &WeightingScheme::Cbs);
        let t_many = BlastPruning::new().thresholds(&ctx_many, &WeightingScheme::Cbs);
        assert_eq!(t_few[0], t_many[0], "θ₀ = M/c is degree-independent");
    }

    #[test]
    fn prunes_low_weight_edges() {
        let blocks = star(3);
        let ctx = GraphSnapshot::build(&blocks);
        let retained = BlastPruning::new().prune(&ctx, &WeightingScheme::Cbs);
        // Edge (0,1): w=4 ≥ (2+2)/2 → kept. Edges (0,k): w=1 < (2+0.5)/2 →
        // pruned.
        assert_eq!(retained.len(), 1);
        assert!(retained.contains(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn higher_c_retains_more() {
        let blocks = star(3);
        let ctx = GraphSnapshot::build(&blocks);
        let strict = BlastPruning::with_constants(1.0, 2.0).prune(&ctx, &WeightingScheme::Cbs);
        let loose = BlastPruning::with_constants(8.0, 2.0).prune(&ctx, &WeightingScheme::Cbs);
        assert!(loose.len() >= strict.len());
        // "a higher value for c can achieve higher PC, but at the expense
        // of PQ": with c=8 the weak edges also survive.
        assert_eq!(loose.len(), 4);
    }

    #[test]
    fn scored_pruning_ranks_by_weight() {
        let blocks = star(3);
        let ctx = GraphSnapshot::build(&blocks);
        // Loose constants so several edges survive with distinct weights.
        let scored =
            BlastPruning::with_constants(8.0, 2.0).prune_scored(&ctx, &WeightingScheme::Cbs);
        assert_eq!(scored.len(), 4);
        // Descending weights.
        for w in scored.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        // The heavy (0,1) edge ranks first with weight 4.
        assert_eq!((scored[0].0, scored[0].1), (ProfileId(0), ProfileId(1)));
        assert_eq!(scored[0].2, 4.0);
        // Same survivors as the unscored variant.
        let plain = BlastPruning::with_constants(8.0, 2.0).prune(&ctx, &WeightingScheme::Cbs);
        assert_eq!(plain.len(), scored.len());
        for (a, b, _) in &scored {
            assert!(plain.contains(*a, *b));
        }
    }

    #[test]
    fn zero_weight_edges_never_survive() {
        // Two nodes co-occurring exactly as independence predicts → χ² = 0.
        let blocks = star(1);
        let ctx = GraphSnapshot::build(&blocks);
        struct ZeroWeigher;
        impl EdgeWeigher for ZeroWeigher {
            fn weight(
                &self,
                _: &GraphSnapshot,
                _: u32,
                _: u32,
                _: &blast_graph::context::EdgeAccum,
            ) -> f64 {
                0.0
            }
        }
        let retained = BlastPruning::new().prune(&ctx, &ZeroWeigher);
        assert!(retained.is_empty());
    }

    /// End-to-end on the Figure 1 example with the χ² weigher: the matching
    /// edges (p1,p3) and (p2,p4) must survive, the superfluous ones must go.
    #[test]
    fn figure1_blast_pruning_keeps_matches() {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs(
            "p1",
            [
                ("Name", "John Abram Jr"),
                ("profession", "car seller"),
                ("year", "1985"),
                ("Addr.", "Main street"),
            ],
        );
        d.push_pairs(
            "p2",
            [
                ("FirstName", "Ellen"),
                ("SecondName", "Smith"),
                ("year", "85"),
                ("occupation", "retail"),
                ("mail", "Abram st. 30 NY"),
            ],
        );
        d.push_pairs(
            "p3",
            [
                ("name1", "Jon Jr"),
                ("name2", "Abram"),
                ("birth year", "85"),
                ("job", "car retail"),
                ("Loc", "Main st."),
            ],
        );
        d.push_pairs(
            "p4",
            [
                ("full name", "Ellen Smith"),
                ("b. date", "May 10 1985"),
                ("work info", "retailer"),
                ("loc", "Abram street NY"),
            ],
        );
        let blocks = TokenBlocking::new().build(&ErInput::dirty(d));
        let ctx = GraphSnapshot::build(&blocks);
        let retained = BlastPruning::new().prune(&ctx, &ChiSquaredWeigher::without_entropy());
        assert!(retained.contains(ProfileId(0), ProfileId(2)), "p1–p3 kept");
        assert!(retained.contains(ProfileId(1), ProfileId(3)), "p2–p4 kept");
        assert!(
            !retained.contains(ProfileId(0), ProfileId(1)),
            "p1–p2 pruned"
        );
        assert!(
            !retained.contains(ProfileId(2), ProfileId(3)),
            "p3–p4 pruned"
        );
    }
}
