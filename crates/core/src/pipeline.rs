//! The end-to-end BLAST pipeline (Fig. 4): loose schema extraction →
//! loosely schema-aware blocking → block cleaning → loosely schema-aware
//! meta-blocking. Works unchanged for clean-clean and dirty ER (§4.5).

pub use crate::config::BlastConfig;

use crate::pruning::BlastPruning;
use crate::schema::extraction::{LooseSchemaExtractor, LooseSchemaInfo};
use crate::weighting::ChiSquaredWeigher;
use blast_blocking::collection::BlockCollection;
use blast_blocking::filtering::BlockFiltering;
use blast_blocking::purging::BlockPurging;
use blast_blocking::token_blocking::TokenBlocking;
use blast_datamodel::input::ErInput;
use blast_graph::context::GraphSnapshot;
use blast_graph::retained::RetainedPairs;
use blast_metrics::timing::Stopwatch;

/// Everything the pipeline produces: the restructured comparisons plus the
/// intermediate artifacts needed by the evaluation and by downstream
/// matching.
#[derive(Debug)]
pub struct BlastOutcome {
    /// The retained comparisons (the final block collection: one block per
    /// pair).
    pub pairs: RetainedPairs,
    /// The loose schema information extracted in phase 1.
    pub schema: LooseSchemaInfo,
    /// The block collection fed into meta-blocking (after purging and
    /// filtering).
    pub blocks: BlockCollection,
    /// Per-phase wall-clock timings (the tₒ columns).
    pub timings: Stopwatch,
}

/// The BLAST pipeline.
#[derive(Debug, Clone, Default)]
pub struct BlastPipeline {
    config: BlastConfig,
}

impl BlastPipeline {
    /// Pipeline with the given configuration.
    pub fn new(config: BlastConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BlastConfig {
        &self.config
    }

    /// Runs the three phases on an ER input.
    pub fn run(&self, input: &ErInput) -> BlastOutcome {
        let mut timings = Stopwatch::new();

        // Phase 1: loose schema information extraction.
        let extractor = LooseSchemaExtractor::new(self.config.schema.clone());
        let schema = timings.time("schema extraction", || extractor.extract(input));

        // Phase 2: loosely schema-aware blocking (+ cleaning).
        let blocks = timings.time("token blocking", || {
            TokenBlocking::with_tokenizer(self.config.schema.tokenizer.clone())
                .build_with(input, &schema.partitioning)
        });
        let blocks = self.clean_blocks(blocks, &mut timings);

        // Phase 3: loosely schema-aware meta-blocking.
        let pairs = timings.time("meta-blocking", || {
            let entropies = schema.partitioning.block_entropies(&blocks);
            let ctx = GraphSnapshot::build(&blocks).with_block_entropies(entropies);
            let weigher = if self.config.use_entropy {
                ChiSquaredWeigher::new()
            } else {
                ChiSquaredWeigher::without_entropy()
            };
            BlastPruning::with_constants(self.config.c, self.config.d).prune(&ctx, &weigher)
        });

        BlastOutcome {
            pairs,
            schema,
            blocks,
            timings,
        }
    }

    /// Phase 2 alone: the loosely schema-aware blocks after cleaning
    /// (used when composing BLAST's blocking with other meta-blocking
    /// algorithms, e.g. the cnp χ²ₕ rows of Tables 4–5).
    pub fn build_blocks(&self, input: &ErInput) -> (BlockCollection, LooseSchemaInfo) {
        let extractor = LooseSchemaExtractor::new(self.config.schema.clone());
        let schema = extractor.extract(input);
        let blocks = TokenBlocking::with_tokenizer(self.config.schema.tokenizer.clone())
            .build_with(input, &schema.partitioning);
        let mut timings = Stopwatch::new();
        let blocks = self.clean_blocks(blocks, &mut timings);
        (blocks, schema)
    }

    fn clean_blocks(&self, blocks: BlockCollection, timings: &mut Stopwatch) -> BlockCollection {
        let blocks = if self.config.purging {
            timings.time("block purging", || {
                BlockPurging::new()
                    .max_profile_fraction(self.config.purge_fraction)
                    .purge(&blocks)
            })
        } else {
            blocks
        };
        if self.config.filtering {
            timings.time("block filtering", || {
                BlockFiltering::with_ratio(self.config.filter_ratio).filter(&blocks)
            })
        } else {
            blocks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::{ProfileId, SourceId};
    use blast_datamodel::ground_truth::GroundTruth;
    use blast_metrics::quality::evaluate_pairs;

    /// A small clean-clean scenario with different schemas and enough
    /// profiles for the statistics to be meaningful.
    fn scenario() -> (ErInput, GroundTruth) {
        let names = [
            "john abram",
            "ellen smith",
            "mary jones",
            "bob dylan",
            "susan boyle",
            "carl sagan",
            "ada lovelace",
            "alan turing",
            "grace hopper",
            "tim lee",
            "rosa parks",
            "amelia earhart",
            "nikola tesla",
            "marie curie",
            "isaac newton",
            "charles darwin",
            "jane austen",
            "mark twain",
            "emily bronte",
            "oscar wilde",
        ];
        let cities = ["rome", "paris", "london", "berlin", "madrid"];
        let mut d1 = EntityCollection::new(SourceId(0));
        let mut d2 = EntityCollection::new(SourceId(1));
        let mut gt = GroundTruth::new();
        for (i, name) in names.iter().enumerate() {
            let year = format!("{}", 1950 + (i % 6));
            let city = cities[i % cities.len()];
            d1.push_pairs(
                &format!("a{i}"),
                [("name", *name), ("birth year", &*year), ("city", city)],
            );
            // Source 2 renames attributes and tweaks values slightly.
            let full = format!("{name} {}", i); // extra distinctive token
            d2.push_pairs(
                &format!("b{i}"),
                [("full name", &*full), ("year", &*year), ("location", city)],
            );
            gt.insert(ProfileId(i as u32), ProfileId((names.len() + i) as u32));
        }
        (ErInput::clean_clean(d1, d2), gt)
    }

    #[test]
    fn pipeline_detects_matches_with_high_precision() {
        let (input, gt) = scenario();
        let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
        let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
        assert!(q.pc >= 0.9, "PC should stay high, got {}", q.pc);
        assert!(
            q.pq >= 0.5,
            "most retained comparisons should be matches, got {}",
            q.pq
        );
        // LMI must find the three attribute correspondences.
        assert_eq!(outcome.schema.clusters, 3);
    }

    #[test]
    fn pipeline_records_phase_timings() {
        let (input, _) = scenario();
        let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
        for phase in ["schema extraction", "token blocking", "meta-blocking"] {
            assert!(outcome.timings.phase(phase).is_some(), "missing {phase}");
        }
    }

    #[test]
    fn pairs_respect_clean_clean_separator() {
        let (input, _) = scenario();
        let sep = input.separator();
        let outcome = BlastPipeline::new(BlastConfig::default()).run(&input);
        for (a, b) in outcome.pairs.iter() {
            assert!(a.0 < sep && b.0 >= sep);
        }
    }

    #[test]
    fn dirty_pipeline_runs() {
        // Fold both sources into one dirty collection.
        let (input, gt) = scenario();
        let ErInput::CleanClean { d1, d2 } = input else {
            unreachable!()
        };
        let mut d = EntityCollection::new(SourceId(0));
        for p in d1.profiles() {
            let pairs: Vec<(&str, &str)> = p
                .values
                .iter()
                .map(|(a, v)| (d1.attribute_name(*a), &**v))
                .collect();
            d.push_pairs(&p.external_id, pairs);
        }
        for p in d2.profiles() {
            let pairs: Vec<(&str, &str)> = p
                .values
                .iter()
                .map(|(a, v)| (d2.attribute_name(*a), &**v))
                .collect();
            d.push_pairs(&p.external_id, pairs);
        }
        let outcome = BlastPipeline::new(BlastConfig::default()).run(&ErInput::dirty(d));
        let q = evaluate_pairs(outcome.pairs.pairs(), &gt);
        assert!(q.pc >= 0.8, "dirty PC too low: {}", q.pc);
    }

    #[test]
    fn disabling_cleaning_keeps_more_blocks() {
        let (input, _) = scenario();
        let with = BlastPipeline::new(BlastConfig::default())
            .build_blocks(&input)
            .0;
        let without = BlastPipeline::new(BlastConfig::default().without_block_cleaning())
            .build_blocks(&input)
            .0;
        assert!(without.aggregate_cardinality() >= with.aggregate_cardinality());
    }
}
