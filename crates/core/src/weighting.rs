//! BLAST's blocking-graph weighting (§3.3.1).
//!
//! For an edge (u, v), the 2×2 contingency table of Table 1 describes how u
//! and v co-occur in the block collection:
//!
//! |            | v present    | v absent            | total        |
//! |------------|--------------|---------------------|--------------|
//! | u present  | n₁₁ = |B_uv| | n₁₂ = |B_u| − n₁₁   | n₁₊ = |B_u|  |
//! | u absent   | n₂₁ = |B_v| − n₁₁ | n₂₂          | n₂₊          |
//! | total      | n₊₁ = |B_v|  | n₊₂                 | n₊₊ = |B|    |
//!
//! Pearson's χ² = Σ (nᵢⱼ − μᵢⱼ)²/μᵢⱼ with μᵢⱼ = nᵢ₊·n₊ⱼ/n₊₊ measures how
//! far the observed co-occurrence is from independence; BLAST multiplies it
//! by h(B_uv), the mean aggregate entropy of the shared blocking keys, so
//! co-occurrences in informative blocks weigh more.

use blast_graph::context::{EdgeAccum, GraphSnapshot};
use blast_graph::weights::{EdgeWeigher, WeightDeps, WeightingScheme};

/// Computes Pearson's χ² for the contingency table with n₁₁ = `common`,
/// marginals `bu` = |B_u|, `bv` = |B_v| and total `n` = |B|. Cells with zero
/// expected count contribute nothing.
pub fn chi_squared(common: f64, bu: f64, bv: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    let observed = [
        common,               // n11
        bu - common,          // n12
        bv - common,          // n21
        n - bu - bv + common, // n22
    ];
    let rows = [bu, n - bu];
    let cols = [bv, n - bv];
    let mut chi = 0.0;
    for i in 0..2 {
        for j in 0..2 {
            let expected = rows[i] * cols[j] / n;
            if expected > 0.0 {
                let d = observed[i * 2 + j] - expected;
                chi += d * d / expected;
            }
        }
    }
    chi
}

/// BLAST's edge weigher: w_uv = χ²_uv · h(B_uv).
///
/// The entropy factor requires the graph context to carry per-block
/// entropies ([`GraphSnapshot::with_block_entropies`]); without them every
/// block's factor is 1 and the weigher reduces to plain χ² (the "chi"
/// ablation of Fig. 8).
#[derive(Debug, Clone, Copy)]
pub struct ChiSquaredWeigher {
    /// Multiply by the mean entropy of the shared blocks (h(B_uv)).
    pub use_entropy: bool,
}

impl Default for ChiSquaredWeigher {
    fn default() -> Self {
        Self { use_entropy: true }
    }
}

impl ChiSquaredWeigher {
    /// The full BLAST weighting (χ² × entropy).
    pub fn new() -> Self {
        Self::default()
    }

    /// χ² only — the Fig. 8 "chi" configuration.
    pub fn without_entropy() -> Self {
        Self { use_entropy: false }
    }
}

impl EdgeWeigher for ChiSquaredWeigher {
    fn weight(&self, ctx: &GraphSnapshot, u: u32, v: u32, acc: &EdgeAccum) -> f64 {
        let common = acc.common_blocks as f64;
        let bu = ctx.node_blocks(u) as f64;
        let bv = ctx.node_blocks(v) as f64;
        let n = ctx.total_blocks() as f64;
        // χ² is two-sided: pairs co-occurring *less* than independence
        // predicts also diverge. The paper uses the statistic "to highlight
        // profile pairs that are highly associated", so negative association
        // (observed ≤ expected co-occurrence) gets weight 0. With realistic
        // block counts μ₁₁ ≪ 1 and this never triggers; it matters on toy
        // collections like Fig. 1 where expected co-occurrence is large.
        if n > 0.0 && common <= bu * bv / n {
            return 0.0;
        }
        let chi = chi_squared(common, bu, bv, n);
        if self.use_entropy {
            let h = acc.entropy_sum / acc.common_blocks as f64;
            chi * h
        } else {
            chi
        }
    }

    fn global_deps(&self) -> WeightDeps {
        // The contingency table reads |B_u|, |B_v| and |B|.
        WeightDeps::ALL
    }

    fn name(&self) -> &'static str {
        if self.use_entropy {
            "chi2·h"
        } else {
            "chi2"
        }
    }
}

/// A traditional weighting scheme scaled by the aggregate entropy — the
/// Fig. 8 "wsh" configuration (WS adapted to exploit entropies).
#[derive(Debug, Clone, Copy)]
pub struct WsEntropyWeigher {
    /// The underlying traditional scheme.
    pub scheme: WeightingScheme,
}

impl WsEntropyWeigher {
    /// Wraps a traditional scheme.
    pub fn new(scheme: WeightingScheme) -> Self {
        Self { scheme }
    }
}

impl EdgeWeigher for WsEntropyWeigher {
    fn weight(&self, ctx: &GraphSnapshot, u: u32, v: u32, acc: &EdgeAccum) -> f64 {
        let base = self.scheme.weight(ctx, u, v, acc);
        let h = acc.entropy_sum / acc.common_blocks as f64;
        base * h
    }

    fn requires_degrees(&self) -> bool {
        self.scheme.requires_degrees()
    }

    fn global_deps(&self) -> WeightDeps {
        // The entropy factor reads only the accumulator; the globals are the
        // wrapped scheme's.
        self.scheme.global_deps()
    }

    fn name(&self) -> &'static str {
        "ws·h"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::block::Block;
    use blast_blocking::collection::BlockCollection;
    use blast_blocking::key::ClusterId;
    use blast_blocking::token_blocking::TokenBlocking;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::{ProfileId, SourceId};
    use blast_datamodel::input::ErInput;

    /// Table 1's worked example: n₁₁=4, n₁₂=2, n₂₁=3, n₂₂=3, totals 6/6,
    /// 7/5, 12 — from the Figure 1b blocks for (p1, p3).
    #[test]
    fn table1_chi_squared_value() {
        // Hand-computed χ²:
        // μ11 = 6·7/12 = 3.5, μ12 = 6·5/12 = 2.5,
        // μ21 = 6·7/12 = 3.5, μ22 = 6·5/12 = 2.5.
        // χ² = .25/3.5 + .25/2.5 + .25/3.5 + .25/2.5 = 0.342857…
        let chi = chi_squared(4.0, 6.0, 7.0, 12.0);
        let expected = 2.0 * (0.25 / 3.5) + 2.0 * (0.25 / 2.5);
        assert!((chi - expected).abs() < 1e-12, "{chi} vs {expected}");
    }

    /// The same value must come out of the real Figure 1 pipeline.
    #[test]
    fn figure1_chi_squared_through_graph() {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs(
            "p1",
            [
                ("Name", "John Abram Jr"),
                ("profession", "car seller"),
                ("year", "1985"),
                ("Addr.", "Main street"),
            ],
        );
        d.push_pairs(
            "p2",
            [
                ("FirstName", "Ellen"),
                ("SecondName", "Smith"),
                ("year", "85"),
                ("occupation", "retail"),
                ("mail", "Abram st. 30 NY"),
            ],
        );
        d.push_pairs(
            "p3",
            [
                ("name1", "Jon Jr"),
                ("name2", "Abram"),
                ("birth year", "85"),
                ("job", "car retail"),
                ("Loc", "Main st."),
            ],
        );
        d.push_pairs(
            "p4",
            [
                ("full name", "Ellen Smith"),
                ("b. date", "May 10 1985"),
                ("work info", "retailer"),
                ("loc", "Abram street NY"),
            ],
        );
        let blocks = TokenBlocking::new().build(&ErInput::dirty(d));
        let ctx = GraphSnapshot::build(&blocks);
        let acc = ctx.edge(0, 2).unwrap();
        let w = ChiSquaredWeigher::without_entropy().weight(&ctx, 0, 2, &acc);
        assert!((w - chi_squared(4.0, 6.0, 7.0, 12.0)).abs() < 1e-12);
    }

    #[test]
    fn independence_gives_zero_chi() {
        // u in half the blocks, v in half, co-occurring exactly as expected:
        // n11 = 25, bu = bv = 50, n = 100 → μ11 = 25 → χ² = 0.
        assert!(chi_squared(25.0, 50.0, 50.0, 100.0).abs() < 1e-12);
    }

    #[test]
    fn stronger_association_higher_chi() {
        let weak = chi_squared(3.0, 10.0, 10.0, 100.0);
        let strong = chi_squared(9.0, 10.0, 10.0, 100.0);
        assert!(strong > weak);
    }

    #[test]
    fn degenerate_tables_are_safe() {
        assert_eq!(chi_squared(0.0, 0.0, 0.0, 0.0), 0.0);
        // Node in every block: row 2 is empty → its cells are skipped.
        let chi = chi_squared(5.0, 10.0, 5.0, 10.0);
        assert!(chi.is_finite());
    }

    /// Figure 3's effect: the entropy factor amplifies edges whose shared
    /// blocks come from informative clusters.
    #[test]
    fn entropy_factor_scales_weights() {
        fn ids(v: &[u32]) -> Vec<ProfileId> {
            v.iter().map(|&i| ProfileId(i)).collect()
        }
        // E1 = {0,1}, E2 = {2,3}: two name blocks on (0,2), two year blocks
        // on (1,3) — symmetric topology, different clusters.
        let blocks = BlockCollection::new(
            vec![
                Block::new("john#c1", ClusterId(1), ids(&[0, 2]), 2),
                Block::new("1985#c0", ClusterId(0), ids(&[1, 3]), 2),
                Block::new("abram#c1", ClusterId(1), ids(&[0, 2]), 2),
                Block::new("85#c0", ClusterId(0), ids(&[1, 3]), 2),
            ],
            true,
            2,
            4,
        );
        // Per-block entropies from the cluster aggregates of Fig. 3a:
        // names = 3.5, other = 2.0.
        let ents = vec![3.5, 2.0, 3.5, 2.0];
        let ctx = GraphSnapshot::build(&blocks).with_block_entropies(ents);
        let full = ChiSquaredWeigher::new();
        let plain = ChiSquaredWeigher::without_entropy();
        let acc02 = ctx.edge(0, 2).unwrap();
        let acc13 = ctx.edge(1, 3).unwrap();
        // Same topology for both edges → equal χ² (= 4 here); entropy
        // separates them by exactly the cluster ratio.
        let chi02 = plain.weight(&ctx, 0, 2, &acc02);
        let chi13 = plain.weight(&ctx, 1, 3, &acc13);
        assert!((chi02 - 4.0).abs() < 1e-12, "χ² = {chi02}");
        assert!((chi02 - chi13).abs() < 1e-12);
        assert!(
            (full.weight(&ctx, 0, 2, &acc02) / full.weight(&ctx, 1, 3, &acc13) - 3.5 / 2.0).abs()
                < 1e-9
        );
    }

    /// Negative association must not masquerade as a strong signal.
    #[test]
    fn negative_association_weighs_zero() {
        fn ids(v: &[u32]) -> Vec<ProfileId> {
            v.iter().map(|&i| ProfileId(i)).collect()
        }
        // Nodes 0 and 1 share 1 of 4 blocks while sitting in 3 and 2:
        // expected co-occurrence 3·2/4 = 1.5 > 1 → anti-associated.
        let blocks = BlockCollection::new(
            vec![
                Block::new("a", ClusterId::GLUE, ids(&[0, 1]), 1),
                Block::new("b", ClusterId::GLUE, ids(&[0, 2]), 1),
                Block::new("c", ClusterId::GLUE, ids(&[0, 3]), 1),
                Block::new("d", ClusterId::GLUE, ids(&[1, 2]), 1),
            ],
            false,
            4,
            4,
        );
        let ctx = GraphSnapshot::build(&blocks);
        let acc = ctx.edge(0, 1).unwrap();
        assert_eq!(
            ChiSquaredWeigher::without_entropy().weight(&ctx, 0, 1, &acc),
            0.0
        );
        // The raw statistic itself is positive — the guard is the weigher's.
        assert!(chi_squared(1.0, 3.0, 3.0, 4.0) > 0.0);
    }

    #[test]
    fn ws_entropy_wrapper_scales_traditional_scheme() {
        fn ids(v: &[u32]) -> Vec<ProfileId> {
            v.iter().map(|&i| ProfileId(i)).collect()
        }
        let blocks = BlockCollection::new(
            vec![Block::new("k", ClusterId(1), ids(&[0, 1]), 1)],
            true,
            1,
            2,
        );
        let ctx = GraphSnapshot::build(&blocks).with_block_entropies(vec![2.5]);
        let acc = ctx.edge(0, 1).unwrap();
        let plain = WeightingScheme::Cbs.weight(&ctx, 0, 1, &acc);
        let scaled = WsEntropyWeigher::new(WeightingScheme::Cbs).weight(&ctx, 0, 1, &acc);
        assert!((scaled - plain * 2.5).abs() < 1e-12);
    }
}
