//! # blast-core — the BLAST contribution (§3)
//!
//! Blast (Blocking with Loosely-Aware Schema Techniques) is a holistic
//! loosely schema-aware (meta-)blocking approach for entity resolution. This
//! crate implements its three phases (Fig. 4):
//!
//! 1. **Loose schema information extraction** ([`schema`]): the
//!    attribute-match induction task — LMI (Algorithm 1) or the Attribute
//!    Clustering baseline — optionally preceded by the LSH candidate step,
//!    plus Shannon-entropy extraction per attribute cluster.
//! 2. **Loosely schema-aware blocking**: Token Blocking whose keys are
//!    disambiguated by the attribute partitioning (implemented in
//!    `blast-blocking`, driven from here).
//! 3. **Loosely schema-aware meta-blocking** ([`weighting`], [`pruning`]):
//!    a blocking graph weighted by Pearson's χ² over the block co-occurrence
//!    contingency table, scaled by the aggregate entropy of the shared
//!    blocking keys, pruned with BLAST's degree-independent local-maximum
//!    thresholds.
//!
//! [`pipeline`] wires the phases together for clean-clean and dirty ER.

pub mod config;
pub mod pipeline;
pub mod pruning;
pub mod schema;
pub mod weighting;

pub use config::BlastConfig;
pub use pipeline::{BlastOutcome, BlastPipeline};
pub use pruning::BlastPruning;
pub use schema::extraction::{
    InductionAlgorithm, LooseSchemaConfig, LooseSchemaExtractor, LooseSchemaInfo,
};
pub use schema::partitioning::AttributePartitioning;
pub use weighting::{ChiSquaredWeigher, WsEntropyWeigher};
