//! The mutable profile store: an evolving ER input with a **stable global
//! id space**.
//!
//! The batch pipeline freezes its input up front; the store instead accepts
//! `insert` / `update` / `delete` at any time while keeping every global
//! [`ProfileId`] it ever handed out valid. Deletion is a *tombstone*: the
//! slot stays, its values are dropped, and a blank profile contributes no
//! blocking keys — exactly how an empty profile behaves in the batch
//! pipeline. That makes the batch-equivalence contract crisp: at any point,
//! [`MutableProfileStore::materialize`] produces an [`ErInput`] on which a
//! from-scratch batch run must yield bit-identical results to the
//! incremental path.
//!
//! Clean-clean stores fix the dataset separator up front (the capacity of
//! the first collection), because the global numbering `0..|E1|` /
//! `|E1|..` of the batch model cannot shift once ids are out.

use blast_datamodel::collection::EntityCollection;
use blast_datamodel::entity::{AttributeId, EntityProfile, ProfileId, SourceId};
use blast_datamodel::input::ErInput;
use blast_datamodel::interner::Interner;

/// Which ER setting the store evolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// One collection with duplicates; ids grow without bound.
    Dirty,
    /// Two duplicate-free collections; ids `0..separator` belong to the
    /// first, `separator..` to the second.
    CleanClean {
        /// Capacity of the first collection (the fixed dataset separator).
        separator: u32,
    },
}

/// One global id slot.
#[derive(Debug, Clone)]
struct Slot {
    external_id: Box<str>,
    values: Vec<(AttributeId, Box<str>)>,
    live: bool,
}

impl Slot {
    fn blank(external_id: impl Into<Box<str>>) -> Self {
        Self {
            external_id: external_id.into(),
            values: Vec::new(),
            live: false,
        }
    }
}

/// An evolving entity-profile collection with interned attribute names
/// (one interner per source, mirroring [`EntityCollection`]).
#[derive(Debug, Clone)]
pub struct MutableProfileStore {
    mode: StoreMode,
    slots: Vec<Slot>,
    attrs: [Interner; 2],
    /// Used slots of the first collection (≤ separator in clean-clean mode).
    len0: u32,
}

impl MutableProfileStore {
    /// An empty dirty-ER store.
    pub fn dirty() -> Self {
        Self {
            mode: StoreMode::Dirty,
            slots: Vec::new(),
            attrs: [Interner::new(), Interner::new()],
            len0: 0,
        }
    }

    /// An empty clean-clean store whose first collection holds at most
    /// `separator` profiles. Unused first-collection slots materialise as
    /// blank profiles so the global numbering never moves.
    pub fn clean_clean(separator: u32) -> Self {
        let slots = (0..separator)
            .map(|i| Slot::blank(format!("__slot{i}")))
            .collect();
        Self {
            mode: StoreMode::CleanClean { separator },
            slots,
            attrs: [Interner::new(), Interner::new()],
            len0: 0,
        }
    }

    /// The store's mode.
    #[inline]
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// Whether this is a clean-clean store.
    #[inline]
    pub fn is_clean_clean(&self) -> bool {
        matches!(self.mode, StoreMode::CleanClean { .. })
    }

    /// The current dataset separator: fixed for clean-clean stores, the
    /// slot count for dirty ones (the [`ErInput`] convention).
    #[inline]
    pub fn separator(&self) -> u32 {
        match self.mode {
            StoreMode::Dirty => self.slots.len() as u32,
            StoreMode::CleanClean { separator } => separator,
        }
    }

    /// Total number of global id slots (live + tombstoned + reserved).
    #[inline]
    pub fn total_slots(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Number of live (non-tombstoned, inserted) profiles.
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.live).count()
    }

    /// Estimated resident heap footprint in bytes: slot payloads (external
    /// ids and attribute values) plus the attribute interners.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.slots.capacity() * size_of::<Slot>()
            + self
                .slots
                .iter()
                .map(|s| {
                    s.external_id.len()
                        + s.values.capacity() * size_of::<(AttributeId, Box<str>)>()
                        + s.values.iter().map(|(_, v)| v.len()).sum::<usize>()
                })
                .sum::<usize>()
            + self
                .attrs
                .iter()
                .map(Interner::resident_bytes)
                .sum::<usize>()
    }

    /// The source a global id belongs to.
    #[inline]
    pub fn source_of(&self, id: ProfileId) -> SourceId {
        match self.mode {
            StoreMode::Dirty => SourceId(0),
            StoreMode::CleanClean { separator } => {
                if id.0 < separator {
                    SourceId(0)
                } else {
                    SourceId(1)
                }
            }
        }
    }

    /// Interns an attribute name of `source`, returning its id — the same
    /// id the materialised [`EntityCollection`] assigns.
    pub fn attribute(&mut self, source: SourceId, name: &str) -> AttributeId {
        self.attrs[source.0 as usize].intern(name)
    }

    /// Pre-interns attribute names in order, aligning this store's
    /// [`AttributeId`]s with an existing collection's — required when a
    /// fixed attribute partitioning extracted from that collection is to be
    /// resolved against streamed profiles.
    pub fn adopt_attributes<'a>(
        &mut self,
        source: SourceId,
        names: impl IntoIterator<Item = &'a str>,
    ) {
        let interner = &mut self.attrs[source.0 as usize];
        for name in names {
            interner.intern(name);
        }
    }

    /// The name–value pairs of a profile (empty for tombstones).
    pub fn values(&self, id: ProfileId) -> &[(AttributeId, Box<str>)] {
        &self.slots[id.index()].values
    }

    /// Whether a profile is live.
    pub fn is_live(&self, id: ProfileId) -> bool {
        self.slots.get(id.index()).is_some_and(|s| s.live)
    }

    /// The external id a global slot was created with (`None` for ids
    /// never handed out; reserved clean-clean slots report their
    /// placeholder). Tombstoned slots keep their external id.
    pub fn external_id_of(&self, id: ProfileId) -> Option<&str> {
        self.slots.get(id.index()).map(|s| &*s.external_id)
    }

    /// Inserts a new profile into `source`, returning its global id.
    ///
    /// # Panics
    /// Panics when a clean-clean store's first collection is full, or when
    /// `source` is not valid for the mode.
    pub fn insert<'a>(
        &mut self,
        source: SourceId,
        external_id: &str,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> ProfileId {
        let id = match (self.mode, source.0) {
            (StoreMode::Dirty, 0) => {
                self.slots.push(Slot::blank(external_id));
                ProfileId(self.slots.len() as u32 - 1)
            }
            (StoreMode::CleanClean { separator }, 0) => {
                assert!(
                    self.len0 < separator,
                    "first collection is full ({separator} slots)"
                );
                let id = ProfileId(self.len0);
                self.len0 += 1;
                self.slots[id.index()] = Slot::blank(external_id);
                id
            }
            (StoreMode::CleanClean { .. }, 1) => {
                self.slots.push(Slot::blank(external_id));
                ProfileId(self.slots.len() as u32 - 1)
            }
            (mode, s) => panic!("source {s} is invalid for {mode:?}"),
        };
        self.slots[id.index()].live = true;
        self.set_values(id, source, pairs);
        id
    }

    /// Replaces a live profile's name–value pairs.
    ///
    /// # Panics
    /// Panics when the profile is not live.
    pub fn update<'a>(
        &mut self,
        id: ProfileId,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) {
        assert!(self.is_live(id), "update of dead profile {id:?}");
        let source = self.source_of(id);
        self.set_values(id, source, pairs);
    }

    /// Tombstones a profile: its values are dropped, its id stays valid and
    /// it contributes nothing to blocking from now on.
    pub fn delete(&mut self, id: ProfileId) {
        let slot = &mut self.slots[id.index()];
        slot.values.clear();
        slot.live = false;
    }

    fn set_values<'a>(
        &mut self,
        id: ProfileId,
        source: SourceId,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) {
        let interner = &mut self.attrs[source.0 as usize];
        let values: Vec<(AttributeId, Box<str>)> = pairs
            .into_iter()
            .map(|(name, value)| (interner.intern(name), Box::from(value)))
            .collect();
        self.slots[id.index()].values = values;
    }

    /// Freezes the store into the [`ErInput`] a batch run would consume.
    /// Attribute ids are preserved exactly (the collections pre-intern the
    /// store's attribute tables in order), so a fixed attribute partitioning
    /// resolves identically against the store and the materialised input.
    pub fn materialize(&self) -> ErInput {
        match self.mode {
            StoreMode::Dirty => {
                ErInput::dirty(self.materialize_range(SourceId(0), 0..self.slots.len()))
            }
            StoreMode::CleanClean { separator } => {
                let d1 = self.materialize_range(SourceId(0), 0..separator as usize);
                let d2 = self.materialize_range(SourceId(1), separator as usize..self.slots.len());
                ErInput::clean_clean(d1, d2)
            }
        }
    }

    fn materialize_range(
        &self,
        source: SourceId,
        range: std::ops::Range<usize>,
    ) -> EntityCollection {
        let mut c = EntityCollection::new(source);
        for (_, name) in self.attrs[source.0 as usize].iter() {
            c.attribute(name);
        }
        for slot in &self.slots[range] {
            let mut profile = EntityProfile::new(slot.external_id.clone());
            for (attr, value) in &slot.values {
                profile.push(*attr, value.clone());
            }
            c.push(profile);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_ids_are_stable_across_mutations() {
        let mut s = MutableProfileStore::dirty();
        let a = s.insert(SourceId(0), "a", [("name", "john abram")]);
        let b = s.insert(SourceId(0), "b", [("name", "ellen smith")]);
        assert_eq!((a, b), (ProfileId(0), ProfileId(1)));
        s.delete(a);
        let c = s.insert(SourceId(0), "c", [("name", "mary")]);
        assert_eq!(c, ProfileId(2), "tombstoned slots are never reused");
        assert!(!s.is_live(a));
        assert!(s.values(a).is_empty());
        assert_eq!(s.live_count(), 2);
    }

    #[test]
    fn materialized_input_matches_store_shape() {
        let mut s = MutableProfileStore::dirty();
        s.insert(SourceId(0), "a", [("name", "john"), ("year", "1985")]);
        let b = s.insert(SourceId(0), "b", [("name", "ellen")]);
        s.delete(b);
        let input = s.materialize();
        assert_eq!(input.total_profiles(), 2);
        assert!(input.profile(ProfileId(1)).is_blank());
        assert_eq!(input.profile(ProfileId(0)).nvp(), 2);
        assert_eq!(input.separator(), 2);
    }

    #[test]
    fn attribute_ids_survive_materialization() {
        let mut s = MutableProfileStore::dirty();
        s.insert(SourceId(0), "a", [("name", "x"), ("year", "1")]);
        let year_in_store = s.attribute(SourceId(0), "year");
        let ErInput::Dirty(d) = s.materialize() else {
            unreachable!()
        };
        assert_eq!(d.attribute_id("year"), Some(year_in_store));
    }

    #[test]
    fn attributes_of_deleted_profiles_stay_interned() {
        // The interner never shrinks; materialisation pre-interns the full
        // table so ids stay aligned even when the only user is tombstoned.
        let mut s = MutableProfileStore::dirty();
        let a = s.insert(SourceId(0), "a", [("rare", "x")]);
        s.insert(SourceId(0), "b", [("name", "y")]);
        s.delete(a);
        let name_in_store = s.attribute(SourceId(0), "name");
        let ErInput::Dirty(d) = s.materialize() else {
            unreachable!()
        };
        assert_eq!(d.attribute_id("name"), Some(name_in_store));
        assert!(d.attribute_id("rare").is_some());
    }

    #[test]
    fn clean_clean_separator_is_fixed() {
        let mut s = MutableProfileStore::clean_clean(2);
        let a = s.insert(SourceId(0), "a", [("name", "x")]);
        let b = s.insert(SourceId(1), "b", [("title", "x")]);
        assert_eq!(a, ProfileId(0));
        assert_eq!(b, ProfileId(2), "second collection starts at the separator");
        assert_eq!(s.separator(), 2);
        let input = s.materialize();
        assert!(input.is_clean_clean());
        assert_eq!(input.total_profiles(), 3);
        // The unused first-collection slot materialises blank.
        assert!(input.profile(ProfileId(1)).is_blank());
        assert_eq!(s.source_of(ProfileId(2)), SourceId(1));
    }

    #[test]
    #[should_panic(expected = "full")]
    fn clean_clean_capacity_is_enforced() {
        let mut s = MutableProfileStore::clean_clean(1);
        s.insert(SourceId(0), "a", [("n", "x")]);
        s.insert(SourceId(0), "b", [("n", "y")]);
    }

    #[test]
    fn update_replaces_values() {
        let mut s = MutableProfileStore::dirty();
        let a = s.insert(SourceId(0), "a", [("name", "john")]);
        s.update(a, [("name", "jon"), ("year", "85")]);
        assert_eq!(s.values(a).len(), 2);
        let input = s.materialize();
        assert_eq!(input.profile(a).nvp(), 2);
    }
}
