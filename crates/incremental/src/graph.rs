//! Dirty-neighbourhood meta-blocking repair.
//!
//! After a micro-batch, most of the blocking graph is untouched: an edge's
//! accumulator changes only through a block that contains *both* endpoints,
//! and such blocks make both endpoints graph-dirty. The repair therefore
//! recomputes per-node pruning artefacts (thresholds, top-k lists) and edge
//! weights **only** for the dirty nodes on the dense scratch engine — and,
//! since PR 4, takes the pruning *decisions* incrementally too: no stage of
//! a non-degraded commit iterates all edges, all nodes, or all retained
//! pairs. The decision stage runs on the structures of [`crate::decision`]:
//!
//! * **WEP / CEP** — the live edge list sits in an
//!   [`crate::decision::OrderedWeightIndex`] (order-statistic treap keyed
//!   by `(weight rank bits, u, v)` with a running exact Σw). Re-weighted
//!   edges are re-keyed individually; the new threshold (mean via
//!   [`Wep::mean_from_sum`]) or cutoff (rank-K order statistic) becomes a
//!   retention [`Frontier`], and the clean edges whose retention flips are
//!   exactly the keys between the old and new frontier — enumerated in
//!   O(log |E| + flips) instead of re-scanning and re-merging the
//!   materialised edge list.
//! * **WNP / BLAST** — per-node thresholds as before, but the survivors
//!   live in a [`blast_graph::retained::RetainedIndex`], so the old side
//!   of the flip diff is read off the dirty rows alone — the clean
//!   survivors are never merged through.
//! * **CNP** — per-node top-k lists as before, but the global union is
//!   maintained as a [`crate::decision::ContainmentIndex`] (per-pair 0/1/2
//!   listing counters) updated only from dirty nodes' list *diffs*;
//!   retention flips are counter threshold crossings.
//!
//! The [`PairDelta`] is emitted directly from the flips — there is no
//! full-set diff — and the flat [`RetainedPairs`] view is materialised
//! lazily on read, never on the commit path. The result remains
//! bit-identical to a from-scratch batch run on the final collection:
//!
//! * weights of edges between two clean nodes are unchanged bitwise (same
//!   accumulator, same per-node statistics, same summation order);
//! * recomputed weights use the exact accumulation path of the batch pass;
//! * WEP's Θ is a function of the edge-weight *multiset* only (the exact
//!   accumulator of [`blast_graph::exact_sum::ExactSum`], shared with the
//!   batch pass), so the delta-maintained sum reproduces it bitwise;
//! * whenever a *global* statistic a scheme reads moved in a way that the
//!   dirty set cannot bound — |B| for χ²/ECBS, degrees for EJS, a changed
//!   default k for CNP — the repair soundly degrades to a full recompute
//!   (`dirty = all`), which runs the **identical flip-emitting code path**
//!   with every node marked.
//!
//! Dirtiness propagation is scheme-aware via
//! [`EdgeWeigher::global_deps`]: schemes reading per-node block counts
//! (JS, χ²) additionally dirty the co-members of every node whose cleaned
//! block list changed, because all of that node's incident edge weights
//! moved even where the accumulators did not.

use crate::decision::{
    retained_under, ContainmentIndex, EdgeAdjacency, EdgeKey, Frontier, OrderedWeightIndex,
};
use blast_core::pruning::BlastPruning;
use blast_datamodel::entity::ProfileId;
use blast_graph::context::GraphSnapshot;
use blast_graph::meta::PruningAlgorithm;
use blast_graph::pruning::common::{collect_edges_touching, node_pass_subset, EpochMask};
use blast_graph::pruning::{cnp, Cep, Cnp, NodeCentricMode, Wep, Wnp};
use blast_graph::retained::{RetainedIndex, RetainedPairs};
use blast_graph::weights::EdgeWeigher;
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The pruning variant an incremental pipeline maintains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IncrementalPruning {
    /// One of the six traditional variants (wep, cep, wnp₁/₂, cnp₁/₂).
    Traditional(PruningAlgorithm),
    /// BLAST's pruning (θᵢ = Mᵢ/c, θᵢⱼ = (θᵢ+θⱼ)/d).
    Blast {
        /// Local threshold divisor.
        c: f64,
        /// Pair threshold divisor.
        d: f64,
    },
}

impl IncrementalPruning {
    /// BLAST pruning with the paper's constants (c = d = 2).
    pub fn blast() -> Self {
        IncrementalPruning::Blast { c: 2.0, d: 2.0 }
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            IncrementalPruning::Traditional(a) => a.label().to_string(),
            IncrementalPruning::Blast { .. } => "blast".to_string(),
        }
    }

    /// The batch counterpart this variant must stay bit-identical to.
    pub fn batch_prune(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        match self {
            IncrementalPruning::Traditional(a) => a.prune(ctx, weigher),
            IncrementalPruning::Blast { c, d } => {
                BlastPruning::with_constants(*c, *d).prune(ctx, weigher)
            }
        }
    }
}

/// The candidate-pair delta one micro-batch produced.
#[derive(Debug, Clone, Default)]
pub struct PairDelta {
    /// Comparisons entering the candidate set (sorted, smaller id first).
    pub added: Vec<(ProfileId, ProfileId)>,
    /// Comparisons leaving the candidate set (sorted, smaller id first).
    pub retracted: Vec<(ProfileId, ProfileId)>,
}

impl PairDelta {
    /// Whether the candidate set did not move.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.retracted.is_empty()
    }
}

/// Diagnostics of one repair pass (surfaced per commit by
/// `blast stream --stats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairStats {
    /// Nodes whose neighbourhood was recomputed.
    pub dirty_nodes: usize,
    /// CSR rows the snapshot patched this commit (filled by the pipeline
    /// from [`blast_graph::context::ApplyStats`]).
    pub patched_rows: usize,
    /// Block slots the snapshot patched this commit.
    pub patched_slots: usize,
    /// Edge weights recomputed this commit (the dirty-incident edges the
    /// artefact stage re-materialised).
    pub edges_reweighed: usize,
    /// Candidate pairs whose retention flipped (|added| + |retracted|).
    pub retention_flips: usize,
    /// Clean edges whose retention flipped purely because the global
    /// threshold/cutoff frontier moved (WEP mean drift, CEP budget or
    /// rank shift) — enumerated from the ordered weight index, never by
    /// re-scanning the edge list.
    pub threshold_crossers: usize,
    /// Wall-clock of the decision stage alone (frontier maintenance, flip
    /// emission, retained-set surgery) — the `decision` phase column.
    pub decision_secs: f64,
    /// Whether the pass degraded to a full recompute (`WeightDeps` global
    /// moves, a CNP budget shift, or an EJS-style degree dependency).
    pub full: bool,
}

/// What the cleaning stage reports into the repair.
#[derive(Debug, Default)]
pub struct DirtyScope {
    /// Graph-dirty nodes (cleaned co-occurrence changed). Sorted.
    pub nodes: Vec<u32>,
    /// Nodes whose cleaned block list (|B_u|) changed. Sorted.
    pub lists_changed: Vec<u32>,
    /// Whether the cleaned |B| moved.
    pub total_blocks_changed: bool,
}

/// WEP/CEP decision state: ordered weight index + live adjacency +
/// retention frontier. Boxed in [`DecisionState`] — the inline exact
/// accumulator makes it much larger than the other variants.
#[derive(Debug)]
struct EdgeState {
    index: OrderedWeightIndex,
    adj: EdgeAdjacency,
    frontier: Frontier,
}

/// Variant-specific decision-stage state (see module docs).
#[derive(Debug)]
enum DecisionState {
    /// WEP/CEP (see [`EdgeState`]).
    Edge(Box<EdgeState>),
    /// WNP/BLAST: indexed survivors.
    Node { retained: RetainedIndex },
    /// CNP: per-pair containment counters.
    Lists { counts: ContainmentIndex },
}

/// The incremental meta-blocker: cached per-node artefacts + delta-run
/// decision state.
#[derive(Debug)]
pub struct IncrementalMetaBlocker {
    pruning: IncrementalPruning,
    /// Per-node thresholds (WNP: mean, BLAST: max/c). Empty otherwise.
    thresholds: Vec<f64>,
    /// Per-node top-k lists (CNP). Empty otherwise.
    lists: Vec<Vec<u32>>,
    decision: DecisionState,
    /// |retained|, maintained from the flips (no full-set scan).
    retained_len: usize,
    /// The flat sorted view, materialised lazily on read.
    cache: OnceCell<RetainedPairs>,
    /// Reusable epoch-stamped dirty mask (no per-commit `vec![false; n]`).
    mask: EpochMask,
    /// CNP's default k of the previous pass (a move forces a full pass).
    prev_cnp_budget: Option<usize>,
    initialised: bool,
}

impl IncrementalMetaBlocker {
    /// A blocker maintaining the given pruning variant.
    pub fn new(pruning: IncrementalPruning) -> Self {
        let decision = match pruning {
            IncrementalPruning::Traditional(PruningAlgorithm::Wep)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cep) => {
                DecisionState::Edge(Box::new(EdgeState {
                    index: OrderedWeightIndex::new(),
                    adj: EdgeAdjacency::new(),
                    frontier: None,
                }))
            }
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp2) => DecisionState::Lists {
                counts: ContainmentIndex::new(),
            },
            _ => DecisionState::Node {
                retained: RetainedIndex::new(),
            },
        };
        Self {
            pruning,
            thresholds: Vec::new(),
            lists: Vec::new(),
            decision,
            retained_len: 0,
            cache: OnceCell::new(),
            mask: EpochMask::new(),
            prev_cnp_budget: None,
            initialised: false,
        }
    }

    /// The pruning variant.
    pub fn pruning(&self) -> IncrementalPruning {
        self.pruning
    }

    /// Number of retained comparisons — O(1), maintained from the flips.
    pub fn retained_len(&self) -> usize {
        self.retained_len
    }

    /// The current candidate set as a flat sorted list, materialised
    /// lazily from the decision state (cached until the next commit).
    pub fn retained(&self) -> &RetainedPairs {
        self.cache.get_or_init(|| match &self.decision {
            DecisionState::Edge(state) => state.index.prefix_pairs(state.frontier),
            DecisionState::Node { retained } => retained.to_pairs(),
            DecisionState::Lists { counts } => {
                counts.to_pairs(self.node_centric_mode().required_listings())
            }
        })
    }

    fn node_centric_mode(&self) -> NodeCentricMode {
        match self.pruning {
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp1) => NodeCentricMode::Redefined,
            _ => NodeCentricMode::Reciprocal,
        }
    }

    /// Repairs the candidate set after a micro-batch. `ctx` is the graph
    /// context over the *cleaned* snapshot (degrees ensured when the
    /// weigher requires them); `scope` is the cleaning stage's dirty
    /// report.
    pub fn refresh(
        &mut self,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        scope: &DirtyScope,
    ) -> (PairDelta, RepairStats) {
        self.cache.take();
        let n = ctx.total_profiles() as usize;
        let deps = weigher.global_deps();

        let cnp_budget = match self.pruning {
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp2) => {
                Some(Cnp::redefined().budget(ctx))
            }
            _ => None,
        };
        let full = !self.initialised
            || weigher.requires_degrees()
            || (deps.total_blocks && scope.total_blocks_changed)
            || (cnp_budget.is_some() && cnp_budget != self.prev_cnp_budget);
        self.prev_cnp_budget = cnp_budget;
        self.initialised = true;

        // The dirty set, under the reusable epoch mask: collected from the
        // cleaning scope (plus co-members of |B_u|-changed nodes for
        // schemes reading per-node block counts) — never by scanning all n
        // nodes, except on the degraded-full path where dirty *is* all.
        self.mask.begin(n);
        let dirty: Vec<u32> = if full {
            self.mask.mark_all();
            (0..n as u32).collect()
        } else {
            let mut d = Vec::with_capacity(scope.nodes.len());
            for &u in &scope.nodes {
                if self.mask.mark(u) {
                    d.push(u);
                }
            }
            if deps.node_blocks {
                let direct = d.len();
                for &u in &scope.lists_changed {
                    for &slot in ctx.index().blocks_of(u) {
                        for p in ctx.slot_members(slot) {
                            if self.mask.mark(p.0) {
                                d.push(p.0);
                            }
                        }
                    }
                }
                if d.len() > direct {
                    d.sort_unstable();
                }
            }
            d
        };

        let mut stats = RepairStats {
            dirty_nodes: dirty.len(),
            full,
            ..RepairStats::default()
        };
        let (added, retracted) = self.repair(ctx, weigher, &dirty, cnp_budget, &mut stats);
        stats.retention_flips = added.len() + retracted.len();
        self.retained_len += added.len();
        self.retained_len -= retracted.len();
        let delta = PairDelta {
            added: added
                .into_iter()
                .map(|(a, b)| (ProfileId(a), ProfileId(b)))
                .collect(),
            retracted: retracted
                .into_iter()
                .map(|(a, b)| (ProfileId(a), ProfileId(b)))
                .collect(),
        };
        (delta, stats)
    }

    /// The per-variant artefact + decision pass. Returns the (sorted)
    /// added/retracted flips; updates `stats` with the decision-stage
    /// counters and wall-clock.
    #[allow(clippy::type_complexity)]
    fn repair(
        &mut self,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        dirty: &[u32],
        cnp_budget: Option<usize>,
        stats: &mut RepairStats,
    ) -> (Vec<(u32, u32)>, Vec<(u32, u32)>) {
        let n = ctx.total_profiles() as usize;
        let mask = &self.mask;
        let full = stats.full;
        let mut added: Vec<(u32, u32)> = Vec::new();
        let mut retracted: Vec<(u32, u32)> = Vec::new();
        match self.pruning {
            IncrementalPruning::Traditional(
                algorithm @ (PruningAlgorithm::Wep | PruningAlgorithm::Cep),
            ) => {
                let DecisionState::Edge(state) = &mut self.decision else {
                    unreachable!("edge-centric pruning carries edge state")
                };
                let EdgeState {
                    index,
                    adj,
                    frontier,
                } = state.as_mut();
                // Artefact stage: re-weigh exactly the dirty-incident edges.
                let fresh = collect_edges_touching(ctx, weigher, dirty, mask);
                stats.edges_reweighed = fresh.len();

                let t0 = Instant::now();
                adj.ensure_nodes(n);
                let old = adj.collect_touching(dirty, mask);
                // Re-key only the edges whose weight bits actually moved:
                // dirtiness is conservative (a new profile dirties every
                // co-member, but most mutual weights are untouched), so
                // the true edge delta is usually far smaller than the
                // dirty-incident set.
                if full {
                    index.clear();
                    adj.clear();
                    for &(a, b, w) in &fresh {
                        index.insert(a, b, w);
                    }
                    adj.load(&fresh);
                } else {
                    merge_join(&old, &fresh, edge_pair, edge_pair, |step| match step {
                        Joined::Both(&(a, b, ow), &(_, _, nw)) => {
                            if ow.to_bits() != nw.to_bits() {
                                index.remove(a, b, ow);
                                index.insert(a, b, nw);
                                adj.set_weight(a, b, nw);
                            }
                        }
                        Joined::Left(&(a, b, w)) => {
                            index.remove(a, b, w);
                            adj.remove_edge(a, b);
                        }
                        Joined::Right(&(a, b, w)) => {
                            index.insert(a, b, w);
                            adj.insert_edge(a, b, w);
                        }
                    });
                }

                // The new retention frontier: WEP's mean over the running
                // exact Σw, or CEP's rank-K order statistic.
                let old_frontier = *frontier;
                let new_frontier = match algorithm {
                    PruningAlgorithm::Wep => {
                        Wep::mean_from_sum(index.sum(), index.len()).map(EdgeKey::mean_bound)
                    }
                    _ => {
                        let k = Cep::new().budget(ctx) as usize;
                        if k == 0 {
                            None
                        } else {
                            index.select(k.min(index.len()).wrapping_sub(1))
                        }
                    }
                };
                *frontier = new_frontier;

                // Dirty flips: merge-walk the old vs fresh dirty-incident
                // edges, deciding each against its era's frontier.
                edge_flips(
                    &old,
                    &fresh,
                    old_frontier,
                    new_frontier,
                    &mut added,
                    &mut retracted,
                );
                // Clean flips: exactly the keys between the two frontiers
                // (skipped on a full pass — every edge was dirty-decided).
                if !full && old_frontier != new_frontier {
                    let lo = old_frontier.min(new_frontier);
                    if let Some(hi) = old_frontier.max(new_frontier) {
                        index.for_each_between(lo, hi, &mut |key, _| {
                            if mask.contains(key.u) || mask.contains(key.v) {
                                return;
                            }
                            let was = retained_under(old_frontier, key);
                            let now = retained_under(new_frontier, key);
                            if was != now {
                                stats.threshold_crossers += 1;
                                if now {
                                    added.push((key.u, key.v));
                                } else {
                                    retracted.push((key.u, key.v));
                                }
                            }
                        });
                    }
                    added.sort_unstable();
                    retracted.sort_unstable();
                }
                stats.decision_secs = t0.elapsed().as_secs_f64();
                debug_assert_eq!(
                    new_frontier.map_or(0, |f| index.prefix_len(f)),
                    self.retained_len + added.len() - retracted.len(),
                    "frontier prefix must equal the flip-maintained count"
                );
            }
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Wnp2) => {
                let mode = self.node_centric_mode();
                let DecisionState::Node { retained } = &mut self.decision else {
                    unreachable!("node-centric pruning carries a retained index")
                };
                self.thresholds.resize(n, f64::INFINITY);
                let theta = node_pass_subset(ctx, weigher, dirty, |_, adj| {
                    if adj.is_empty() {
                        f64::INFINITY
                    } else {
                        adj.iter().map(|(_, w)| *w).sum::<f64>() / adj.len() as f64
                    }
                });
                for (&u, &t) in dirty.iter().zip(&theta) {
                    self.thresholds[u as usize] = t;
                }
                let touching = collect_edges_touching(ctx, weigher, dirty, mask);
                stats.edges_reweighed = touching.len();

                let t0 = Instant::now();
                let wnp = Wnp { mode };
                let thresholds = &self.thresholds;
                node_flips(
                    retained,
                    dirty,
                    mask,
                    n,
                    touching
                        .iter()
                        .filter(|&&(u, v, w)| wnp.decide(thresholds, u, v, w))
                        .map(|&(u, v, _)| (u, v)),
                    &mut added,
                    &mut retracted,
                );
                stats.decision_secs = t0.elapsed().as_secs_f64();
            }
            IncrementalPruning::Blast { c, d } => {
                let DecisionState::Node { retained } = &mut self.decision else {
                    unreachable!("blast pruning carries a retained index")
                };
                self.thresholds.resize(n, f64::INFINITY);
                let theta = node_pass_subset(ctx, weigher, dirty, |_, adj| {
                    let max = adj
                        .iter()
                        .map(|(_, w)| *w)
                        .fold(f64::NEG_INFINITY, f64::max);
                    if max.is_finite() {
                        max / c
                    } else {
                        f64::INFINITY
                    }
                });
                for (&u, &t) in dirty.iter().zip(&theta) {
                    self.thresholds[u as usize] = t;
                }
                let touching = collect_edges_touching(ctx, weigher, dirty, mask);
                stats.edges_reweighed = touching.len();

                let t0 = Instant::now();
                let thresholds = &self.thresholds;
                node_flips(
                    retained,
                    dirty,
                    mask,
                    n,
                    touching
                        .iter()
                        .filter(|&&(u, v, w)| {
                            let theta = (thresholds[u as usize] + thresholds[v as usize]) / d;
                            w > 0.0 && w >= theta
                        })
                        .map(|&(u, v, _)| (u, v)),
                    &mut added,
                    &mut retracted,
                );
                stats.decision_secs = t0.elapsed().as_secs_f64();
            }
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp2) => {
                let need = self.node_centric_mode().required_listings();
                let DecisionState::Lists { counts } = &mut self.decision else {
                    unreachable!("cnp carries containment counters")
                };
                let k = cnp_budget.expect("cnp budget computed");
                self.lists.resize_with(n, Vec::new);
                let weighed = AtomicUsize::new(0);
                let fresh = node_pass_subset(ctx, weigher, dirty, |_, adj| {
                    weighed.fetch_add(adj.len(), Ordering::Relaxed);
                    cnp::top_k_neighbours(adj, k)
                });
                stats.edges_reweighed = weighed.into_inner();

                let t0 = Instant::now();
                counts.ensure_nodes(n);
                // First-touch original counts: flips are judged initial vs
                // final so a pair bumped from both endpoints in one commit
                // cannot oscillate into a spurious add+retract.
                let mut touched: BTreeMap<(u32, u32), u8> = BTreeMap::new();
                let mut old_sorted: Vec<u32> = Vec::new();
                let mut new_sorted: Vec<u32> = Vec::new();
                for (&u, new_list) in dirty.iter().zip(fresh) {
                    let old_list = std::mem::replace(&mut self.lists[u as usize], new_list);
                    old_sorted.clear();
                    old_sorted.extend_from_slice(&old_list);
                    old_sorted.sort_unstable();
                    new_sorted.clear();
                    new_sorted.extend_from_slice(&self.lists[u as usize]);
                    new_sorted.sort_unstable();
                    diff_sorted_ids(&old_sorted, &new_sorted, |v, delta| {
                        let pair = (u.min(v), u.max(v));
                        let before = counts.bump(u, v, delta);
                        touched.entry(pair).or_insert(before);
                    });
                }
                for (&(a, b), &orig) in &touched {
                    let was = orig >= need;
                    let now = counts.count(a, b) >= need;
                    if was != now {
                        if now {
                            added.push((a, b));
                        } else {
                            retracted.push((a, b));
                        }
                    }
                }
                stats.decision_secs = t0.elapsed().as_secs_f64();
            }
        }
        (added, retracted)
    }
}

/// The `(u, v)` join key of a weighted edge.
#[inline]
fn edge_pair(e: &(u32, u32, f64)) -> (u32, u32) {
    (e.0, e.1)
}

/// One step of a [`merge_join`]: the key was on both sides, departed
/// (left only), or arrived (right only).
enum Joined<'a, L, R> {
    Both(&'a L, &'a R),
    Left(&'a L),
    Right(&'a R),
}

/// Merge-joins two key-sorted sequences through a single event handler —
/// the one sorted-merge loop behind every flip diff in this module.
fn merge_join<L, R, K: Ord>(
    left: &[L],
    right: &[R],
    key_l: impl Fn(&L) -> K,
    key_r: impl Fn(&R) -> K,
    mut f: impl FnMut(Joined<'_, L, R>),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        match key_l(&left[i]).cmp(&key_r(&right[j])) {
            std::cmp::Ordering::Equal => {
                f(Joined::Both(&left[i], &right[j]));
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                f(Joined::Left(&left[i]));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                f(Joined::Right(&right[j]));
                j += 1;
            }
        }
    }
    for l in &left[i..] {
        f(Joined::Left(l));
    }
    for r in &right[j..] {
        f(Joined::Right(r));
    }
}

/// Merge-walks the sorted old and fresh dirty-incident edge lists, deciding
/// each edge against its era's frontier and emitting the flips (sorted,
/// since both inputs are).
fn edge_flips(
    old: &[(u32, u32, f64)],
    fresh: &[(u32, u32, f64)],
    f_old: Frontier,
    f_new: Frontier,
    added: &mut Vec<(u32, u32)>,
    retracted: &mut Vec<(u32, u32)>,
) {
    merge_join(old, fresh, edge_pair, edge_pair, |step| match step {
        Joined::Both(&(u, v, ow), &(_, _, nw)) => {
            let was = retained_under(f_old, EdgeKey::new(u, v, ow));
            let now = retained_under(f_new, EdgeKey::new(u, v, nw));
            if was != now {
                if now {
                    added.push((u, v));
                } else {
                    retracted.push((u, v));
                }
            }
        }
        // Edge vanished.
        Joined::Left(&(u, v, w)) => {
            if retained_under(f_old, EdgeKey::new(u, v, w)) {
                retracted.push((u, v));
            }
        }
        // Edge appeared.
        Joined::Right(&(u, v, w)) => {
            if retained_under(f_new, EdgeKey::new(u, v, w)) {
                added.push((u, v));
            }
        }
    });
}

/// Node-centric flip emission: diffs the retained pairs incident to the
/// dirty nodes (read off the [`RetainedIndex`] rows — clean survivors are
/// never visited) against the freshly decided pairs, applies the flips to
/// the index and pushes them (sorted) onto `added` / `retracted`.
fn node_flips(
    retained: &mut RetainedIndex,
    dirty: &[u32],
    mask: &EpochMask,
    n: usize,
    fresh: impl Iterator<Item = (u32, u32)>,
    added: &mut Vec<(u32, u32)>,
    retracted: &mut Vec<(u32, u32)>,
) {
    retained.ensure_nodes(n);
    let mut old: Vec<(u32, u32)> = Vec::new();
    for &u in dirty {
        for &v in retained.neighbours(u) {
            // Emit once: from the smaller endpoint when both are dirty,
            // from the dirty endpoint otherwise.
            if u < v || !mask.contains(v) {
                old.push((u.min(v), u.max(v)));
            }
        }
    }
    old.sort_unstable();
    let fresh: Vec<(u32, u32)> = fresh.collect();
    debug_assert!(fresh.windows(2).all(|w| w[0] < w[1]));
    merge_join(
        &old,
        &fresh,
        |&p| p,
        |&p| p,
        |step| match step {
            Joined::Both(..) => {}
            Joined::Left(&p) => retracted.push(p),
            Joined::Right(&p) => added.push(p),
        },
    );
    for &(a, b) in retracted.iter() {
        let removed = retained.remove(a, b);
        debug_assert!(removed);
    }
    for &(a, b) in added.iter() {
        let inserted = retained.insert(a, b);
        debug_assert!(inserted);
    }
}

/// Diffs two sorted id lists, calling `f(id, -1)` for departures and
/// `f(id, +1)` for arrivals.
fn diff_sorted_ids(old: &[u32], new: &[u32], mut f: impl FnMut(u32, i8)) {
    merge_join(
        old,
        new,
        |&v| v,
        |&v| v,
        |step| match step {
            Joined::Both(..) => {}
            Joined::Left(&v) => f(v, -1),
            Joined::Right(&v) => f(v, 1),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_flips_cover_all_transitions() {
        // Frontier = everything with w ≥ 2 retained, in both eras.
        let f = Some(EdgeKey::mean_bound(2.0));
        let old = vec![(0, 1, 3.0), (0, 2, 1.0), (1, 2, 5.0), (2, 3, 2.0)];
        // (0,1) drops below; (0,2) rises above; (1,2) vanishes; (2,4) appears
        // retained; (2,3) keeps its weight.
        let fresh = vec![(0, 1, 1.0), (0, 2, 4.0), (2, 3, 2.0), (2, 4, 9.0)];
        let (mut added, mut retracted) = (Vec::new(), Vec::new());
        edge_flips(&old, &fresh, f, f, &mut added, &mut retracted);
        assert_eq!(added, vec![(0, 2), (2, 4)]);
        assert_eq!(retracted, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn edge_flips_track_frontier_movement() {
        // Same edge, same weight — retention flips because Θ moved.
        let old = vec![(0, 1, 3.0)];
        let fresh = vec![(0, 1, 3.0)];
        let (mut added, mut retracted) = (Vec::new(), Vec::new());
        edge_flips(
            &old,
            &fresh,
            Some(EdgeKey::mean_bound(2.0)),
            Some(EdgeKey::mean_bound(4.0)),
            &mut added,
            &mut retracted,
        );
        assert!(added.is_empty());
        assert_eq!(retracted, vec![(0, 1)]);
    }

    #[test]
    fn node_flips_diff_only_dirty_rows() {
        let mut retained = RetainedIndex::new();
        retained.ensure_nodes(5);
        retained.insert(0, 1); // clean–clean: must survive untouched
        retained.insert(1, 2);
        retained.insert(2, 3);
        let mut mask = EpochMask::new();
        mask.begin(5);
        mask.mark(2);
        let (mut added, mut retracted) = (Vec::new(), Vec::new());
        // Node 2 freshly retains (2,3) and (2,4); (1,2) is gone.
        node_flips(
            &mut retained,
            &[2],
            &mask,
            5,
            [(2, 3), (2, 4)].into_iter(),
            &mut added,
            &mut retracted,
        );
        assert_eq!(added, vec![(2, 4)]);
        assert_eq!(retracted, vec![(1, 2)]);
        assert_eq!(retained.len(), 3);
        assert!(retained.contains(0, 1), "clean survivor untouched");
    }

    #[test]
    fn sorted_id_diff_reports_both_directions() {
        let mut events = Vec::new();
        diff_sorted_ids(&[1, 3, 5], &[2, 3, 6], |v, d| events.push((v, d)));
        assert_eq!(events, vec![(1, -1), (2, 1), (5, -1), (6, 1)]);
    }
}
