//! Dirty-neighbourhood meta-blocking repair, organised as a **three-tier
//! repair ladder**.
//!
//! After a micro-batch, most of the blocking graph is untouched: an edge's
//! accumulator changes only through a block that contains *both* endpoints,
//! and such blocks make both endpoints graph-dirty. The repair therefore
//! recomputes per-node pruning artefacts (thresholds, top-k lists) and edge
//! weights **only** for the dirty nodes on the dense scratch engine — and
//! takes the pruning *decisions* incrementally too. A commit lands on one
//! of three tiers ([`RepairTier`]), chosen by what actually moved:
//!
//! 1. **Dirty** — no global statistic any weight reads moved: the classic
//!    dirty-neighbourhood pass. No stage iterates all edges, all nodes, or
//!    all retained pairs.
//! 2. **Reweigh** — a *global scalar* drifted (|B| for χ²/ECBS; degrees /
//!    |E_G| for EJS — any edge birth or death; the per-node top-k budget
//!    for CNP) but nothing structural
//!    happened outside the dirty neighbourhood. Every weight is a pure function of its cached
//!    per-edge accumulator plus O(1) snapshot statistics (the
//!    factored-weight contract of [`EdgeWeigher`]), so the clean edges are
//!    **re-derived from the cache** ([`EdgeAdjacency::reweigh_clean`]) —
//!    no block traversal, no quadratic re-accumulation — and only the
//!    bit-changed keys are pushed through the ordered-index/retained-index
//!    /containment-counter flip machinery. EJS never forces a full pass
//!    any more: node degrees are a delta-maintained field of
//!    [`GraphSnapshot`], patched from this module's edge-existence diffs
//!    (exact integer removal) before any weight is computed. Neither does
//!    CNP: a budget move re-derives every top-k list from the cached
//!    adjacency rows and adjusts the containment counters through the
//!    ordinary list-diff machinery — bounded counter surgery, no block
//!    traversal.
//! 3. **Full** — genuinely structural invalidation only: the first pass
//!    (nothing cached yet) or an explicit
//!    [`IncrementalMetaBlocker::force_full_next`].
//!    Runs the **identical flip-emitting code path** with every node
//!    marked.
//!
//! The decision stage runs on the structures of [`crate::decision`]:
//!
//! * **WEP / CEP** — the live edge list sits in an
//!   [`crate::decision::OrderedWeightIndex`] (order-statistic treap keyed
//!   by `(weight rank bits, u, v)` with a running exact Σw). Re-weighted
//!   edges are re-keyed individually; the new threshold (mean via
//!   [`Wep::mean_from_sum`]) or cutoff (rank-K order statistic) becomes a
//!   retention [`Frontier`], and the clean edges whose retention flips are
//!   exactly the keys between the old and new frontier — enumerated in
//!   O(log |E| + flips) on the dirty tier (the reweigh tier decides its
//!   swept edges explicitly instead).
//! * **WNP / BLAST** — per-node thresholds; the survivors live in a
//!   [`blast_graph::retained::RetainedIndex`], so the old side of the flip
//!   diff is read off the recomputed rows alone.
//! * **CNP** — per-node top-k lists; the global union is maintained as a
//!   [`crate::decision::ContainmentIndex`] (per-pair 0/1/2 listing
//!   counters) updated only from recomputed nodes' list *diffs*; retention
//!   flips are counter threshold crossings.
//!
//! The [`PairDelta`] is emitted directly from the flips — there is no
//! full-set diff — and the flat [`RetainedPairs`] view is materialised
//! lazily on read, never on the commit path. The result remains
//! bit-identical to a from-scratch batch run on the final collection:
//!
//! * weights of edges between two clean nodes are unchanged bitwise on the
//!   dirty tier (same accumulator, same per-node statistics, same
//!   summation order), and re-derived through the *same* `weight()` method
//!   from bit-identical inputs on the reweigh tier;
//! * recomputed weights use the exact accumulation path of the batch pass;
//! * WEP's Θ is a function of the edge-weight *multiset* only (the exact
//!   accumulator of [`blast_graph::exact_sum::ExactSum`], shared with the
//!   batch pass), so the delta-maintained sum reproduces it bitwise;
//! * EJS degrees and |E_G| are integers maintained by exact ±1 deltas, so
//!   they equal a from-scratch [`GraphSnapshot::ensure_degrees`] pass
//!   bit-for-bit (pinned by `tests/degree_maintenance.rs`).
//!
//! Dirtiness propagation is scheme-aware via
//! [`EdgeWeigher::global_deps`]: schemes reading per-node block counts
//! (JS, χ²) additionally dirty the co-members of every node whose cleaned
//! block list changed, because all of that node's incident edge weights
//! moved even where the accumulators did not.

use crate::decision::{
    retained_under, ContainmentIndex, EdgeAdjacency, EdgeKey, FreshEdge, Frontier,
    OrderedWeightIndex,
};
use crate::shard::{ShardPlan, ShardStats};
use blast_core::pruning::BlastPruning;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::parallel::parallel_work_steal;
use blast_graph::context::{EdgeAccum, GraphSnapshot};
use blast_graph::meta::PruningAlgorithm;
use blast_graph::pruning::common::{collect_accums_touching, node_pass_subset, EpochMask};
use blast_graph::pruning::{cnp, Cep, Cnp, NodeCentricMode, Wep, Wnp};
use blast_graph::retained::{RetainedIndex, RetainedPairs};
use blast_graph::weights::EdgeWeigher;
use blast_graph::{ColdStats, SpillBackend};
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// The pruning variant an incremental pipeline maintains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IncrementalPruning {
    /// One of the six traditional variants (wep, cep, wnp₁/₂, cnp₁/₂).
    Traditional(PruningAlgorithm),
    /// BLAST's pruning (θᵢ = Mᵢ/c, θᵢⱼ = (θᵢ+θⱼ)/d).
    Blast {
        /// Local threshold divisor.
        c: f64,
        /// Pair threshold divisor.
        d: f64,
    },
}

impl IncrementalPruning {
    /// BLAST pruning with the paper's constants (c = d = 2).
    pub fn blast() -> Self {
        IncrementalPruning::Blast { c: 2.0, d: 2.0 }
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            IncrementalPruning::Traditional(a) => a.label().to_string(),
            IncrementalPruning::Blast { .. } => "blast".to_string(),
        }
    }

    /// The batch counterpart this variant must stay bit-identical to.
    pub fn batch_prune(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        match self {
            IncrementalPruning::Traditional(a) => a.prune(ctx, weigher),
            IncrementalPruning::Blast { c, d } => {
                BlastPruning::with_constants(*c, *d).prune(ctx, weigher)
            }
        }
    }
}

/// The candidate-pair delta one micro-batch produced.
#[derive(Debug, Clone, Default)]
pub struct PairDelta {
    /// Comparisons entering the candidate set (sorted, smaller id first).
    pub added: Vec<(ProfileId, ProfileId)>,
    /// Comparisons leaving the candidate set (sorted, smaller id first).
    pub retracted: Vec<(ProfileId, ProfileId)>,
}

impl PairDelta {
    /// Whether the candidate set did not move.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.retracted.is_empty()
    }
}

/// Which rung of the repair ladder a commit landed on (see module docs):
/// what promotes a commit from tier 1 to 2 is a *global-scalar* drift
/// (|B|; degrees/|E_G|; the CNP budget); from 2 to 3 a *structural*
/// invalidation (first pass, forced degradation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairTier {
    /// Tier 1 — dirty-neighbourhood repair only.
    #[default]
    Dirty,
    /// Tier 2 — dirty neighbourhood plus a cache-driven reweigh of every
    /// clean edge (no block traversal).
    Reweigh,
    /// Tier 3 — the degraded-full pass: every node marked, everything
    /// re-accumulated from the blocks.
    Full,
}

impl RepairTier {
    /// Stable label for reports (`blast stream --stats`, the bench JSON).
    pub fn label(&self) -> &'static str {
        match self {
            RepairTier::Dirty => "dirty",
            RepairTier::Reweigh => "reweigh",
            RepairTier::Full => "full",
        }
    }

    /// Zero-based rung index (dirty = 0, reweigh = 1, full = 2) — the
    /// per-tier counter slot used by the CLI and bench reports.
    pub fn index(&self) -> usize {
        match self {
            RepairTier::Dirty => 0,
            RepairTier::Reweigh => 1,
            RepairTier::Full => 2,
        }
    }
}

/// Diagnostics of one repair pass (surfaced per commit by
/// `blast stream --stats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairStats {
    /// Nodes whose neighbourhood was recomputed.
    pub dirty_nodes: usize,
    /// CSR rows the snapshot patched this commit (filled by the pipeline
    /// from [`blast_graph::context::ApplyStats`]).
    pub patched_rows: usize,
    /// Block slots the snapshot patched this commit.
    pub patched_slots: usize,
    /// Edge weights re-accumulated from the blocks this commit (the
    /// dirty-incident edges the artefact stage re-materialised).
    pub edges_reweighed: usize,
    /// Clean edges whose weight was re-derived from the cached
    /// accumulators by the reweigh tier (zero on tiers 1 and 3).
    pub edges_swept: usize,
    /// Swept clean edges whose weight bits actually moved (re-keyed
    /// through the decision indexes).
    pub edges_rekeyed: usize,
    /// Candidate pairs whose retention flipped (|added| + |retracted|).
    pub retention_flips: usize,
    /// Clean edges whose retention flipped purely because the global
    /// threshold/cutoff frontier moved (WEP mean drift, CEP budget or
    /// rank shift) — enumerated from the ordered weight index on the
    /// dirty tier, decided explicitly on the reweigh tier; never by
    /// re-scanning the edge list.
    pub threshold_crossers: usize,
    /// Wall-clock of the reweigh-machinery phase: degree-delta
    /// maintenance (any tier, degree-reading weighers only) plus the
    /// clean-edge cache sweep (reweigh tier only) — the `reweigh` phase
    /// column. Effectively zero for weighers with no global scalars.
    pub reweigh_secs: f64,
    /// Wall-clock of the decision stage alone (frontier maintenance, flip
    /// emission, retained-set surgery) — the `decision` phase column.
    pub decision_secs: f64,
    /// The repair-ladder tier this commit landed on.
    pub tier: RepairTier,
    /// Shard count of the plan this commit ran under (1 = canonical
    /// single-shard engine).
    pub shards: usize,
    /// Edges this commit processed whose endpoints live in different
    /// shards — the merge-frontier pairs (always 0 under one shard).
    pub frontier_pairs: usize,
    /// Owner-shard load imbalance of this commit's edge work, permille of
    /// the mean shard load (1000 = perfectly balanced; see
    /// [`crate::shard::ShardStats::imbalance_permille`]).
    pub shard_imbalance_permille: u64,
}

impl RepairStats {
    /// Whether the pass degraded to the full tier.
    pub fn is_full(&self) -> bool {
        self.tier == RepairTier::Full
    }
}

/// What the cleaning stage reports into the repair.
#[derive(Debug, Default)]
pub struct DirtyScope {
    /// Graph-dirty nodes (cleaned co-occurrence changed). Sorted.
    pub nodes: Vec<u32>,
    /// Nodes whose cleaned block list (|B_u|) changed. Sorted.
    pub lists_changed: Vec<u32>,
    /// Whether the cleaned |B| moved.
    pub total_blocks_changed: bool,
}

/// WEP/CEP decision state: ordered weight index + retention frontier.
/// Boxed in [`DecisionState`] — the inline exact accumulator makes it much
/// larger than the other variants.
#[derive(Debug)]
struct EdgeState {
    index: OrderedWeightIndex,
    frontier: Frontier,
}

/// Variant-specific decision-stage state (see module docs).
#[derive(Debug)]
enum DecisionState {
    /// WEP/CEP (see [`EdgeState`]).
    Edge(Box<EdgeState>),
    /// WNP/BLAST: indexed survivors.
    Node { retained: RetainedIndex },
    /// CNP: per-pair containment counters.
    Lists { counts: ContainmentIndex },
}

/// The incremental meta-blocker: cached per-node artefacts + delta-run
/// decision state.
#[derive(Debug)]
pub struct IncrementalMetaBlocker {
    pruning: IncrementalPruning,
    /// Per-node thresholds (WNP: mean, BLAST: max/c). Empty otherwise.
    thresholds: Vec<f64>,
    /// Per-node top-k lists (CNP). Empty otherwise.
    lists: Vec<Vec<u32>>,
    decision: DecisionState,
    /// The live-edge adjacency with cached accumulators: always present
    /// for WEP/CEP (old-side flip enumeration), created on the first pass
    /// for CNP (whose top-k lists re-derive from it on a budget move) and
    /// for every other variant whose weigher can drift a global scalar
    /// (the reweigh tier's cache and the degree maintainer's edge diff).
    adj: Option<EdgeAdjacency>,
    /// |retained|, maintained from the flips (no full-set scan).
    retained_len: usize,
    /// The flat sorted view, materialised lazily on read.
    cache: OnceCell<RetainedPairs>,
    /// Reusable epoch-stamped dirty mask (no per-commit `vec![false; n]`).
    mask: EpochMask,
    /// CNP's default k of the previous pass (a move promotes the commit
    /// to the reweigh tier: every top-k list re-derives from the cache).
    prev_cnp_budget: Option<usize>,
    /// One-shot forced degradation (testing/operational escape hatch).
    force_full: bool,
    /// The shard partitioning the commit path runs under (single-shard by
    /// default; any plan is bit-identical — see [`crate::shard`]).
    plan: ShardPlan,
    initialised: bool,
}

impl IncrementalMetaBlocker {
    /// A blocker maintaining the given pruning variant.
    pub fn new(pruning: IncrementalPruning) -> Self {
        let decision = match pruning {
            IncrementalPruning::Traditional(PruningAlgorithm::Wep)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cep) => {
                DecisionState::Edge(Box::new(EdgeState {
                    index: OrderedWeightIndex::new(),
                    frontier: None,
                }))
            }
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp2) => DecisionState::Lists {
                counts: ContainmentIndex::new(),
            },
            _ => DecisionState::Node {
                retained: RetainedIndex::new(),
            },
        };
        let edge_variant = matches!(decision, DecisionState::Edge(_));
        Self {
            pruning,
            thresholds: Vec::new(),
            lists: Vec::new(),
            decision,
            adj: edge_variant.then(EdgeAdjacency::new),
            retained_len: 0,
            cache: OnceCell::new(),
            mask: EpochMask::new(),
            prev_cnp_budget: None,
            force_full: false,
            plan: ShardPlan::single(),
            initialised: false,
        }
    }

    /// The pruning variant.
    pub fn pruning(&self) -> IncrementalPruning {
        self.pruning
    }

    /// Number of retained comparisons — O(1), maintained from the flips.
    pub fn retained_len(&self) -> usize {
        self.retained_len
    }

    /// Partitions the commit path over `shards` owner shards (round-robin
    /// node ownership; see [`crate::shard`]). Any value — including
    /// mid-stream changes — keeps every commit outcome bit-identical to
    /// the single-shard engine; the knob only moves where the work runs
    /// and what the shard instruments report.
    pub fn set_shards(&mut self, shards: usize) {
        self.plan = ShardPlan::new(shards);
    }

    /// The shard plan the commit path currently runs under.
    pub fn shard_plan(&self) -> ShardPlan {
        self.plan
    }

    /// Forces the next [`IncrementalMetaBlocker::refresh`] onto the
    /// degraded-full tier regardless of what moved — the escape hatch that
    /// keeps the rarely-exercised tier-3 path testable (and recoverable in
    /// production, should cached state ever be suspected).
    pub fn force_full_next(&mut self) {
        self.force_full = true;
    }

    /// The current candidate set as a flat sorted list, materialised
    /// lazily from the decision state (cached until the next commit).
    pub fn retained(&self) -> &RetainedPairs {
        self.cache.get_or_init(|| match &self.decision {
            DecisionState::Edge(state) => state.index.prefix_pairs(state.frontier),
            DecisionState::Node { retained } => retained.to_pairs(),
            DecisionState::Lists { counts } => {
                counts.to_pairs(self.node_centric_mode().required_listings())
            }
        })
    }

    /// Number of live edges held by the decision state: the adjacency's
    /// count when edge caching is on, the ordered index's otherwise.
    pub fn live_edges(&self) -> usize {
        match (&self.adj, &self.decision) {
            (Some(adj), _) => adj.live_edges(),
            (None, DecisionState::Edge(state)) => state.index.len(),
            (None, _) => 0,
        }
    }

    /// Number of packed accumulator entries cached in the adjacency
    /// (2 per undirected live edge when caching is on).
    pub fn cached_accumulators(&self) -> usize {
        self.adj
            .as_ref()
            .map_or(0, EdgeAdjacency::cached_accumulators)
    }

    /// Estimated resident heap footprint of the blocker in bytes: the
    /// edge-accumulator adjacency, the variant's decision structure, the
    /// per-node artefacts and the lazily cached flat retained view.
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let decision = match &self.decision {
            DecisionState::Edge(state) => state.index.resident_bytes(),
            DecisionState::Node { retained } => retained.resident_bytes(),
            DecisionState::Lists { counts } => counts.resident_bytes(),
        };
        self.adj.as_ref().map_or(0, EdgeAdjacency::resident_bytes)
            + decision
            + self.thresholds.capacity() * size_of::<f64>()
            + self
                .lists
                .iter()
                .map(|l| l.capacity() * size_of::<u32>())
                .sum::<usize>()
            + self.lists.len() * size_of::<Vec<u32>>()
            + self
                .cache
                .get()
                .map_or(0, |c| c.pairs().len() * size_of::<(u32, u32)>())
    }

    /// Whether this variant maintains the edge-accumulator cache — the
    /// structure the blocker's cold tier lives on.
    pub fn has_edge_cache(&self) -> bool {
        self.adj.is_some()
    }

    /// Whether a memory budget is active on the edge cache.
    pub fn residency_enabled(&self) -> bool {
        self.adj
            .as_ref()
            .is_some_and(EdgeAdjacency::residency_enabled)
    }

    /// Turns on cold-tier residency for the edge cache (no-op for
    /// variants that never build one; idempotent otherwise).
    pub fn enable_residency(&mut self, spill: Option<Box<dyn SpillBackend>>) {
        if let Some(adj) = &mut self.adj {
            adj.enable_residency(spill);
        }
    }

    /// Cold-tier telemetry of the edge cache (zeros when off).
    pub fn cold_stats(&self) -> ColdStats {
        self.adj
            .as_ref()
            .map(EdgeAdjacency::cold_stats)
            .unwrap_or_default()
    }

    /// Hot edge-cache bytes the eviction policy could demote.
    pub fn evictable_hot_bytes(&self) -> usize {
        self.adj
            .as_ref()
            .map_or(0, EdgeAdjacency::evictable_hot_bytes)
    }

    /// One eviction round over the edge-cache rows.
    pub fn enforce_residency(&mut self, idle_commits: u32, target_hot_bytes: usize) {
        if let Some(adj) = &mut self.adj {
            adj.enforce_residency(idle_commits, target_hot_bytes);
        }
    }

    fn node_centric_mode(&self) -> NodeCentricMode {
        match self.pruning {
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp1) => NodeCentricMode::Redefined,
            _ => NodeCentricMode::Reciprocal,
        }
    }

    /// Repairs the candidate set after a micro-batch. `ctx` is the graph
    /// context over the *cleaned* snapshot (mutable: the repair patches
    /// the delta-maintained degrees before weighting); `scope` is the
    /// cleaning stage's dirty report.
    pub fn refresh(
        &mut self,
        ctx: &mut GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        scope: &DirtyScope,
    ) -> (PairDelta, RepairStats) {
        self.cache.take();
        let n = ctx.total_profiles() as usize;
        let deps = weigher.global_deps();
        let needs_degrees = weigher.requires_degrees();
        let edge_variant = matches!(self.decision, DecisionState::Edge(_));
        let lists_variant = matches!(self.decision, DecisionState::Lists { .. });
        // The edge cache is maintained whenever a global scalar the
        // weigher reads can drift (the reweigh tier's input) — always for
        // WEP/CEP, whose decision state needs the old-side rows, and
        // always for CNP, whose budget is itself a drifting global (every
        // top-k list is a pure function of the cached adjacency plus k).
        let cache_edges = edge_variant || lists_variant || needs_degrees || deps.total_blocks;

        let cnp_budget = match self.pruning {
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp2) => {
                Some(Cnp::redefined().budget(ctx))
            }
            _ => None,
        };
        // Tier 3 is reserved for *structural* invalidation: nothing cached
        // can be trusted (first pass, forced degradation).
        let structural = !self.initialised || std::mem::take(&mut self.force_full);
        // A CNP budget move re-shapes every top-k list — but each list is
        // re-derived from the cached adjacency rows without touching a
        // block, so it promotes to the reweigh tier, not to a degraded
        // full pass.
        let budget_moved = !structural && cnp_budget != self.prev_cnp_budget;
        self.prev_cnp_budget = cnp_budget;
        self.initialised = true;

        // The dirty set, under the reusable epoch mask: collected from the
        // cleaning scope (plus co-members of |B_u|-changed nodes for
        // schemes reading per-node block counts) — never by scanning all n
        // nodes, except on the degraded-full path where dirty *is* all.
        self.mask.begin(n);
        let dirty: Vec<u32> = if structural {
            // The structural pass reads every block: rehydrate the whole
            // snapshot up front (re-demotion is the eviction policy's job).
            ctx.ensure_all_slots_resident();
            self.mask.mark_all();
            (0..n as u32).collect()
        } else {
            let mut d = Vec::with_capacity(scope.nodes.len());
            for &u in &scope.nodes {
                if self.mask.mark(u) {
                    d.push(u);
                }
            }
            if deps.node_blocks {
                // The co-member expansion below walks these nodes' block
                // slots — rehydrate them first.
                ctx.ensure_node_slots_resident(scope.lists_changed.iter());
                let direct = d.len();
                for &u in &scope.lists_changed {
                    for &slot in ctx.index().blocks_of(u) {
                        for p in ctx.slot_members(slot) {
                            if self.mask.mark(p.0) {
                                d.push(p.0);
                            }
                        }
                    }
                }
                if d.len() > direct {
                    d.sort_unstable();
                }
            }
            d
        };

        // ---- artefact stage: re-accumulate the dirty-incident edges ----
        // Prefetch the dirty neighbourhood's snapshot slots before any
        // pass runs: the accumulation and node passes read slots under
        // `&ctx` from parallel workers, which must never fault a cold
        // slot in.
        if !structural {
            ctx.ensure_node_slots_resident(dirty.iter());
        }
        let fresh_accs = collect_accums_touching(ctx, &dirty, &self.mask);

        // The old dirty-incident edges (old weights), read off the cached
        // adjacency rows: the old side of every flip diff, the treap
        // un-keying source, and the degree maintainer's edge-existence
        // baseline. Collected before any cache mutation.
        if cache_edges && self.adj.is_none() {
            // First pass of a cached non-edge variant: create the cache;
            // the structural tier below bulk-loads it.
            debug_assert!(structural, "the edge cache starts on the structural pass");
            self.adj = Some(EdgeAdjacency::new());
        }
        let old: Vec<(u32, u32, f64)> = match &mut self.adj {
            // On a structural pass the cache is bulk-reloaded and the
            // non-edge variants' flip diffs read the retained state, so
            // the old side is only worth materialising when something
            // consumes it: the edge variants' flips, the degree
            // maintainer, or the non-full adjacency patch.
            Some(adj) if edge_variant || needs_degrees || !structural => {
                adj.ensure_nodes(n);
                // The dirty rows are about to be read and then patched:
                // promote them once instead of transient-decoding twice.
                adj.ensure_rows(&dirty);
                adj.collect_touching(&dirty, &self.mask)
            }
            Some(adj) => {
                adj.ensure_nodes(n);
                Vec::new()
            }
            None => Vec::new(),
        };

        // ---- degree maintenance (EJS): the edge-existence diff patches
        // the snapshot's delta-maintained degrees *before* any weight is
        // computed, so EJS never needs a full degree pass again. ----
        let t_degrees = Instant::now();
        let mut degrees_moved = false;
        if needs_degrees {
            if ctx.degrees_maintained() {
                degrees_moved = patch_degrees(ctx, &old, &fresh_accs);
            } else {
                debug_assert!(
                    structural,
                    "degree maintenance starts on the structural pass"
                );
                ctx.begin_degree_maintenance();
            }
        }
        let degree_secs = t_degrees.elapsed().as_secs_f64();

        // ---- weights of the fresh edges (globals now current) ----
        // Work-stealing parallel like the accumulation itself: on the full
        // tier this is every edge, and per-edge weights are independent, so
        // chunk-ordered merging keeps the output bit-identical.
        let fresh: Vec<FreshEdge> = {
            let len = fresh_accs.len();
            let chunks = parallel_work_steal(
                len,
                ctx.threads(),
                (len / 128).clamp(32, 4096),
                || (),
                |_, range| {
                    fresh_accs[range]
                        .iter()
                        .map(|&(u, v, acc)| FreshEdge {
                            u,
                            v,
                            w: weigher.weight(ctx, u, v, &acc),
                            acc,
                        })
                        .collect::<Vec<_>>()
                },
            );
            let mut out = Vec::with_capacity(len);
            for c in chunks {
                out.extend(c);
            }
            out
        };

        // ---- tier selection ----
        // Any degree event promotes a degree-reading weigher: a dirty
        // node's degree change moves the weight of *every* edge it has,
        // including edges into clean nodes, and those clean nodes'
        // node-centric artefacts (thresholds, top-k lists) average over
        // that weight — so the artefacts of nodes outside the dirty set go
        // stale even when |E_G| itself is unchanged (balanced birth +
        // death in one commit).
        let drifted = (deps.total_blocks && scope.total_blocks_changed)
            || (needs_degrees && degrees_moved)
            || budget_moved;
        let tier = if structural {
            RepairTier::Full
        } else if drifted {
            RepairTier::Reweigh
        } else {
            RepairTier::Dirty
        };

        let mut stats = RepairStats {
            dirty_nodes: dirty.len(),
            edges_reweighed: fresh.len(),
            tier,
            shards: self.plan.shards(),
            ..RepairStats::default()
        };
        // Shard accounting of the fresh (dirty-incident) edge work — every
        // tier does this much; the reweigh tier adds its sweep below.
        let plan = self.plan;
        let mut shard_stats = ShardStats::new(&plan);
        for e in &fresh {
            shard_stats.record_edge(&plan, e.u, e.v);
        }

        // ---- reweigh tier: re-derive every clean edge from its cached
        // accumulator (no block traversal), then hand the decision stage
        // the full recompute set. ----
        let mut swept: Vec<(u32, u32, f64, f64)> = Vec::new();
        let recompute: Vec<u32>;
        let decide: Vec<(u32, u32, f64)>;
        match tier {
            RepairTier::Reweigh => {
                let t_sweep = Instant::now();
                let adj = self.adj.as_mut().expect("reweigh tier runs on the cache");
                let (s, sweep_shards) =
                    adj.reweigh_clean_sharded(ctx, weigher, &self.mask, &plan, ctx.threads());
                swept = s;
                shard_stats.merge(&sweep_shards);
                stats.edges_swept = swept.len();
                stats.edges_rekeyed = swept
                    .iter()
                    .filter(|&&(_, _, ow, nw)| ow.to_bits() != nw.to_bits())
                    .count();
                // From here on the decision stage recomputes everything:
                // the mask covers all nodes and the decide list every live
                // edge at its new weight.
                self.mask.mark_all();
                recompute = (0..n as u32).collect();
                decide = merge_decide_edges(&swept, &fresh);
                stats.reweigh_secs = degree_secs + t_sweep.elapsed().as_secs_f64();
            }
            _ => {
                recompute = dirty;
                // The edge variants never read the decide list outside the
                // reweigh tier (their flips walk old/fresh directly) — skip
                // the copy there.
                decide = if edge_variant {
                    Vec::new()
                } else {
                    fresh.iter().map(|e| (e.u, e.v, e.w)).collect()
                };
                stats.reweigh_secs = degree_secs;
            }
        }

        stats.frontier_pairs = shard_stats.frontier_pairs;
        stats.shard_imbalance_permille = shard_stats.imbalance_permille();

        let (added, retracted) = self.repair(
            ctx, weigher, &recompute, &old, &fresh, &swept, &decide, cnp_budget, &mut stats,
        );
        stats.retention_flips = added.len() + retracted.len();
        self.retained_len += added.len();
        self.retained_len -= retracted.len();
        let delta = PairDelta {
            added: added
                .into_iter()
                .map(|(a, b)| (ProfileId(a), ProfileId(b)))
                .collect(),
            retracted: retracted
                .into_iter()
                .map(|(a, b)| (ProfileId(a), ProfileId(b)))
                .collect(),
        };
        (delta, stats)
    }

    /// The per-variant decision pass. `recompute` is the node set whose
    /// artefacts are recomputed (the dirty set on tier 1, every node on
    /// tiers 2–3), `decide` the corresponding fresh edge list (ascending
    /// `(u, v)`, new weights), `old`/`fresh`/`swept` the flip-diff inputs
    /// described in [`IncrementalMetaBlocker::refresh`]. Returns the
    /// (sorted) added/retracted flips; updates `stats` with the
    /// decision-stage counters and wall-clock.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn repair(
        &mut self,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        recompute: &[u32],
        old: &[(u32, u32, f64)],
        fresh: &[FreshEdge],
        swept: &[(u32, u32, f64, f64)],
        decide: &[(u32, u32, f64)],
        cnp_budget: Option<usize>,
        stats: &mut RepairStats,
    ) -> (Vec<(u32, u32)>, Vec<(u32, u32)>) {
        let n = ctx.total_profiles() as usize;
        let mask = &self.mask;
        let tier = stats.tier;
        let mut added: Vec<(u32, u32)> = Vec::new();
        let mut retracted: Vec<(u32, u32)> = Vec::new();

        // Keep the cached adjacency rows current (weights + accumulators)
        // for the non-edge variants that maintain them. The reweigh sweep
        // already refreshed the clean rows; this merge patches the dirty
        // ones — except for tier 3, which bulk-reloads. (The edge variants
        // fold the same surgery into their index merge below — one walk,
        // not two.)
        let edge_variant = matches!(self.decision, DecisionState::Edge(_));
        if let Some(adj) = &mut self.adj {
            if !edge_variant {
                if tier == RepairTier::Full {
                    adj.clear();
                    adj.load(fresh);
                } else {
                    patch_adjacency(adj, old, fresh);
                }
            }
        }

        match self.pruning {
            IncrementalPruning::Traditional(
                algorithm @ (PruningAlgorithm::Wep | PruningAlgorithm::Cep),
            ) => {
                let DecisionState::Edge(state) = &mut self.decision else {
                    unreachable!("edge-centric pruning carries edge state")
                };
                let EdgeState { index, frontier } = state.as_mut();
                let adj = self.adj.as_mut().expect("edge variant carries the cache");

                let t0 = Instant::now();
                match tier {
                    RepairTier::Full => {
                        adj.clear();
                        index.rebuild(fresh.iter().map(|e| (e.u, e.v, e.w)));
                        adj.load(fresh);
                    }
                    // A heavy drift (many keys moved — the WEP/ECBS case,
                    // where a |B| shift re-ranks essentially every edge)
                    // rebuilds the index from the decide list outright: the
                    // bulk from-sorted-array construction (one flat sort +
                    // an O(|E|) spine build) beats 2·rekeys split/merge
                    // churn well before rekeys approach |E|, and the
                    // canonical treap shape + exact Σw make the two
                    // constructions indistinguishable. The adjacency still
                    // takes the dirty merge.
                    RepairTier::Reweigh
                        if (stats.edges_rekeyed + fresh.len()) * 4 >= index.len().max(1) =>
                    {
                        index.rebuild(decide.iter().copied());
                        patch_adjacency(adj, old, fresh);
                    }
                    _ => {
                        // One merge walk patches both structures: the
                        // adjacency cache takes every dirty edge's fresh
                        // weight + accumulator; the ordered index re-keys
                        // only the edges whose weight bits actually moved —
                        // dirtiness is conservative (a new profile dirties
                        // every co-member, but most mutual weights are
                        // untouched), so the true key delta is usually far
                        // smaller than the dirty-incident set.
                        merge_join(old, fresh, edge_pair, fresh_pair, |step| match step {
                            Joined::Both(&(a, b, ow), e) => {
                                adj.set_edge(a, b, e.w, e.acc);
                                if ow.to_bits() != e.w.to_bits() {
                                    index.remove(a, b, ow);
                                    index.insert(a, b, e.w);
                                }
                            }
                            Joined::Left(&(a, b, w)) => {
                                adj.remove_edge(a, b);
                                index.remove(a, b, w);
                            }
                            Joined::Right(e) => {
                                adj.insert_edge(e.u, e.v, e.w, e.acc);
                                index.insert(e.u, e.v, e.w);
                            }
                        });
                        // The reweigh tier's swept clean edges re-key the
                        // same way — only the bit-changed ones (their
                        // adjacency rows were already updated in place by
                        // the sweep).
                        for &(u, v, ow, nw) in swept {
                            if ow.to_bits() != nw.to_bits() {
                                index.remove(u, v, ow);
                                index.insert(u, v, nw);
                            }
                        }
                    }
                }

                // The new retention frontier: WEP's mean over the running
                // exact Σw, or CEP's rank-K order statistic.
                let old_frontier = *frontier;
                let new_frontier = match algorithm {
                    PruningAlgorithm::Wep => {
                        Wep::mean_from_sum(index.sum(), index.len()).map(EdgeKey::mean_bound)
                    }
                    _ => {
                        let k = Cep::new().budget(ctx) as usize;
                        if k == 0 {
                            None
                        } else {
                            index.select(k.min(index.len()).wrapping_sub(1))
                        }
                    }
                };
                *frontier = new_frontier;

                // Dirty flips: merge-walk the old vs fresh dirty-incident
                // edges, deciding each against its era's frontier.
                edge_flips(
                    old,
                    fresh,
                    old_frontier,
                    new_frontier,
                    &mut added,
                    &mut retracted,
                );
                match tier {
                    RepairTier::Dirty => {
                        // Clean flips: exactly the keys between the two
                        // frontiers (skipped on the other tiers — every
                        // edge is decided explicitly there).
                        if old_frontier != new_frontier {
                            let lo = old_frontier.min(new_frontier);
                            if let Some(hi) = old_frontier.max(new_frontier) {
                                index.for_each_between(lo, hi, &mut |key, _| {
                                    if mask.contains(key.u) || mask.contains(key.v) {
                                        return;
                                    }
                                    let was = retained_under(old_frontier, key);
                                    let now = retained_under(new_frontier, key);
                                    if was != now {
                                        stats.threshold_crossers += 1;
                                        if now {
                                            added.push((key.u, key.v));
                                        } else {
                                            retracted.push((key.u, key.v));
                                        }
                                    }
                                });
                            }
                            added.sort_unstable();
                            retracted.sort_unstable();
                        }
                    }
                    RepairTier::Reweigh => {
                        // Swept clean edges: decided explicitly, old key
                        // against the old frontier, new key against the
                        // new one.
                        for &(u, v, ow, nw) in swept {
                            let was = retained_under(old_frontier, EdgeKey::new(u, v, ow));
                            let now = retained_under(new_frontier, EdgeKey::new(u, v, nw));
                            if was != now {
                                if ow.to_bits() == nw.to_bits() {
                                    stats.threshold_crossers += 1;
                                }
                                if now {
                                    added.push((u, v));
                                } else {
                                    retracted.push((u, v));
                                }
                            }
                        }
                        added.sort_unstable();
                        retracted.sort_unstable();
                    }
                    RepairTier::Full => {}
                }
                stats.decision_secs = t0.elapsed().as_secs_f64();
                debug_assert_eq!(
                    new_frontier.map_or(0, |f| index.prefix_len(f)),
                    self.retained_len + added.len() - retracted.len(),
                    "frontier prefix must equal the flip-maintained count"
                );
            }
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Wnp2) => {
                let mode = self.node_centric_mode();
                let DecisionState::Node { retained } = &mut self.decision else {
                    unreachable!("node-centric pruning carries a retained index")
                };
                self.thresholds.resize(n, f64::INFINITY);
                let theta = node_artefacts(
                    self.adj.as_ref(),
                    tier,
                    ctx,
                    weigher,
                    recompute,
                    |_, adj| {
                        if adj.is_empty() {
                            f64::INFINITY
                        } else {
                            adj.iter().map(|(_, w)| *w).sum::<f64>() / adj.len() as f64
                        }
                    },
                );
                for (&u, &t) in recompute.iter().zip(&theta) {
                    self.thresholds[u as usize] = t;
                }

                let t0 = Instant::now();
                let wnp = Wnp { mode };
                let thresholds = &self.thresholds;
                node_flips(
                    retained,
                    recompute,
                    mask,
                    n,
                    decide
                        .iter()
                        .filter(|&&(u, v, w)| wnp.decide(thresholds, u, v, w))
                        .map(|&(u, v, _)| (u, v)),
                    &mut added,
                    &mut retracted,
                );
                stats.decision_secs = t0.elapsed().as_secs_f64();
            }
            IncrementalPruning::Blast { c, d } => {
                let DecisionState::Node { retained } = &mut self.decision else {
                    unreachable!("blast pruning carries a retained index")
                };
                self.thresholds.resize(n, f64::INFINITY);
                let theta = node_artefacts(
                    self.adj.as_ref(),
                    tier,
                    ctx,
                    weigher,
                    recompute,
                    |_, adj| {
                        let max = adj
                            .iter()
                            .map(|(_, w)| *w)
                            .fold(f64::NEG_INFINITY, f64::max);
                        if max.is_finite() {
                            max / c
                        } else {
                            f64::INFINITY
                        }
                    },
                );
                for (&u, &t) in recompute.iter().zip(&theta) {
                    self.thresholds[u as usize] = t;
                }

                let t0 = Instant::now();
                let thresholds = &self.thresholds;
                node_flips(
                    retained,
                    recompute,
                    mask,
                    n,
                    decide
                        .iter()
                        .filter(|&&(u, v, w)| {
                            let theta = (thresholds[u as usize] + thresholds[v as usize]) / d;
                            w > 0.0 && w >= theta
                        })
                        .map(|&(u, v, _)| (u, v)),
                    &mut added,
                    &mut retracted,
                );
                stats.decision_secs = t0.elapsed().as_secs_f64();
            }
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp2) => {
                let need = self.node_centric_mode().required_listings();
                let DecisionState::Lists { counts } = &mut self.decision else {
                    unreachable!("cnp carries containment counters")
                };
                let k = cnp_budget.expect("cnp budget computed");
                self.lists.resize_with(n, Vec::new);
                let fresh_lists = node_artefacts(
                    self.adj.as_ref(),
                    tier,
                    ctx,
                    weigher,
                    recompute,
                    |_, adj| cnp::top_k_neighbours(adj, k),
                );

                let t0 = Instant::now();
                counts.ensure_nodes(n);
                // First-touch original counts: flips are judged initial vs
                // final so a pair bumped from both endpoints in one commit
                // cannot oscillate into a spurious add+retract.
                let mut touched: BTreeMap<(u32, u32), u8> = BTreeMap::new();
                let mut old_sorted: Vec<u32> = Vec::new();
                let mut new_sorted: Vec<u32> = Vec::new();
                for (&u, new_list) in recompute.iter().zip(fresh_lists) {
                    let old_list = std::mem::replace(&mut self.lists[u as usize], new_list);
                    old_sorted.clear();
                    old_sorted.extend_from_slice(&old_list);
                    old_sorted.sort_unstable();
                    new_sorted.clear();
                    new_sorted.extend_from_slice(&self.lists[u as usize]);
                    new_sorted.sort_unstable();
                    diff_sorted_ids(&old_sorted, &new_sorted, |v, delta| {
                        let pair = (u.min(v), u.max(v));
                        let before = counts.bump(u, v, delta);
                        touched.entry(pair).or_insert(before);
                    });
                }
                for (&(a, b), &orig) in &touched {
                    let was = orig >= need;
                    let now = counts.count(a, b) >= need;
                    if was != now {
                        if now {
                            added.push((a, b));
                        } else {
                            retracted.push((a, b));
                        }
                    }
                }
                stats.decision_secs = t0.elapsed().as_secs_f64();
            }
        }
        (added, retracted)
    }
}

/// The `(u, v)` join key of a weighted edge.
#[inline]
fn edge_pair(e: &(u32, u32, f64)) -> (u32, u32) {
    (e.0, e.1)
}

/// Merge-patches the cached adjacency rows from the old vs fresh
/// dirty-incident edge lists. The `Both` arm is unconditional: the
/// accumulator can move even when the weight bits tie, and a later
/// reweigh must read current local factors.
fn patch_adjacency(adj: &mut EdgeAdjacency, old: &[(u32, u32, f64)], fresh: &[FreshEdge]) {
    merge_join(old, fresh, edge_pair, fresh_pair, |step| match step {
        Joined::Both(&(a, b, _), e) => adj.set_edge(a, b, e.w, e.acc),
        Joined::Left(&(a, b, _)) => adj.remove_edge(a, b),
        Joined::Right(e) => adj.insert_edge(e.u, e.v, e.w, e.acc),
    });
}

/// The `(u, v)` join key of a fresh edge.
#[inline]
fn fresh_pair(e: &FreshEdge) -> (u32, u32) {
    (e.u, e.v)
}

/// Diffs the old edge set against the freshly accumulated one and patches
/// the snapshot's delta-maintained degrees: every edge death decrements
/// both endpoints, every birth increments them, and |E_G| follows. Returns
/// whether *any* degree event occurred — the EJS drift signal. (The
/// degree-changed nodes themselves are always dirty, but their edges reach
/// clean nodes whose node-centric artefacts average over the moved
/// weights, so even an |E_G|-preserving birth + death must promote the
/// commit to the reweigh tier.)
fn patch_degrees(
    ctx: &mut GraphSnapshot,
    old: &[(u32, u32, f64)],
    fresh: &[(u32, u32, EdgeAccum)],
) -> bool {
    let mut events: Vec<(u32, i32)> = Vec::new();
    let mut edge_delta: i64 = 0;
    merge_join(
        old,
        fresh,
        edge_pair,
        |e: &(u32, u32, EdgeAccum)| (e.0, e.1),
        |step| match step {
            Joined::Both(..) => {}
            Joined::Left(&(u, v, _)) => {
                events.push((u, -1));
                events.push((v, -1));
                edge_delta -= 1;
            }
            Joined::Right(&(u, v, _)) => {
                events.push((u, 1));
                events.push((v, 1));
                edge_delta += 1;
            }
        },
    );
    if events.is_empty() {
        return false;
    }
    // Fold the ±1 events per node before applying.
    events.sort_unstable_by_key(|&(u, _)| u);
    let mut folded: Vec<(u32, i32)> = Vec::with_capacity(events.len());
    for (u, d) in events {
        match folded.last_mut() {
            Some((lu, ld)) if *lu == u => *ld += d,
            _ => folded.push((u, d)),
        }
    }
    ctx.apply_degree_deltas(folded.into_iter().filter(|&(_, d)| d != 0), edge_delta);
    true
}

/// Merges the reweigh sweep's clean edges (at their new weights) with the
/// fresh dirty-incident edges into the full decision list, ascending
/// `(u, v)` — the two inputs are disjoint and each sorted.
fn merge_decide_edges(swept: &[(u32, u32, f64, f64)], fresh: &[FreshEdge]) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::with_capacity(swept.len() + fresh.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < swept.len() && j < fresh.len() {
        let s = &swept[i];
        let f = &fresh[j];
        if (s.0, s.1) < (f.u, f.v) {
            out.push((s.0, s.1, s.3));
            i += 1;
        } else {
            debug_assert_ne!((s.0, s.1), (f.u, f.v), "swept and fresh are disjoint");
            out.push((f.u, f.v, f.w));
            j += 1;
        }
    }
    out.extend(swept[i..].iter().map(|&(u, v, _, nw)| (u, v, nw)));
    out.extend(fresh[j..].iter().map(|e| (e.u, e.v, e.w)));
    out
}

/// Runs `per_node(node, &[(v, w)])` over the recompute set with the
/// **node-orientation** weighted adjacency — the artefact primitive of the
/// node-centric variants. On the accumulate tiers (1 and 3) it is the
/// scratch-engine pass ([`node_pass_subset`]), exactly as batch computes
/// per-node thresholds and top-k lists. On the reweigh tier the same
/// adjacency is re-derived from the cached accumulators
/// ([`EdgeAdjacency::for_each_node_weight`]): the accumulator is
/// orientation-symmetric bitwise, and the weight is re-computed from the
/// row owner's side — the batch orientation — so the artefacts stay
/// bit-identical without touching a single block.
fn node_artefacts<R: Send>(
    adj: Option<&EdgeAdjacency>,
    tier: RepairTier,
    ctx: &GraphSnapshot,
    weigher: &dyn EdgeWeigher,
    recompute: &[u32],
    per_node: impl Fn(u32, &[(u32, f64)]) -> R + Sync,
) -> Vec<R> {
    if tier == RepairTier::Reweigh {
        let adj = adj.expect("reweigh tier runs on the cache");
        // Same work-stealing shape as the scratch pass: chunk geometry
        // depends only on the length, results merge in chunk order, so
        // the output is bit-identical across thread counts.
        let len = recompute.len();
        let chunks = parallel_work_steal(
            len,
            ctx.threads(),
            (len / 128).clamp(32, 4096),
            Vec::new,
            |buf: &mut Vec<(u32, f64)>, range| {
                let mut out = Vec::with_capacity(range.len());
                for i in range {
                    let u = recompute[i];
                    buf.clear();
                    adj.for_each_node_weight(u, ctx, weigher, |v, w| buf.push((v, w)));
                    out.push(per_node(u, buf));
                }
                out
            },
        );
        let mut out = Vec::with_capacity(len);
        for c in chunks {
            out.extend(c);
        }
        out
    } else {
        node_pass_subset(ctx, weigher, recompute, per_node)
    }
}

/// One step of a [`merge_join`]: the key was on both sides, departed
/// (left only), or arrived (right only).
enum Joined<'a, L, R> {
    Both(&'a L, &'a R),
    Left(&'a L),
    Right(&'a R),
}

/// Merge-joins two key-sorted sequences through a single event handler —
/// the one sorted-merge loop behind every flip diff in this module.
fn merge_join<L, R, K: Ord>(
    left: &[L],
    right: &[R],
    key_l: impl Fn(&L) -> K,
    key_r: impl Fn(&R) -> K,
    mut f: impl FnMut(Joined<'_, L, R>),
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        match key_l(&left[i]).cmp(&key_r(&right[j])) {
            std::cmp::Ordering::Equal => {
                f(Joined::Both(&left[i], &right[j]));
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                f(Joined::Left(&left[i]));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                f(Joined::Right(&right[j]));
                j += 1;
            }
        }
    }
    for l in &left[i..] {
        f(Joined::Left(l));
    }
    for r in &right[j..] {
        f(Joined::Right(r));
    }
}

/// Merge-walks the sorted old and fresh dirty-incident edge lists, deciding
/// each edge against its era's frontier and emitting the flips (sorted,
/// since both inputs are).
fn edge_flips(
    old: &[(u32, u32, f64)],
    fresh: &[FreshEdge],
    f_old: Frontier,
    f_new: Frontier,
    added: &mut Vec<(u32, u32)>,
    retracted: &mut Vec<(u32, u32)>,
) {
    merge_join(old, fresh, edge_pair, fresh_pair, |step| match step {
        Joined::Both(&(u, v, ow), e) => {
            let was = retained_under(f_old, EdgeKey::new(u, v, ow));
            let now = retained_under(f_new, EdgeKey::new(u, v, e.w));
            if was != now {
                if now {
                    added.push((u, v));
                } else {
                    retracted.push((u, v));
                }
            }
        }
        // Edge vanished.
        Joined::Left(&(u, v, w)) => {
            if retained_under(f_old, EdgeKey::new(u, v, w)) {
                retracted.push((u, v));
            }
        }
        // Edge appeared.
        Joined::Right(e) => {
            if retained_under(f_new, EdgeKey::new(e.u, e.v, e.w)) {
                added.push((e.u, e.v));
            }
        }
    });
}

/// Node-centric flip emission: diffs the retained pairs incident to the
/// recomputed nodes (read off the [`RetainedIndex`] rows — clean survivors
/// are never visited on the dirty tier) against the freshly decided pairs,
/// applies the flips to the index and pushes them (sorted) onto `added` /
/// `retracted`.
fn node_flips(
    retained: &mut RetainedIndex,
    dirty: &[u32],
    mask: &EpochMask,
    n: usize,
    fresh: impl Iterator<Item = (u32, u32)>,
    added: &mut Vec<(u32, u32)>,
    retracted: &mut Vec<(u32, u32)>,
) {
    retained.ensure_nodes(n);
    let mut old: Vec<(u32, u32)> = Vec::new();
    for &u in dirty {
        for &v in retained.neighbours(u) {
            // Emit once: from the smaller endpoint when both are dirty,
            // from the dirty endpoint otherwise.
            if u < v || !mask.contains(v) {
                old.push((u.min(v), u.max(v)));
            }
        }
    }
    old.sort_unstable();
    let fresh: Vec<(u32, u32)> = fresh.collect();
    debug_assert!(fresh.windows(2).all(|w| w[0] < w[1]));
    merge_join(
        &old,
        &fresh,
        |&p| p,
        |&p| p,
        |step| match step {
            Joined::Both(..) => {}
            Joined::Left(&p) => retracted.push(p),
            Joined::Right(&p) => added.push(p),
        },
    );
    for &(a, b) in retracted.iter() {
        let removed = retained.remove(a, b);
        debug_assert!(removed);
    }
    for &(a, b) in added.iter() {
        let inserted = retained.insert(a, b);
        debug_assert!(inserted);
    }
}

/// Diffs two sorted id lists, calling `f(id, -1)` for departures and
/// `f(id, +1)` for arrivals.
fn diff_sorted_ids(old: &[u32], new: &[u32], mut f: impl FnMut(u32, i8)) {
    merge_join(
        old,
        new,
        |&v| v,
        |&v| v,
        |step| match step {
            Joined::Both(..) => {}
            Joined::Left(&v) => f(v, -1),
            Joined::Right(&v) => f(v, 1),
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(edges: &[(u32, u32, f64)]) -> Vec<FreshEdge> {
        edges
            .iter()
            .map(|&(u, v, w)| FreshEdge {
                u,
                v,
                w,
                acc: EdgeAccum::default(),
            })
            .collect()
    }

    #[test]
    fn edge_flips_cover_all_transitions() {
        // Frontier = everything with w ≥ 2 retained, in both eras.
        let f = Some(EdgeKey::mean_bound(2.0));
        let old = vec![(0, 1, 3.0), (0, 2, 1.0), (1, 2, 5.0), (2, 3, 2.0)];
        // (0,1) drops below; (0,2) rises above; (1,2) vanishes; (2,4) appears
        // retained; (2,3) keeps its weight.
        let new = fresh(&[(0, 1, 1.0), (0, 2, 4.0), (2, 3, 2.0), (2, 4, 9.0)]);
        let (mut added, mut retracted) = (Vec::new(), Vec::new());
        edge_flips(&old, &new, f, f, &mut added, &mut retracted);
        assert_eq!(added, vec![(0, 2), (2, 4)]);
        assert_eq!(retracted, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn edge_flips_track_frontier_movement() {
        // Same edge, same weight — retention flips because Θ moved.
        let old = vec![(0, 1, 3.0)];
        let new = fresh(&[(0, 1, 3.0)]);
        let (mut added, mut retracted) = (Vec::new(), Vec::new());
        edge_flips(
            &old,
            &new,
            Some(EdgeKey::mean_bound(2.0)),
            Some(EdgeKey::mean_bound(4.0)),
            &mut added,
            &mut retracted,
        );
        assert!(added.is_empty());
        assert_eq!(retracted, vec![(0, 1)]);
    }

    #[test]
    fn node_flips_diff_only_dirty_rows() {
        let mut retained = RetainedIndex::new();
        retained.ensure_nodes(5);
        retained.insert(0, 1); // clean–clean: must survive untouched
        retained.insert(1, 2);
        retained.insert(2, 3);
        let mut mask = EpochMask::new();
        mask.begin(5);
        mask.mark(2);
        let (mut added, mut retracted) = (Vec::new(), Vec::new());
        // Node 2 freshly retains (2,3) and (2,4); (1,2) is gone.
        node_flips(
            &mut retained,
            &[2],
            &mask,
            5,
            [(2, 3), (2, 4)].into_iter(),
            &mut added,
            &mut retracted,
        );
        assert_eq!(added, vec![(2, 4)]);
        assert_eq!(retracted, vec![(1, 2)]);
        assert_eq!(retained.len(), 3);
        assert!(retained.contains(0, 1), "clean survivor untouched");
    }

    #[test]
    fn sorted_id_diff_reports_both_directions() {
        let mut events = Vec::new();
        diff_sorted_ids(&[1, 3, 5], &[2, 3, 6], |v, d| events.push((v, d)));
        assert_eq!(events, vec![(1, -1), (2, 1), (5, -1), (6, 1)]);
    }

    #[test]
    fn merged_decide_edges_interleave_sorted() {
        let swept = vec![(0, 3, 1.0, 1.5), (2, 4, 2.0, 2.5)];
        let dirty = fresh(&[(0, 1, 9.0), (2, 3, 8.0)]);
        let merged = merge_decide_edges(&swept, &dirty);
        assert_eq!(
            merged,
            vec![(0, 1, 9.0), (0, 3, 1.5), (2, 3, 8.0), (2, 4, 2.5)],
            "new weights, ascending (u, v)"
        );
    }
}
