//! Dirty-neighbourhood meta-blocking repair.
//!
//! After a micro-batch, most of the blocking graph is untouched: an edge's
//! accumulator changes only through a block that contains *both* endpoints,
//! and such blocks make both endpoints graph-dirty. The repair therefore
//! recomputes per-node pruning artefacts (thresholds, top-k lists) and edge
//! weights **only** for the dirty nodes on the dense scratch engine, reuses
//! the cached artefacts of everyone else, and re-runs the cheap in-memory
//! decision stage globally. The result is bit-identical to a from-scratch
//! batch run on the final collection:
//!
//! * weights of edges between two clean nodes are unchanged bitwise (same
//!   accumulator, same per-node statistics, same summation order);
//! * recomputed weights use the exact accumulation path of the batch pass;
//! * whenever a *global* statistic a scheme reads moved in a way that the
//!   dirty set cannot bound — |B| for χ²/ECBS, degrees for EJS, a changed
//!   default k for CNP — the repair soundly degrades to a full recompute
//!   (`dirty = all`), which is still the identical code path.
//!
//! Dirtiness propagation is scheme-aware via
//! [`EdgeWeigher::global_deps`]: schemes reading per-node block counts
//! (JS, χ²) additionally dirty the co-members of every node whose cleaned
//! block list changed, because all of that node's incident edge weights
//! moved even where the accumulators did not.

use blast_core::pruning::BlastPruning;
use blast_datamodel::entity::ProfileId;
use blast_graph::context::GraphSnapshot;
use blast_graph::meta::PruningAlgorithm;
use blast_graph::pruning::common::{
    collect_edges_touching, collect_weighted_edges, node_pass_subset,
};
use blast_graph::pruning::{cnp, Cep, Cnp, NodeCentricMode, Wep, Wnp};
use blast_graph::retained::RetainedPairs;
use blast_graph::weights::EdgeWeigher;

/// The pruning variant an incremental pipeline maintains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IncrementalPruning {
    /// One of the six traditional variants (wep, cep, wnp₁/₂, cnp₁/₂).
    Traditional(PruningAlgorithm),
    /// BLAST's pruning (θᵢ = Mᵢ/c, θᵢⱼ = (θᵢ+θⱼ)/d).
    Blast {
        /// Local threshold divisor.
        c: f64,
        /// Pair threshold divisor.
        d: f64,
    },
}

impl IncrementalPruning {
    /// BLAST pruning with the paper's constants (c = d = 2).
    pub fn blast() -> Self {
        IncrementalPruning::Blast { c: 2.0, d: 2.0 }
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            IncrementalPruning::Traditional(a) => a.label().to_string(),
            IncrementalPruning::Blast { .. } => "blast".to_string(),
        }
    }

    /// The batch counterpart this variant must stay bit-identical to.
    pub fn batch_prune(&self, ctx: &GraphSnapshot, weigher: &dyn EdgeWeigher) -> RetainedPairs {
        match self {
            IncrementalPruning::Traditional(a) => a.prune(ctx, weigher),
            IncrementalPruning::Blast { c, d } => {
                BlastPruning::with_constants(*c, *d).prune(ctx, weigher)
            }
        }
    }
}

/// The candidate-pair delta one micro-batch produced.
#[derive(Debug, Clone, Default)]
pub struct PairDelta {
    /// Comparisons entering the candidate set (sorted, smaller id first).
    pub added: Vec<(ProfileId, ProfileId)>,
    /// Comparisons leaving the candidate set (sorted, smaller id first).
    pub retracted: Vec<(ProfileId, ProfileId)>,
}

impl PairDelta {
    /// Whether the candidate set did not move.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.retracted.is_empty()
    }
}

/// Diagnostics of one repair pass (surfaced per commit by
/// `blast stream --stats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairStats {
    /// Nodes whose neighbourhood was recomputed.
    pub dirty_nodes: usize,
    /// CSR rows the snapshot patched this commit (filled by the pipeline
    /// from [`blast_graph::context::ApplyStats`]).
    pub patched_rows: usize,
    /// Block slots the snapshot patched this commit.
    pub patched_slots: usize,
    /// Whether the pass degraded to a full recompute (`WeightDeps` global
    /// moves, a CNP budget shift, or an EJS-style degree dependency).
    pub full: bool,
}

/// What the cleaning stage reports into the repair.
#[derive(Debug, Default)]
pub struct DirtyScope {
    /// Graph-dirty nodes (cleaned co-occurrence changed). Sorted.
    pub nodes: Vec<u32>,
    /// Nodes whose cleaned block list (|B_u|) changed. Sorted.
    pub lists_changed: Vec<u32>,
    /// Whether the cleaned |B| moved.
    pub total_blocks_changed: bool,
}

/// The incremental meta-blocker: cached per-node artefacts + retained set.
#[derive(Debug)]
pub struct IncrementalMetaBlocker {
    pruning: IncrementalPruning,
    /// Per-node thresholds (WNP: mean, BLAST: max/c). Empty otherwise.
    thresholds: Vec<f64>,
    /// Per-node top-k lists (CNP). Empty otherwise.
    lists: Vec<Vec<u32>>,
    /// The materialised weighted edge list (WEP/CEP). Empty otherwise.
    edges: Vec<(u32, u32, f64)>,
    retained: RetainedPairs,
    /// CNP's default k of the previous pass (a move forces a full pass).
    prev_cnp_budget: Option<usize>,
    initialised: bool,
}

impl IncrementalMetaBlocker {
    /// A blocker maintaining the given pruning variant.
    pub fn new(pruning: IncrementalPruning) -> Self {
        Self {
            pruning,
            thresholds: Vec::new(),
            lists: Vec::new(),
            edges: Vec::new(),
            retained: RetainedPairs::default(),
            prev_cnp_budget: None,
            initialised: false,
        }
    }

    /// The pruning variant.
    pub fn pruning(&self) -> IncrementalPruning {
        self.pruning
    }

    /// The current candidate set.
    pub fn retained(&self) -> &RetainedPairs {
        &self.retained
    }

    /// Repairs the candidate set after a micro-batch. `ctx` is the graph
    /// context over the *cleaned* snapshot (degrees ensured when the
    /// weigher requires them); `scope` is the cleaning stage's dirty
    /// report.
    pub fn refresh(
        &mut self,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        scope: &DirtyScope,
    ) -> (PairDelta, RepairStats) {
        let n = ctx.total_profiles() as usize;
        let deps = weigher.global_deps();

        let cnp_budget = match self.pruning {
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp2) => {
                Some(Cnp::redefined().budget(ctx))
            }
            _ => None,
        };
        let full = !self.initialised
            || weigher.requires_degrees()
            || (deps.total_blocks && scope.total_blocks_changed)
            || (cnp_budget.is_some() && cnp_budget != self.prev_cnp_budget);
        self.prev_cnp_budget = cnp_budget;
        self.initialised = true;

        // The dirty mask. Schemes reading |B_u| also dirty the co-members
        // of every node whose cleaned block list changed.
        let mut mask = vec![false; n];
        let dirty: Vec<u32> = if full {
            mask.iter_mut().for_each(|m| *m = true);
            (0..n as u32).collect()
        } else {
            for &u in &scope.nodes {
                mask[u as usize] = true;
            }
            if deps.node_blocks {
                for &u in &scope.lists_changed {
                    for &slot in ctx.index().blocks_of(u) {
                        for p in ctx.slot_members(slot) {
                            mask[p.index()] = true;
                        }
                    }
                }
            }
            (0..n as u32).filter(|&u| mask[u as usize]).collect()
        };

        let old = std::mem::take(&mut self.retained);
        let region = RepairRegion {
            full,
            dirty: &dirty,
            mask: &mask,
            cnp_budget,
        };
        let new = self.repair(ctx, weigher, &old, &region);
        let delta = diff_pairs(&old, &new);
        self.retained = new;
        (
            delta,
            RepairStats {
                dirty_nodes: dirty.len(),
                full,
                ..RepairStats::default()
            },
        )
    }

    fn repair(
        &mut self,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        old: &RetainedPairs,
        region: &RepairRegion<'_>,
    ) -> RetainedPairs {
        let RepairRegion {
            full,
            dirty,
            mask,
            cnp_budget,
        } = *region;
        let n = ctx.total_profiles() as usize;
        match self.pruning {
            IncrementalPruning::Traditional(
                algorithm @ (PruningAlgorithm::Wep | PruningAlgorithm::Cep),
            ) => {
                // Patch the materialised edge list: edges with a clean pair
                // of endpoints kept verbatim, edges touching dirty nodes
                // regenerated. The decision stage then runs globally over
                // the in-memory list, exactly like batch.
                if full {
                    self.edges = collect_weighted_edges(ctx, weigher);
                } else {
                    let touching = collect_edges_touching(ctx, weigher, dirty, mask);
                    self.edges = merge_edges(&self.edges, touching, mask);
                }
                if algorithm == PruningAlgorithm::Wep {
                    Wep::prune_edges(&self.edges)
                } else {
                    Cep::prune_edges(Cep::new().budget(ctx), &self.edges)
                }
            }
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Wnp2) => {
                let mode =
                    if self.pruning == IncrementalPruning::Traditional(PruningAlgorithm::Wnp1) {
                        NodeCentricMode::Redefined
                    } else {
                        NodeCentricMode::Reciprocal
                    };
                self.thresholds.resize(n, f64::INFINITY);
                let theta = node_pass_subset(ctx, weigher, dirty, |_, adj| {
                    if adj.is_empty() {
                        f64::INFINITY
                    } else {
                        adj.iter().map(|(_, w)| *w).sum::<f64>() / adj.len() as f64
                    }
                });
                for (&u, &t) in dirty.iter().zip(&theta) {
                    self.thresholds[u as usize] = t;
                }
                let touching = collect_edges_touching(ctx, weigher, dirty, mask);
                let wnp = Wnp { mode };
                let fresh = wnp.prune_edges(&self.thresholds, &touching);
                merge_retained(old, fresh, mask)
            }
            IncrementalPruning::Blast { c, d } => {
                self.thresholds.resize(n, f64::INFINITY);
                let theta = node_pass_subset(ctx, weigher, dirty, |_, adj| {
                    let max = adj
                        .iter()
                        .map(|(_, w)| *w)
                        .fold(f64::NEG_INFINITY, f64::max);
                    if max.is_finite() {
                        max / c
                    } else {
                        f64::INFINITY
                    }
                });
                for (&u, &t) in dirty.iter().zip(&theta) {
                    self.thresholds[u as usize] = t;
                }
                let touching = collect_edges_touching(ctx, weigher, dirty, mask);
                let thresholds = &self.thresholds;
                let pairs: Vec<(ProfileId, ProfileId)> = touching
                    .iter()
                    .filter(|&&(u, v, w)| {
                        let theta = (thresholds[u as usize] + thresholds[v as usize]) / d;
                        w > 0.0 && w >= theta
                    })
                    .map(|&(u, v, _)| (ProfileId(u), ProfileId(v)))
                    .collect();
                merge_retained(old, RetainedPairs::new(pairs), mask)
            }
            IncrementalPruning::Traditional(PruningAlgorithm::Cnp1)
            | IncrementalPruning::Traditional(PruningAlgorithm::Cnp2) => {
                let mode =
                    if self.pruning == IncrementalPruning::Traditional(PruningAlgorithm::Cnp1) {
                        NodeCentricMode::Redefined
                    } else {
                        NodeCentricMode::Reciprocal
                    };
                let k = cnp_budget.expect("cnp budget computed");
                self.lists.resize_with(n, Vec::new);
                let fresh =
                    node_pass_subset(ctx, weigher, dirty, |_, adj| cnp::top_k_neighbours(adj, k));
                for (&u, list) in dirty.iter().zip(fresh) {
                    self.lists[u as usize] = list;
                }
                let cnp = Cnp { mode, k: Some(k) };
                cnp.retained_from_lists(&self.lists)
            }
        }
    }
}

/// Clean-pair survivors of the previous retained set plus the freshly
/// decided pairs touching dirty nodes. Both inputs are sorted and —
/// because every fresh pair has a dirty endpoint while every survivor has
/// none — disjoint, so a linear two-way merge suffices: no re-sort of the
/// whole candidate set on the per-commit hot path.
fn merge_retained(old: &RetainedPairs, fresh: RetainedPairs, mask: &[bool]) -> RetainedPairs {
    let a = old.pairs();
    let b = fresh.pairs();
    let keep = |p: &(ProfileId, ProfileId)| !mask[p.0.index()] && !mask[p.1.index()];
    let mut pairs: Vec<(ProfileId, ProfileId)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if !keep(&a[i]) {
            i += 1;
        } else if a[i] < b[j] {
            pairs.push(a[i]);
            i += 1;
        } else {
            pairs.push(b[j]);
            j += 1;
        }
    }
    for p in &a[i..] {
        if keep(p) {
            pairs.push(*p);
        }
    }
    pairs.extend_from_slice(&b[j..]);
    RetainedPairs::from_sorted(pairs)
}

/// The region one repair pass recomputes: the dirty node set (as list +
/// bitmap), whether the pass degraded to a full recompute, and CNP's
/// resolved per-node budget.
#[derive(Clone, Copy)]
struct RepairRegion<'a> {
    full: bool,
    dirty: &'a [u32],
    mask: &'a [bool],
    cnp_budget: Option<usize>,
}

/// Replaces every edge with a dirty endpoint in `old` by the freshly
/// regenerated `touching` list (both sorted by `(u, v)`; disjoint by
/// construction).
fn merge_edges(
    old: &[(u32, u32, f64)],
    touching: Vec<(u32, u32, f64)>,
    mask: &[bool],
) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::with_capacity(old.len() + touching.len());
    let mut t = touching.into_iter().peekable();
    for &(u, v, w) in old {
        if mask[u as usize] || mask[v as usize] {
            continue; // superseded (or gone) — regenerated below if alive
        }
        while let Some(&(tu, tv, _)) = t.peek() {
            if (tu, tv) < (u, v) {
                out.push(t.next().unwrap());
            } else {
                break;
            }
        }
        out.push((u, v, w));
    }
    out.extend(t);
    out
}

/// Sorted-merge diff of two retained sets.
fn diff_pairs(old: &RetainedPairs, new: &RetainedPairs) -> PairDelta {
    let (a, b) = (old.pairs(), new.pairs());
    let mut added = Vec::new();
    let mut retracted = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                retracted.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                added.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                retracted.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                added.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    PairDelta { added, retracted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> (ProfileId, ProfileId) {
        (ProfileId(a), ProfileId(b))
    }

    #[test]
    fn diff_reports_both_directions() {
        let old = RetainedPairs::new(vec![p(0, 1), p(2, 3), p(4, 5)]);
        let new = RetainedPairs::new(vec![p(0, 1), p(2, 4), p(4, 5)]);
        let d = diff_pairs(&old, &new);
        assert_eq!(d.added, vec![p(2, 4)]);
        assert_eq!(d.retracted, vec![p(2, 3)]);
        assert!(diff_pairs(&new, &new).is_empty());
    }

    #[test]
    fn merge_edges_patches_dirty_region() {
        let old = vec![(0, 1, 1.0), (0, 3, 2.0), (1, 2, 3.0), (2, 3, 4.0)];
        // Node 2 dirty: edges (1,2) and (2,3) replaced, (2,4) appears.
        let mask = vec![false, false, true, false, false];
        let touching = vec![(1, 2, 30.0), (2, 3, 40.0), (2, 4, 50.0)];
        let merged = merge_edges(&old, touching, &mask);
        assert_eq!(
            merged,
            vec![
                (0, 1, 1.0),
                (0, 3, 2.0),
                (1, 2, 30.0),
                (2, 3, 40.0),
                (2, 4, 50.0)
            ]
        );
    }

    #[test]
    fn merge_edges_drops_vanished_dirty_edges() {
        // Node 2 dirty and its edge gone: (1,2) disappears, (0,1) survives.
        let old = vec![(0, 1, 1.0), (1, 2, 3.0)];
        let mask = vec![false, false, true];
        let merged = merge_edges(&old, Vec::new(), &mask);
        assert_eq!(merged, vec![(0, 1, 1.0)]);
    }
}
