//! The incremental pipeline: streamed mutations in, candidate-pair deltas
//! out.
//!
//! ```text
//! insert/update/delete … → commit() → PairDelta { added, retracted }
//! ```
//!
//! Each [`IncrementalPipeline::commit`] absorbs the pending micro-batch:
//! the index mutates only the touched postings, cleaning is re-applied on
//! the dirty blocks, and the meta-blocking graph is repaired over the dirty
//! neighbourhoods. The **batch-equivalence contract**: after any commit,
//! [`IncrementalPipeline::retained`] is bit-identical to
//! [`IncrementalPipeline::batch_retained`], a from-scratch batch run
//! (Token Blocking → purging → filtering → weighting → pruning) on the
//! materialised input — pinned by the property tests in
//! `tests/incremental_equivalence.rs` for all prunings × schemes.
//!
//! Loose schema information is supported as a *fixed* partitioning (e.g.
//! extracted from a seed batch): keys are disambiguated per attribute
//! cluster and blocks carry the cluster's aggregate entropy, exactly like
//! the batch pipeline's phase 2 + 3 with that same partitioning.

use crate::cleaner::{CleaningConfig, IncrementalCleaner};
use crate::graph::{
    DirtyScope, IncrementalMetaBlocker, IncrementalPruning, PairDelta, RepairStats,
};
use crate::index::IncrementalBlockIndex;
use crate::store::MutableProfileStore;
use blast_blocking::collection::BlockCollection;
use blast_blocking::filtering::BlockFiltering;
use blast_blocking::key::{ClusterId, KeyDisambiguator};
use blast_blocking::purging::BlockPurging;
use blast_blocking::token_blocking::TokenBlocking;
use blast_core::schema::partitioning::AttributePartitioning;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_datamodel::input::ErInput;
use blast_datamodel::tokenizer::Tokenizer;
use blast_graph::context::GraphContext;
use blast_graph::retained::RetainedPairs;
use blast_graph::weights::EdgeWeigher;

/// What one commit produced.
#[derive(Debug)]
pub struct CommitOutcome {
    /// The candidate-pair delta of this micro-batch.
    pub delta: PairDelta,
    /// Repair diagnostics.
    pub stats: RepairStats,
    /// Size of the candidate set after the commit.
    pub retained_len: usize,
    /// Number of cleaned blocks after the commit.
    pub blocks: usize,
}

/// The incremental BLAST pipeline.
pub struct IncrementalPipeline {
    store: MutableProfileStore,
    index: IncrementalBlockIndex,
    cleaner: IncrementalCleaner,
    blocker: IncrementalMetaBlocker,
    weigher: Box<dyn EdgeWeigher + Send>,
    tokenizer: Tokenizer,
    /// Fixed loose schema information; `None` = schema-agnostic blocking.
    partitioning: Option<AttributePartitioning>,
    pending: bool,
}

impl std::fmt::Debug for IncrementalPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalPipeline")
            .field("mode", &self.store.mode())
            .field("weigher", &self.weigher.name())
            .field("pruning", &self.blocker.pruning().label())
            .finish()
    }
}

impl IncrementalPipeline {
    /// A dirty-ER pipeline with schema-agnostic blocking.
    pub fn dirty(
        weigher: impl EdgeWeigher + Send + 'static,
        pruning: IncrementalPruning,
        cleaning: CleaningConfig,
    ) -> Self {
        Self::with_store(MutableProfileStore::dirty(), weigher, pruning, cleaning)
    }

    /// A clean-clean pipeline whose first collection holds at most
    /// `separator` profiles.
    pub fn clean_clean(
        separator: u32,
        weigher: impl EdgeWeigher + Send + 'static,
        pruning: IncrementalPruning,
        cleaning: CleaningConfig,
    ) -> Self {
        Self::with_store(
            MutableProfileStore::clean_clean(separator),
            weigher,
            pruning,
            cleaning,
        )
    }

    fn with_store(
        store: MutableProfileStore,
        weigher: impl EdgeWeigher + Send + 'static,
        pruning: IncrementalPruning,
        cleaning: CleaningConfig,
    ) -> Self {
        Self {
            store,
            index: IncrementalBlockIndex::new(false),
            cleaner: IncrementalCleaner::new(cleaning),
            blocker: IncrementalMetaBlocker::new(pruning),
            weigher: Box::new(weigher),
            tokenizer: Tokenizer::new(),
            partitioning: None,
            pending: false,
        }
    }

    /// Aligns the store's attribute ids with the collection a fixed
    /// partitioning was extracted from (see
    /// [`MutableProfileStore::adopt_attributes`]). Call once per source
    /// before streaming when using [`IncrementalPipeline::with_partitioning`].
    pub fn adopt_attributes<'a>(
        &mut self,
        source: SourceId,
        names: impl IntoIterator<Item = &'a str>,
    ) {
        self.store.adopt_attributes(source, names);
    }

    /// Attaches a fixed attribute partitioning (loosely schema-aware
    /// blocking + entropy-weighted graph). Must be called before the first
    /// insert; the partitioning's attribute ids must align with this
    /// store's interning (see [`IncrementalPipeline::adopt_attributes`]).
    pub fn with_partitioning(mut self, partitioning: AttributePartitioning) -> Self {
        assert_eq!(
            self.store.total_slots(),
            if self.store.is_clean_clean() {
                self.store.separator()
            } else {
                0
            },
            "attach the partitioning before streaming profiles"
        );
        self.index = IncrementalBlockIndex::new(partitioning.cluster_count() > 1);
        self.partitioning = Some(partitioning);
        self
    }

    /// Replaces the tokenizer (before the first insert).
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// The mutable store (read access).
    pub fn store(&self) -> &MutableProfileStore {
        &self.store
    }

    /// The current candidate set.
    pub fn retained(&self) -> &RetainedPairs {
        self.blocker.retained()
    }

    /// Inserts a profile, returning its stable global id.
    pub fn insert<'a>(
        &mut self,
        source: SourceId,
        external_id: &str,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> ProfileId {
        let id = self.store.insert(source, external_id, pairs);
        self.reindex(id);
        id
    }

    /// Replaces a profile's name–value pairs.
    pub fn update<'a>(
        &mut self,
        id: ProfileId,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) {
        self.store.update(id, pairs);
        self.reindex(id);
    }

    /// Tombstones a profile.
    pub fn delete(&mut self, id: ProfileId) {
        self.store.delete(id);
        self.index.clear_profile(id.0);
        self.pending = true;
    }

    fn reindex(&mut self, id: ProfileId) {
        let source = self.store.source_of(id);
        // Collect (cluster, token) keys exactly like batch Token Blocking:
        // excluded attributes produce none, everything else its cluster.
        let mut keys: Vec<(ClusterId, String)> = Vec::new();
        for (attr, value) in self.store.values(id) {
            let cluster = match &self.partitioning {
                Some(p) => p.cluster_of(source, *attr),
                None => Some(ClusterId::GLUE),
            };
            let Some(cluster) = cluster else { continue };
            self.tokenizer.for_each_token(value, |tok| {
                keys.push((cluster, tok.to_string()));
            });
        }
        self.index
            .set_profile(id.0, keys.iter().map(|(c, t)| (*c, t.as_str())));
        self.pending = true;
    }

    /// Absorbs the pending micro-batch, repairing blocks, weights and
    /// pruning over the affected neighbourhoods, and returns the
    /// candidate-pair delta.
    pub fn commit(&mut self) -> CommitOutcome {
        self.pending = false;
        let drain = self.index.drain_dirty();
        let clean_clean = self.store.is_clean_clean();
        let separator = self.store.separator();
        let total = self.store.total_slots();
        let outcome = self
            .cleaner
            .apply(&self.index, &drain, clean_clean, separator, total);

        let mut ctx = GraphContext::new(&outcome.blocks);
        if let Some(p) = &self.partitioning {
            ctx = ctx.with_block_entropies(p.block_entropies(&outcome.blocks));
        }
        if self.weigher.requires_degrees() {
            ctx.ensure_degrees();
        }
        let scope = DirtyScope {
            nodes: outcome.dirty_nodes,
            lists_changed: outcome.lists_changed,
            total_blocks_changed: outcome.total_blocks_changed,
        };
        let (delta, stats) = self.blocker.refresh(&ctx, &*self.weigher, &scope);
        CommitOutcome {
            delta,
            stats,
            retained_len: self.blocker.retained().len(),
            blocks: outcome.blocks.len(),
        }
    }

    /// Whether mutations are waiting for a commit.
    pub fn has_pending(&self) -> bool {
        self.pending
    }

    /// Freezes the store into the batch input (see
    /// [`MutableProfileStore::materialize`]).
    pub fn materialize(&self) -> ErInput {
        self.store.materialize()
    }

    /// The from-scratch batch counterpart on the materialised input — what
    /// the equivalence contract compares [`IncrementalPipeline::retained`]
    /// against.
    pub fn batch_retained(&self) -> RetainedPairs {
        let input = self.materialize();
        let blocks = self.batch_blocks(&input);
        let mut ctx = GraphContext::new(&blocks);
        if let Some(p) = &self.partitioning {
            ctx = ctx.with_block_entropies(p.block_entropies(&blocks));
        }
        if self.weigher.requires_degrees() {
            ctx.ensure_degrees();
        }
        self.blocker.pruning().batch_prune(&ctx, &*self.weigher)
    }

    /// The batch blocking + cleaning counterpart on an input.
    pub fn batch_blocks(&self, input: &ErInput) -> BlockCollection {
        let blocking = TokenBlocking::with_tokenizer(self.tokenizer.clone());
        let blocks = match &self.partitioning {
            Some(p) => blocking.build_with(input, p),
            None => blocking.build(input),
        };
        let config = self.cleaner.config();
        let blocks = if config.purging {
            BlockPurging::new()
                .max_profile_fraction(config.purge_fraction)
                .purge(&blocks)
        } else {
            blocks
        };
        if config.filtering {
            BlockFiltering::with_ratio(config.filter_ratio).filter(&blocks)
        } else {
            blocks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_graph::meta::PruningAlgorithm;
    use blast_graph::weights::WeightingScheme;

    fn wnp1() -> IncrementalPruning {
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1)
    }

    #[test]
    fn stream_inserts_match_batch_at_every_commit() {
        let mut p =
            IncrementalPipeline::dirty(WeightingScheme::Cbs, wnp1(), CleaningConfig::default());
        let rows = [
            "john abram jr car seller 1985 main street",
            "ellen smith 85 retail abram st 30 ny",
            "jon jr abram 85 car retail main st",
            "ellen smith may 10 1985 retailer abram street ny",
            "marie curie physics",
        ];
        for (i, row) in rows.iter().enumerate() {
            p.insert(SourceId(0), &format!("p{i}"), [("text", *row)]);
            let out = p.commit();
            assert_eq!(p.retained().pairs(), p.batch_retained().pairs(), "step {i}");
            assert_eq!(out.retained_len, p.retained().len());
        }
    }

    #[test]
    fn update_and_delete_emit_retractions() {
        let mut p =
            IncrementalPipeline::dirty(WeightingScheme::Cbs, wnp1(), CleaningConfig::none());
        let a = p.insert(SourceId(0), "a", [("t", "alpha beta gamma")]);
        let _b = p.insert(SourceId(0), "b", [("t", "alpha beta gamma")]);
        let out = p.commit();
        assert_eq!(out.retained_len, 1, "the twin pair is retained");
        assert_eq!(out.delta.added.len(), 1);

        // Deleting one endpoint retracts the pair.
        p.delete(a);
        let out = p.commit();
        assert_eq!(out.delta.retracted.len(), 1);
        assert_eq!(p.retained().len(), 0);
        assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let mut p =
            IncrementalPipeline::dirty(WeightingScheme::Cbs, wnp1(), CleaningConfig::default());
        p.insert(SourceId(0), "a", [("t", "x y")]);
        p.commit();
        assert!(!p.has_pending());
        let out = p.commit();
        assert!(out.delta.is_empty());
    }

    #[test]
    fn clean_clean_stream_matches_batch() {
        let mut p = IncrementalPipeline::clean_clean(
            3,
            WeightingScheme::Js,
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp2),
            CleaningConfig::default(),
        );
        p.insert(
            SourceId(0),
            "a0",
            [("name", "john abram"), ("year", "1985")],
        );
        p.insert(SourceId(1), "b0", [("title", "john abram 1985")]);
        p.commit();
        assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
        p.insert(SourceId(0), "a1", [("name", "ellen smith"), ("year", "85")]);
        p.insert(SourceId(1), "b1", [("title", "ellen smith 85")]);
        p.commit();
        assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
        // Cross-separator pairs only.
        for (x, y) in p.retained().iter() {
            assert!(x.0 < 3 && y.0 >= 3);
        }
    }
}
