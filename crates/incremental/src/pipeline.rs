//! The incremental pipeline: streamed mutations in, candidate-pair deltas
//! out.
//!
//! ```text
//! insert/update/delete … → commit() → PairDelta { added, retracted }
//! ```
//!
//! Each [`IncrementalPipeline::commit`] absorbs the pending micro-batch:
//! the index mutates only the touched postings, cleaning is re-applied on
//! the dirty blocks, the **owned graph snapshot is patched in place** from
//! the cleaner's delta ([`GraphSnapshot::apply`] — no per-commit CSR
//! rebuild; `GraphSnapshot::build` never runs on the commit path), and the
//! meta-blocking graph is repaired over the dirty neighbourhoods. The
//! **batch-equivalence contract**: after any commit,
//! [`IncrementalPipeline::retained`] is bit-identical to
//! [`IncrementalPipeline::batch_retained`], a from-scratch batch run
//! (Token Blocking → purging → filtering → weighting → pruning) on the
//! materialised input — pinned by the property tests in
//! `tests/incremental_equivalence.rs` for all prunings × schemes, and the
//! patched snapshot itself is pinned field-for-field against
//! `GraphSnapshot::build` by `tests/snapshot_maintenance.rs`.
//!
//! Loose schema information is supported as a *fixed* partitioning (e.g.
//! extracted from a seed batch): keys are disambiguated per attribute
//! cluster and blocks carry the cluster's aggregate entropy, exactly like
//! the batch pipeline's phase 2 + 3 with that same partitioning.

use crate::cleaner::{CleaningConfig, IncrementalCleaner};
use crate::graph::{
    DirtyScope, IncrementalMetaBlocker, IncrementalPruning, PairDelta, RepairStats,
};
use crate::index::IncrementalBlockIndex;
use crate::store::MutableProfileStore;
use blast_blocking::collection::BlockCollection;
use blast_blocking::filtering::BlockFiltering;
use blast_blocking::key::{ClusterId, KeyDisambiguator};
use blast_blocking::purging::BlockPurging;
use blast_blocking::token_blocking::TokenBlocking;
use blast_core::schema::partitioning::AttributePartitioning;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_datamodel::input::ErInput;
use blast_datamodel::interner::Symbol;
use blast_datamodel::tokenizer::Tokenizer;
use blast_graph::context::GraphSnapshot;
use blast_graph::retained::RetainedPairs;
use blast_graph::weights::EdgeWeigher;
use blast_graph::{ColdStats, SpillBackend};
use blast_io::TempSpillFile;
use blast_obs::{CommitMetrics, CommitRecord};
use std::time::Instant;

/// Wall-clock split of one commit across the pipeline stages (the phase
/// columns of `BENCH_incremental.json`). The type lives in `blast-obs`
/// ([`blast_obs::CommitPhases`]) so the `--stats` phase line and the bench
/// JSON phase schema are formatted by one implementation; the historical
/// `CommitTimings` name is kept for the pipeline's callers.
pub use blast_obs::CommitPhases as CommitTimings;

/// Resident-footprint counters of a streaming pipeline — the structure
/// sizes behind the bytes-per-profile budget of the memory benchmark, and
/// the counters `blast stream --stats` prints. Byte figures are estimates
/// from container capacities (what the structures asked the allocator
/// for), not allocator-measured; the benchmark reports kernel RSS
/// alongside them.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemoryFootprint {
    /// Live (retention-relevant) edges in the decision state.
    pub live_edges: usize,
    /// Packed accumulator entries cached in the edge adjacency.
    pub cached_accumulators: usize,
    /// Distinct token strings interned by the block index.
    pub interned_tokens: usize,
    /// Profile store (slot payloads + attribute interners).
    pub store_bytes: usize,
    /// Inverted block index (postings, canonical order, token interner).
    pub index_bytes: usize,
    /// Owned graph snapshot (memberships, slot stats, CSR rows).
    pub snapshot_bytes: usize,
    /// Meta-blocker: adjacency, decision structure, per-node artefacts.
    pub blocker_bytes: usize,
    /// Cold-tier frames resident in memory (delta-encoded evicted rows
    /// across the index, snapshot and blocker arenas). Disjoint from the
    /// hot `*_bytes` fields — a row is counted exactly once, in whichever
    /// tier it currently occupies.
    pub cold_bytes: usize,
    /// Cold-tier frames held by a spill backend (on disk, not resident).
    pub spilled_bytes: usize,
}

impl MemoryFootprint {
    /// Sum of the resident byte estimates: the four hot structures plus
    /// in-memory cold frames. Spilled bytes live on disk and are excluded.
    pub fn total_bytes(&self) -> usize {
        self.store_bytes
            + self.index_bytes
            + self.snapshot_bytes
            + self.blocker_bytes
            + self.cold_bytes
    }
}

/// The cold-tier residency knobs of a budgeted pipeline (see
/// [`IncrementalPipeline::with_residency`]).
///
/// At the end of every commit the enforcer splits `budget_bytes` across
/// the three evictable structures (index postings, snapshot block slots,
/// blocker adjacency rows) proportionally to their current hot footprint,
/// demotes rows untouched for `idle_commits` commits, and keeps demoting
/// coldest-first while a structure sits over its share. Any setting is
/// bit-identical to the unbudgeted pipeline — the knobs trade memory for
/// rehydration work, never the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyPolicy {
    /// Target hot bytes across the evictable structures. `0` demotes
    /// every evictable row each commit (the adversarial extreme).
    pub budget_bytes: usize,
    /// Commits a row may sit untouched before it becomes stale. `0`
    /// demotes rows the moment the enforcer sees them, including rows the
    /// current commit touched.
    pub idle_commits: u32,
    /// Spill cold frames to an unlinked temp file instead of holding them
    /// in an in-memory arena.
    pub spill: bool,
}

impl ResidencyPolicy {
    /// The default knobs for a byte budget: rows idle for 2 commits are
    /// evictable, frames stay in memory.
    pub fn budget(budget_bytes: usize) -> Self {
        ResidencyPolicy {
            budget_bytes,
            idle_commits: 2,
            spill: false,
        }
    }
}

/// What one commit produced.
#[derive(Debug)]
pub struct CommitOutcome {
    /// The candidate-pair delta of this micro-batch.
    pub delta: PairDelta,
    /// Repair diagnostics.
    pub stats: RepairStats,
    /// Size of the candidate set after the commit.
    pub retained_len: usize,
    /// Number of cleaned blocks after the commit.
    pub blocks: usize,
    /// Per-phase wall-clock split of this commit.
    pub timings: CommitTimings,
}

/// The incremental BLAST pipeline.
pub struct IncrementalPipeline {
    store: MutableProfileStore,
    index: IncrementalBlockIndex,
    cleaner: IncrementalCleaner,
    blocker: IncrementalMetaBlocker,
    weigher: Box<dyn EdgeWeigher + Send>,
    tokenizer: Tokenizer,
    /// Fixed loose schema information; `None` = schema-agnostic blocking.
    partitioning: Option<AttributePartitioning>,
    /// The owned, delta-maintained graph snapshot (one per pipeline, patched
    /// per commit).
    snapshot: GraphSnapshot,
    pending: bool,
    /// Index-maintenance time accrued since the last commit.
    pending_index_secs: f64,
    /// The pipeline's metrics registry (one per pipeline, so concurrent
    /// pipelines in one process never bleed into each other's counters).
    metrics: CommitMetrics,
    /// Cold-tier residency policy; `None` = never evict.
    residency: Option<ResidencyPolicy>,
    /// Cumulative (evictions, rehydrations) already reported to the
    /// metrics registry — the per-commit record carries the delta.
    cold_seen: (u64, u64),
}

impl std::fmt::Debug for IncrementalPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalPipeline")
            .field("mode", &self.store.mode())
            .field("weigher", &self.weigher.name())
            .field("pruning", &self.blocker.pruning().label())
            .finish()
    }
}

impl IncrementalPipeline {
    /// A dirty-ER pipeline with schema-agnostic blocking.
    pub fn dirty(
        weigher: impl EdgeWeigher + Send + 'static,
        pruning: IncrementalPruning,
        cleaning: CleaningConfig,
    ) -> Self {
        Self::with_store(MutableProfileStore::dirty(), weigher, pruning, cleaning)
    }

    /// A clean-clean pipeline whose first collection holds at most
    /// `separator` profiles.
    pub fn clean_clean(
        separator: u32,
        weigher: impl EdgeWeigher + Send + 'static,
        pruning: IncrementalPruning,
        cleaning: CleaningConfig,
    ) -> Self {
        Self::with_store(
            MutableProfileStore::clean_clean(separator),
            weigher,
            pruning,
            cleaning,
        )
    }

    fn with_store(
        store: MutableProfileStore,
        weigher: impl EdgeWeigher + Send + 'static,
        pruning: IncrementalPruning,
        cleaning: CleaningConfig,
    ) -> Self {
        let snapshot = GraphSnapshot::empty(store.is_clean_clean(), store.separator());
        Self {
            store,
            index: IncrementalBlockIndex::new(false),
            cleaner: IncrementalCleaner::new(cleaning),
            blocker: IncrementalMetaBlocker::new(pruning),
            weigher: Box::new(weigher),
            tokenizer: Tokenizer::new(),
            partitioning: None,
            snapshot,
            pending: false,
            pending_index_secs: 0.0,
            metrics: CommitMetrics::new(),
            residency: None,
            cold_seen: (0, 0),
        }
    }

    /// Aligns the store's attribute ids with the collection a fixed
    /// partitioning was extracted from (see
    /// [`MutableProfileStore::adopt_attributes`]). Call once per source
    /// before streaming when using [`IncrementalPipeline::with_partitioning`].
    pub fn adopt_attributes<'a>(
        &mut self,
        source: SourceId,
        names: impl IntoIterator<Item = &'a str>,
    ) {
        self.store.adopt_attributes(source, names);
    }

    /// Attaches a fixed attribute partitioning (loosely schema-aware
    /// blocking + entropy-weighted graph). Must be called before the first
    /// insert; the partitioning's attribute ids must align with this
    /// store's interning (see [`IncrementalPipeline::adopt_attributes`]).
    pub fn with_partitioning(mut self, partitioning: AttributePartitioning) -> Self {
        assert_eq!(
            self.store.total_slots(),
            if self.store.is_clean_clean() {
                self.store.separator()
            } else {
                0
            },
            "attach the partitioning before streaming profiles"
        );
        self.index = IncrementalBlockIndex::new(partitioning.cluster_count() > 1);
        self.snapshot = GraphSnapshot::empty(self.store.is_clean_clean(), self.store.separator())
            .with_entropies_enabled();
        self.partitioning = Some(partitioning);
        self
    }

    /// Replaces the tokenizer (before the first insert).
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Pins the worker-thread count of every parallel phase (fresh-edge
    /// weighting, the sharded reweigh sweep, artefact recomputes). Without
    /// it the count auto-scales with the collection (and honours the
    /// `BLAST_THREADS` environment override). Any value is bit-identical.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.snapshot.set_threads(threads);
        self
    }

    /// Partitions the commit path over `shards` owner shards with a
    /// deterministic merge frontier (see [`crate::shard`]). Default is the
    /// single-shard engine; any shard count produces bit-identical commit
    /// outcomes — the knob changes parallel granularity and what the
    /// `shard.*` instruments report, never the answer.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.blocker.set_shards(shards);
        self
    }

    /// Mid-stream variants of the builders (the knobs are safe to turn
    /// between commits; outcomes stay bit-identical).
    pub fn set_threads(&mut self, threads: usize) {
        self.snapshot.set_threads(threads);
    }

    /// See [`IncrementalPipeline::with_shards`].
    pub fn set_shards(&mut self, shards: usize) {
        self.blocker.set_shards(shards);
    }

    /// Bounds the hot footprint of the evictable structures to
    /// `budget_bytes` with the default residency knobs (see
    /// [`ResidencyPolicy::budget`]). Commit outcomes stay bit-identical to
    /// the unbudgeted pipeline at any budget.
    pub fn with_memory_budget(self, budget_bytes: usize) -> Self {
        self.with_residency(ResidencyPolicy::budget(budget_bytes))
    }

    /// Attaches a full cold-tier residency policy. Safe to set before or
    /// between commits; outcomes stay bit-identical.
    pub fn with_residency(mut self, policy: ResidencyPolicy) -> Self {
        self.residency = Some(policy);
        self
    }

    /// Mid-stream variant of [`IncrementalPipeline::with_residency`].
    pub fn set_residency(&mut self, policy: Option<ResidencyPolicy>) {
        self.residency = policy;
    }

    /// The active residency policy, if any.
    pub fn residency(&self) -> Option<ResidencyPolicy> {
        self.residency
    }

    /// Aggregate cold-tier counters over the three evictable structures
    /// (cumulative since the policy was attached).
    pub fn cold_stats(&self) -> ColdStats {
        let mut stats = self.index.cold_stats();
        stats.merge(&self.snapshot.slot_cold_stats());
        stats.merge(&self.blocker.cold_stats());
        stats
    }

    /// Rehydrates the snapshot slots of `nodes` ahead of read-only access
    /// that bypasses `commit` — the serving layer calls this on the writer
    /// before stamping published candidate weights, so readers never see a
    /// cold slot.
    pub fn prepare_reads(&mut self, nodes: &[u32]) {
        self.snapshot.ensure_node_slots_resident(nodes.iter());
    }

    fn spill_backend(policy: &ResidencyPolicy) -> Option<Box<dyn SpillBackend>> {
        policy.spill.then(|| {
            Box::new(TempSpillFile::create().expect("create cold-tier spill file"))
                as Box<dyn SpillBackend>
        })
    }

    /// The end-of-commit residency sweep: lazily arm the three structures,
    /// split the budget proportionally to their hot footprints, and let
    /// each demote stale/over-budget rows. The blocker is armed only once
    /// its edge cache exists (the first structural pass creates it), so a
    /// spill file is never opened for a structure that owns no rows.
    fn enforce_residency(&mut self) {
        let Some(policy) = self.residency else { return };
        if !self.index.residency_enabled() {
            self.index.enable_residency(Self::spill_backend(&policy));
        }
        if !self.snapshot.slot_residency_enabled() {
            self.snapshot
                .enable_slot_residency(Self::spill_backend(&policy));
        }
        if self.blocker.has_edge_cache() && !self.blocker.residency_enabled() {
            self.blocker.enable_residency(Self::spill_backend(&policy));
        }
        let hot = [
            self.index.evictable_hot_bytes(),
            self.snapshot.evictable_hot_bytes(),
            self.blocker.evictable_hot_bytes(),
        ];
        let total: usize = hot.iter().sum();
        let share = |h: usize| {
            if total == 0 {
                policy.budget_bytes
            } else {
                ((policy.budget_bytes as u128 * h as u128) / total as u128) as usize
            }
        };
        self.index
            .enforce_residency(policy.idle_commits, share(hot[0]));
        self.snapshot
            .enforce_slot_residency(policy.idle_commits, share(hot[1]));
        if self.blocker.residency_enabled() {
            self.blocker
                .enforce_residency(policy.idle_commits, share(hot[2]));
        }
    }

    /// The mutable store (read access).
    pub fn store(&self) -> &MutableProfileStore {
        &self.store
    }

    /// The current candidate set.
    pub fn retained(&self) -> &RetainedPairs {
        self.blocker.retained()
    }

    /// The owned graph snapshot (read access; patched per commit).
    pub fn snapshot(&self) -> &GraphSnapshot {
        &self.snapshot
    }

    /// The pruned weight of edge `(u, v)`, computed on demand from the
    /// owned snapshot's accumulator and this pipeline's weighing scheme —
    /// `None` when the profiles share no cleaned block. The serving layer
    /// stamps candidate weights with this at publish time; it reads only
    /// immutable-between-commits state, so it is safe between commits.
    pub fn edge_weight(&self, u: u32, v: u32) -> Option<f64> {
        let acc = self.snapshot.edge(u, v)?;
        Some(self.weigher.weight(&self.snapshot, u, v, &acc))
    }

    /// The pipeline's metrics registry: everything `commit` has recorded
    /// (phase histograms, repair-tier counters, cleaner drains, structure
    /// gauges). Snapshot it for aggregate reporting
    /// ([`blast_obs::CommitTotals::from_snapshot`]) or Prometheus export
    /// ([`blast_obs::MetricsSnapshot::encode_text`]).
    pub fn metrics(&self) -> &CommitMetrics {
        &self.metrics
    }

    /// The pipeline's resident-footprint counters (see [`MemoryFootprint`]).
    /// The per-structure `*_bytes` count hot state only; evicted rows
    /// appear once, under `cold_bytes` (in-memory frames) or
    /// `spilled_bytes` (on disk).
    pub fn footprint(&self) -> MemoryFootprint {
        let cold = self.cold_stats();
        MemoryFootprint {
            live_edges: self.blocker.live_edges(),
            cached_accumulators: self.blocker.cached_accumulators(),
            interned_tokens: self.index.interned_tokens(),
            store_bytes: self.store.resident_bytes(),
            index_bytes: self.index.resident_bytes(),
            snapshot_bytes: self.snapshot.resident_bytes(),
            blocker_bytes: self.blocker.resident_bytes(),
            cold_bytes: cold.cold_bytes,
            spilled_bytes: cold.spilled_bytes,
        }
    }

    /// Inserts a profile, returning its stable global id.
    pub fn insert<'a>(
        &mut self,
        source: SourceId,
        external_id: &str,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> ProfileId {
        let id = self.store.insert(source, external_id, pairs);
        self.reindex(id);
        id
    }

    /// Replaces a profile's name–value pairs.
    pub fn update<'a>(
        &mut self,
        id: ProfileId,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) {
        self.store.update(id, pairs);
        self.reindex(id);
    }

    /// Tombstones a profile.
    pub fn delete(&mut self, id: ProfileId) {
        let t0 = Instant::now();
        self.store.delete(id);
        self.index.clear_profile(id.0);
        self.pending_index_secs += t0.elapsed().as_secs_f64();
        self.pending = true;
    }

    fn reindex(&mut self, id: ProfileId) {
        let t0 = Instant::now();
        let source = self.store.source_of(id);
        // Collect (cluster, token) keys exactly like batch Token Blocking:
        // excluded attributes produce none, everything else its cluster.
        // Tokens are interned straight out of the tokenizer callback, so no
        // per-token string is ever materialised on the streaming path.
        let mut keys: Vec<(ClusterId, Symbol)> = Vec::new();
        let index = &mut self.index;
        for (attr, value) in self.store.values(id) {
            let cluster = match &self.partitioning {
                Some(p) => p.cluster_of(source, *attr),
                None => Some(ClusterId::GLUE),
            };
            let Some(cluster) = cluster else { continue };
            self.tokenizer.for_each_token(value, |tok| {
                keys.push((cluster, index.intern_token(tok)));
            });
        }
        self.index.set_profile_symbols(id.0, keys);
        self.pending_index_secs += t0.elapsed().as_secs_f64();
        self.pending = true;
    }

    /// Absorbs the pending micro-batch, repairing blocks, the owned graph
    /// snapshot, weights and pruning over the affected neighbourhoods, and
    /// returns the candidate-pair delta.
    pub fn commit(&mut self) -> CommitOutcome {
        self.pending = false;
        let mut timings = CommitTimings {
            index_secs: std::mem::take(&mut self.pending_index_secs),
            ..CommitTimings::default()
        };

        let t0 = Instant::now();
        let drain = self.index.drain_dirty();
        timings.index_secs += t0.elapsed().as_secs_f64();
        let drained_keys = drain.keys.len();
        let drained_members = drain.removed_members.len();
        let drained_profiles = drain.touched_profiles.len();

        let t0 = Instant::now();
        let clean_clean = self.store.is_clean_clean();
        let separator = self.store.separator();
        let total = self.store.total_slots();
        let outcome = self.cleaner.apply(
            &self.index,
            &drain,
            clean_clean,
            separator,
            total,
            self.partitioning.as_ref().map(|p| p.entropies()),
        );
        timings.cleaning_secs = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let applied = self.snapshot.apply(outcome.delta);
        timings.snapshot_secs = t0.elapsed().as_secs_f64();

        // Degrees are delta-maintained inside the repair ladder (EJS's
        // former forced-full path is gone): `refresh` patches them from
        // its edge-existence diff before any weight is computed.
        let t0 = Instant::now();
        let scope = DirtyScope {
            nodes: outcome.dirty_nodes,
            lists_changed: outcome.lists_changed,
            total_blocks_changed: outcome.total_blocks_changed,
        };
        let (delta, mut stats) = self
            .blocker
            .refresh(&mut self.snapshot, &*self.weigher, &scope);
        timings.decision_secs = stats.decision_secs;
        timings.reweigh_secs = stats.reweigh_secs;
        timings.repair_secs =
            (t0.elapsed().as_secs_f64() - stats.decision_secs - stats.reweigh_secs).max(0.0);
        stats.patched_rows = applied.patched_rows;
        stats.patched_slots = applied.patched_slots;
        let retained_len = self.blocker.retained_len();
        // Demote cold rows *after* the repair settled — eviction never
        // observes (or perturbs) in-flight repair state, so any budget or
        // cadence leaves the commit outcome bit-identical.
        self.enforce_residency();
        let cold = self.cold_stats();
        let cold_evictions = cold.evictions - self.cold_seen.0;
        let cold_rehydrations = cold.rehydrations - self.cold_seen.1;
        self.cold_seen = (cold.evictions, cold.rehydrations);
        // Record the commit into the pipeline's registry. Gauge sources are
        // all O(1) reads — `footprint()`'s byte estimates are O(n) and stay
        // off the commit path.
        self.metrics.record(&CommitRecord {
            phases: Some(&timings),
            tier: stats.tier.index(),
            dirty_nodes: stats.dirty_nodes as u64,
            patched_rows: stats.patched_rows as u64,
            patched_slots: stats.patched_slots as u64,
            edges_reweighed: stats.edges_reweighed as u64,
            edges_swept: stats.edges_swept as u64,
            edges_rekeyed: stats.edges_rekeyed as u64,
            retention_flips: stats.retention_flips as u64,
            threshold_crossers: stats.threshold_crossers as u64,
            pairs_added: delta.added.len() as u64,
            pairs_retracted: delta.retracted.len() as u64,
            cleaner_dirty_keys: drained_keys as u64,
            cleaner_removed_members: drained_members as u64,
            cleaner_touched_profiles: drained_profiles as u64,
            sharded_commits: u64::from(stats.shards > 1),
            frontier_pairs: stats.frontier_pairs as u64,
            retained: retained_len as i64,
            blocks: outcome.blocks as i64,
            live_edges: self.blocker.live_edges() as i64,
            cached_accumulators: self.blocker.cached_accumulators() as i64,
            interned_symbols: self.index.interned_tokens() as i64,
            shard_imbalance_permille: stats.shard_imbalance_permille as i64,
            cold_evictions,
            cold_rehydrations,
            cold_resident_bytes: cold.cold_bytes as i64,
        });
        CommitOutcome {
            delta,
            stats,
            retained_len,
            blocks: outcome.blocks as usize,
            timings,
        }
    }

    /// Forces the next commit onto the degraded-full repair tier (tier 3)
    /// regardless of what moved — the testing/operational escape hatch
    /// that keeps the rarely-exercised fallback exercised (see
    /// [`crate::IncrementalMetaBlocker::force_full_next`]).
    pub fn force_full_repair(&mut self) {
        self.blocker.force_full_next();
    }

    /// Whether mutations are waiting for a commit.
    pub fn has_pending(&self) -> bool {
        self.pending
    }

    /// Freezes the store into the batch input (see
    /// [`MutableProfileStore::materialize`]).
    pub fn materialize(&self) -> ErInput {
        self.store.materialize()
    }

    /// The from-scratch batch counterpart on the materialised input — what
    /// the equivalence contract compares [`IncrementalPipeline::retained`]
    /// against. (Off the commit path, so it *does* build a fresh snapshot.)
    pub fn batch_retained(&self) -> RetainedPairs {
        let input = self.materialize();
        let blocks = self.batch_blocks(&input);
        let mut ctx = GraphSnapshot::build(&blocks);
        if let Some(p) = &self.partitioning {
            ctx = ctx.with_block_entropies(p.block_entropies(&blocks));
        }
        if self.weigher.requires_degrees() {
            ctx.ensure_degrees();
        }
        self.blocker.pruning().batch_prune(&ctx, &*self.weigher)
    }

    /// The batch blocking + cleaning counterpart on an input.
    pub fn batch_blocks(&self, input: &ErInput) -> BlockCollection {
        let blocking = TokenBlocking::with_tokenizer(self.tokenizer.clone());
        let blocks = match &self.partitioning {
            Some(p) => blocking.build_with(input, p),
            None => blocking.build(input),
        };
        let config = self.cleaner.config();
        let blocks = if config.purging {
            BlockPurging::new()
                .max_profile_fraction(config.purge_fraction)
                .purge(&blocks)
        } else {
            blocks
        };
        if config.filtering {
            BlockFiltering::with_ratio(config.filter_ratio).filter(&blocks)
        } else {
            blocks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_graph::meta::PruningAlgorithm;
    use blast_graph::weights::WeightingScheme;

    fn wnp1() -> IncrementalPruning {
        IncrementalPruning::Traditional(PruningAlgorithm::Wnp1)
    }

    #[test]
    fn stream_inserts_match_batch_at_every_commit() {
        let mut p =
            IncrementalPipeline::dirty(WeightingScheme::Cbs, wnp1(), CleaningConfig::default());
        let rows = [
            "john abram jr car seller 1985 main street",
            "ellen smith 85 retail abram st 30 ny",
            "jon jr abram 85 car retail main st",
            "ellen smith may 10 1985 retailer abram street ny",
            "marie curie physics",
        ];
        for (i, row) in rows.iter().enumerate() {
            p.insert(SourceId(0), &format!("p{i}"), [("text", *row)]);
            let out = p.commit();
            assert_eq!(p.retained().pairs(), p.batch_retained().pairs(), "step {i}");
            assert_eq!(out.retained_len, p.retained().len());
            assert_eq!(
                p.snapshot().version(),
                (i + 1) as u64,
                "one apply per commit"
            );
        }
    }

    #[test]
    fn update_and_delete_emit_retractions() {
        let mut p =
            IncrementalPipeline::dirty(WeightingScheme::Cbs, wnp1(), CleaningConfig::none());
        let a = p.insert(SourceId(0), "a", [("t", "alpha beta gamma")]);
        let _b = p.insert(SourceId(0), "b", [("t", "alpha beta gamma")]);
        let out = p.commit();
        assert_eq!(out.retained_len, 1, "the twin pair is retained");
        assert_eq!(out.delta.added.len(), 1);

        // Deleting one endpoint retracts the pair.
        p.delete(a);
        let out = p.commit();
        assert_eq!(out.delta.retracted.len(), 1);
        assert_eq!(p.retained().len(), 0);
        assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
    }

    #[test]
    fn empty_commit_is_a_noop() {
        let mut p =
            IncrementalPipeline::dirty(WeightingScheme::Cbs, wnp1(), CleaningConfig::default());
        p.insert(SourceId(0), "a", [("t", "x y")]);
        p.commit();
        assert!(!p.has_pending());
        let out = p.commit();
        assert!(out.delta.is_empty());
        assert_eq!(out.stats.patched_rows, 0, "nothing to patch");
    }

    #[test]
    fn clean_clean_stream_matches_batch() {
        let mut p = IncrementalPipeline::clean_clean(
            3,
            WeightingScheme::Js,
            IncrementalPruning::Traditional(PruningAlgorithm::Wnp2),
            CleaningConfig::default(),
        );
        p.insert(
            SourceId(0),
            "a0",
            [("name", "john abram"), ("year", "1985")],
        );
        p.insert(SourceId(1), "b0", [("title", "john abram 1985")]);
        p.commit();
        assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
        p.insert(SourceId(0), "a1", [("name", "ellen smith"), ("year", "85")]);
        p.insert(SourceId(1), "b1", [("title", "ellen smith 85")]);
        p.commit();
        assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
        // Cross-separator pairs only.
        for (x, y) in p.retained().iter() {
            assert!(x.0 < 3 && y.0 >= 3);
        }
    }

    /// A WEP mean drift must flip *clean* edges — nodes the micro-batch
    /// never touched — via the ordered weight index's frontier band, and
    /// report them as threshold crossers.
    #[test]
    fn wep_mean_drift_flips_clean_edges() {
        let mut p = IncrementalPipeline::dirty(
            WeightingScheme::Cbs,
            IncrementalPruning::Traditional(PruningAlgorithm::Wep),
            CleaningConfig::none(),
        );
        p.insert(SourceId(0), "a", [("t", "x y")]);
        p.insert(SourceId(0), "b", [("t", "x y")]);
        let out = p.commit();
        // Single edge (0,1) at CBS weight 2; Θ = 2 → retained.
        assert_eq!(out.retained_len, 1);

        // A disjoint, heavier twin pair: edge (2,3) at weight 4. Θ moves to
        // 3, so the untouched edge (0,1) drops — nodes 0 and 1 are clean,
        // the flip must come from the frontier band.
        p.insert(SourceId(0), "c", [("t", "p q r s")]);
        p.insert(SourceId(0), "d", [("t", "p q r s")]);
        let out = p.commit();
        assert!(!out.stats.is_full(), "disjoint insert must not degrade");
        assert_eq!(out.stats.threshold_crossers, 1, "clean edge crossed Θ");
        assert_eq!(
            out.delta.retracted,
            vec![(ProfileId(0), ProfileId(1))],
            "the clean survivor is retracted by mean drift"
        );
        assert_eq!(out.delta.added, vec![(ProfileId(2), ProfileId(3))]);
        assert_eq!(p.retained().pairs(), p.batch_retained().pairs());
    }

    #[test]
    fn footprint_counters_track_the_structures() {
        let mut p = IncrementalPipeline::dirty(
            WeightingScheme::Cbs,
            IncrementalPruning::Traditional(PruningAlgorithm::Wep),
            CleaningConfig::none(),
        );
        let empty = p.footprint();
        assert_eq!(empty.live_edges, 0);
        assert_eq!(empty.interned_tokens, 0);

        p.insert(SourceId(0), "a", [("t", "alpha beta")]);
        p.insert(SourceId(0), "b", [("t", "alpha beta")]);
        p.insert(SourceId(0), "c", [("t", "alpha gamma")]);
        p.commit();
        let fp = p.footprint();
        // Edges: (a,b), (a,c), (b,c) share blocks alpha/beta/gamma.
        assert_eq!(fp.live_edges, 3);
        assert_eq!(
            fp.cached_accumulators,
            2 * fp.live_edges,
            "one packed entry per direction"
        );
        assert_eq!(fp.interned_tokens, 3, "alpha, beta, gamma");
        assert!(fp.store_bytes > 0);
        assert!(fp.index_bytes > 0);
        assert!(fp.snapshot_bytes > 0);
        assert!(fp.blocker_bytes > 0);
        assert_eq!(
            fp.total_bytes(),
            fp.store_bytes + fp.index_bytes + fp.snapshot_bytes + fp.blocker_bytes
        );

        // Deleting everything drains the live counters.
        for pid in 0..3 {
            p.delete(ProfileId(pid));
        }
        p.commit();
        let fp = p.footprint();
        assert_eq!(fp.live_edges, 0);
        assert_eq!(fp.cached_accumulators, 0);
        assert_eq!(fp.interned_tokens, 3, "interned strings are permanent");
    }

    #[test]
    fn zero_budget_stream_matches_batch_and_evicts() {
        // budget 0 + idle 0: every evictable row is demoted after every
        // commit — the adversarial extreme of the residency policy.
        let mut p =
            IncrementalPipeline::dirty(WeightingScheme::Cbs, wnp1(), CleaningConfig::default())
                .with_residency(ResidencyPolicy {
                    budget_bytes: 0,
                    idle_commits: 0,
                    spill: false,
                });
        let rows = [
            "john abram jr car seller 1985 main street",
            "ellen smith 85 retail abram st 30 ny",
            "jon jr abram 85 car retail main st",
            "ellen smith may 10 1985 retailer abram street ny",
            "marie curie physics",
        ];
        for (i, row) in rows.iter().enumerate() {
            p.insert(SourceId(0), &format!("p{i}"), [("text", *row)]);
            p.commit();
            assert_eq!(p.retained().pairs(), p.batch_retained().pairs(), "step {i}");
        }
        let cold = p.cold_stats();
        assert!(cold.evictions > 0, "zero budget must demote rows");
        assert!(cold.rehydrations > 0, "later commits must read cold rows");
        let fp = p.footprint();
        assert!(fp.cold_bytes > 0, "frames stay in the in-memory arena");
        assert_eq!(fp.spilled_bytes, 0, "spill disabled");
        // Spilled variant: identical answers, frames on disk.
        let mut s =
            IncrementalPipeline::dirty(WeightingScheme::Cbs, wnp1(), CleaningConfig::default())
                .with_residency(ResidencyPolicy {
                    budget_bytes: 0,
                    idle_commits: 0,
                    spill: true,
                });
        for (i, row) in rows.iter().enumerate() {
            s.insert(SourceId(0), &format!("p{i}"), [("text", *row)]);
            s.commit();
        }
        assert_eq!(s.retained().pairs(), p.retained().pairs());
        let fp = s.footprint();
        assert_eq!(fp.cold_bytes, 0, "frames live in the spill file");
        assert!(fp.spilled_bytes > 0);
    }

    #[test]
    fn commit_records_phase_timings() {
        let mut p =
            IncrementalPipeline::dirty(WeightingScheme::Cbs, wnp1(), CleaningConfig::default());
        p.insert(SourceId(0), "a", [("t", "x y z")]);
        p.insert(SourceId(0), "b", [("t", "x y w")]);
        let out = p.commit();
        assert!(out.timings.index_secs > 0.0, "insert time accrued");
        assert!(out.timings.total_secs() >= out.timings.repair_secs);
    }
}
