//! Incremental meta-blocking for entity resolution.
//!
//! The batch BLAST pipeline freezes its input: any new, corrected or
//! withdrawn profile forces a full re-run of blocking, weighting and
//! pruning. This subsystem makes the whole chain *mutable*:
//!
//! * [`store::MutableProfileStore`] — an evolving ER input with a stable
//!   global id space (deletion = tombstone);
//! * [`index::IncrementalBlockIndex`] — the inverted `(cluster, token)`
//!   block index under `insert`/`update`/`delete`, tracking exactly which
//!   posting lists a micro-batch touched;
//! * [`cleaner::IncrementalCleaner`] — Block Purging + Block Filtering
//!   re-applied only to the dirty blocks and profiles;
//! * [`graph::IncrementalMetaBlocker`] — re-weighting and pruning (all six
//!   traditional variants plus BLAST's own) repaired over the dirty
//!   neighbourhoods on the dense scratch-array engine, emitting
//!   candidate-pair deltas;
//! * [`decision`] — the delta-aware decision structures (ordered weight
//!   index with running exact Σw, per-node retained adjacency, CNP
//!   containment counters) that keep the pruning *decisions* — not just
//!   the artefact maintenance — off the full edge list;
//! * [`pipeline::IncrementalPipeline`] — the end-to-end streaming pipeline.
//!
//! ## Per-stage commit complexity
//!
//! With D = dirty nodes, E_D = their incident edges, F = retention flips
//! and ‖B′‖ = retained comparisons, a non-degraded commit costs:
//!
//! | stage | work | cost |
//! |-------|------|------|
//! | index | token re-keying + posting diffs | O(batch tokens) |
//! | cleaning | purging/filtering on dirty blocks | O(dirty blocks) |
//! | snapshot | CSR row splices + slot patches | O(delta) |
//! | artefacts | re-weigh E_D, dirty thresholds / top-k lists | O(E_D log) |
//! | decision | frontier move + flip emission + retained surgery | O((E_D + F) log \|E\|) |
//!
//! No per-commit stage iterates all edges, all nodes, or all retained
//! pairs; the flat [`blast_graph::retained::RetainedPairs`] view is
//! materialised lazily on read and the [`graph::PairDelta`] is emitted
//! from the flips directly. Degraded-full passes (see below) run the same
//! flip-emitting code with every node dirty.
//!
//! **The contract:** after any sequence of mutations, the incremental
//! candidate set is **bit-identical** to a from-scratch batch run on the
//! final collection. Soundness comes from scheme-aware dirtiness
//! propagation ([`blast_graph::weights::WeightDeps`]) and the three-tier
//! **repair ladder** ([`graph::RepairTier`]): a commit that moved no
//! global statistic repairs the dirty neighbourhood alone (tier 1); a
//! commit that only drifted a global *scalar* (|B| for χ²/ECBS; degrees /
//! |E_G| for EJS — delta-maintained [`blast_graph::GraphSnapshot`]
//! fields now; the per-node top-k budget for CNP) re-derives every clean
//! edge's weight from its cached
//! accumulator (tier 2, no block traversal); only genuinely structural
//! invalidation (first pass, forced degradation) runs
//! the full recompute over the identical flip-emitting code path (tier 3)
//! — never a different answer. WEP's global mean — a function of *every*
//! edge weight — stays maintainable because both the batch and the
//! incremental path compute it through the exact, order-independent
//! [`blast_graph::exact_sum::ExactSum`] accumulator.

pub mod cleaner;
pub mod decision;
pub mod graph;
pub mod index;
pub mod pipeline;
pub mod shard;
pub mod store;

pub use cleaner::{CleaningConfig, IncrementalCleaner};
pub use decision::{ContainmentIndex, EdgeAdjacency, EdgeKey, Frontier, OrderedWeightIndex};
pub use graph::{IncrementalMetaBlocker, IncrementalPruning, PairDelta, RepairStats, RepairTier};
pub use index::IncrementalBlockIndex;
pub use pipeline::{
    CommitOutcome, CommitTimings, IncrementalPipeline, MemoryFootprint, ResidencyPolicy,
};
pub use shard::{ShardPlan, ShardStats};
pub use store::{MutableProfileStore, StoreMode};
