//! Incremental meta-blocking for entity resolution.
//!
//! The batch BLAST pipeline freezes its input: any new, corrected or
//! withdrawn profile forces a full re-run of blocking, weighting and
//! pruning. This subsystem makes the whole chain *mutable*:
//!
//! * [`store::MutableProfileStore`] — an evolving ER input with a stable
//!   global id space (deletion = tombstone);
//! * [`index::IncrementalBlockIndex`] — the inverted `(cluster, token)`
//!   block index under `insert`/`update`/`delete`, tracking exactly which
//!   posting lists a micro-batch touched;
//! * [`cleaner::IncrementalCleaner`] — Block Purging + Block Filtering
//!   re-applied only to the dirty blocks and profiles;
//! * [`graph::IncrementalMetaBlocker`] — re-weighting and pruning (all six
//!   traditional variants plus BLAST's own) repaired over the dirty
//!   neighbourhoods on the dense scratch-array engine, emitting
//!   candidate-pair deltas;
//! * [`pipeline::IncrementalPipeline`] — the end-to-end streaming pipeline.
//!
//! **The contract:** after any sequence of mutations, the incremental
//! candidate set is **bit-identical** to a from-scratch batch run on the
//! final collection. Soundness comes from scheme-aware dirtiness
//! propagation ([`blast_graph::weights::WeightDeps`]): when a mutation
//! moves a global statistic that the weighting scheme reads and that the
//! dirty set cannot bound, the repair degrades to a full recompute over the
//! identical code path — never to a different answer.

pub mod cleaner;
pub mod graph;
pub mod index;
pub mod pipeline;
pub mod store;

pub use cleaner::{CleaningConfig, IncrementalCleaner};
pub use graph::{IncrementalMetaBlocker, IncrementalPruning, PairDelta, RepairStats};
pub use index::IncrementalBlockIndex;
pub use pipeline::{CommitOutcome, CommitTimings, IncrementalPipeline};
pub use store::{MutableProfileStore, StoreMode};
