//! The incremental inverted block index.
//!
//! The batch [`TokenBlocking`](blast_blocking::token_blocking::TokenBlocking)
//! pass rebuilds every posting list from scratch; this index instead keeps
//! the `(cluster, token) → sorted posting list` map **mutable**: setting a
//! profile's key set diffs it against the previous one and touches only the
//! postings that actually change. Every touched key is recorded as *dirty*
//! so the downstream cleaning and graph-repair stages can restrict
//! themselves to the affected blocks.
//!
//! Keys live in a slab and are additionally kept in a canonically sorted
//! list (`(cluster, token)` ascending) — the exact block order batch Token
//! Blocking emits — so a snapshot of this index is **identical**, block ids
//! included, to a from-scratch blocking run on the materialised input.

use blast_blocking::block::Block;
use blast_blocking::collection::BlockCollection;
use blast_blocking::key::ClusterId;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::hash::FastMap;

/// Stable handle of a `(cluster, token)` key in the slab.
pub type KeyId = u32;

/// One blocking key and its members.
#[derive(Debug, Clone)]
pub struct KeyEntry {
    /// The attribute cluster the key belongs to.
    pub cluster: ClusterId,
    /// The token (without the `#c` disambiguation suffix).
    pub token: Box<str>,
    /// Sorted global profile ids currently carrying this key.
    pub postings: Vec<ProfileId>,
}

/// What changed since the last [`IncrementalBlockIndex::drain_dirty`].
#[derive(Debug, Default)]
pub struct DirtyDrain {
    /// Keys whose posting list changed (sorted, deduplicated).
    pub keys: Vec<KeyId>,
    /// Profiles removed from at least one dirty key (old members that the
    /// current postings no longer show).
    pub removed_members: Vec<u32>,
    /// Profiles whose own key list changed (sorted, deduplicated).
    pub touched_profiles: Vec<u32>,
}

impl DirtyDrain {
    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.touched_profiles.is_empty()
    }
}

/// The mutable `(cluster, token) → postings` index with dirty tracking.
#[derive(Debug)]
pub struct IncrementalBlockIndex {
    keys: Vec<KeyEntry>,
    /// token → [(cluster, key id)] (usually one entry; looked up by `&str`
    /// so interning allocates only for genuinely new tokens).
    by_token: FastMap<Box<str>, Vec<(ClusterId, KeyId)>>,
    /// Key ids sorted by `(cluster, token)` — the canonical block order.
    sorted: Vec<KeyId>,
    /// Per-profile sorted key-id lists (the raw, pre-cleaning memberships).
    profile_keys: Vec<Vec<KeyId>>,
    /// Whether labels carry the `#c{n}` suffix (more than one cluster).
    multi_cluster: bool,
    /// Lazily-maintained length buckets: every posting mutation pushes the
    /// key onto the bucket of its *new* length (stale entries are filtered
    /// by the reader). Lets the cleaner re-evaluate purging after a
    /// threshold move by visiting only the lengths that crossed the
    /// boundary instead of scanning every key.
    by_len: Vec<Vec<KeyId>>,
    // -- dirty state since the last drain --
    dirty_flags: Vec<bool>,
    dirty_keys: Vec<KeyId>,
    removed_members: Vec<u32>,
    touched_profiles: Vec<u32>,
}

impl IncrementalBlockIndex {
    /// An empty index. `multi_cluster` must match the key disambiguator the
    /// pipeline uses (it controls the `#c{n}` label suffix, exactly like
    /// batch Token Blocking's `cluster_count() > 1`).
    pub fn new(multi_cluster: bool) -> Self {
        Self {
            keys: Vec::new(),
            by_token: FastMap::default(),
            sorted: Vec::new(),
            profile_keys: Vec::new(),
            multi_cluster,
            by_len: Vec::new(),
            dirty_flags: Vec::new(),
            dirty_keys: Vec::new(),
            removed_members: Vec::new(),
            touched_profiles: Vec::new(),
        }
    }

    /// Number of keys ever created (dead keys with empty postings included).
    #[inline]
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// The slab entry of a key.
    #[inline]
    pub fn key(&self, id: KeyId) -> &KeyEntry {
        &self.keys[id as usize]
    }

    /// The key ids in canonical `(cluster, token)` order (including keys
    /// whose postings are currently empty).
    #[inline]
    pub fn ordered_keys(&self) -> &[KeyId] {
        &self.sorted
    }

    /// The raw (pre-cleaning) key list of a profile, sorted by key id.
    pub fn profile_keys(&self, pid: u32) -> &[KeyId] {
        self.profile_keys
            .get(pid as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The display label of a key (batch Token Blocking's block label).
    pub fn label(&self, id: KeyId) -> String {
        let entry = &self.keys[id as usize];
        if self.multi_cluster {
            format!("{}#c{}", entry.token, entry.cluster.0)
        } else {
            entry.token.to_string()
        }
    }

    /// Replaces the key set of `pid` with `new_keys` (cluster, token pairs;
    /// duplicates allowed — they are deduplicated here, mirroring the
    /// per-profile dedup of batch Token Blocking). Updates postings and
    /// dirty state by diffing against the profile's previous key set.
    pub fn set_profile<'a>(
        &mut self,
        pid: u32,
        new_keys: impl IntoIterator<Item = (ClusterId, &'a str)>,
    ) {
        if self.profile_keys.len() <= pid as usize {
            self.profile_keys.resize_with(pid as usize + 1, Vec::new);
        }
        let mut ids: Vec<KeyId> = new_keys
            .into_iter()
            .map(|(cluster, token)| self.intern_key(cluster, token))
            .collect();
        ids.sort_unstable();
        ids.dedup();

        let old = std::mem::take(&mut self.profile_keys[pid as usize]);
        let mut changed = false;
        // Merge-diff the sorted id lists.
        let (mut i, mut j) = (0, 0);
        while i < old.len() || j < ids.len() {
            match (old.get(i), ids.get(j)) {
                (Some(&o), Some(&n)) if o == n => {
                    i += 1;
                    j += 1;
                }
                (Some(&o), Some(&n)) if o < n => {
                    self.remove_member(o, pid);
                    changed = true;
                    i += 1;
                }
                (Some(_), Some(&n)) => {
                    self.add_member(n, pid);
                    changed = true;
                    j += 1;
                }
                (Some(&o), None) => {
                    self.remove_member(o, pid);
                    changed = true;
                    i += 1;
                }
                (None, Some(&n)) => {
                    self.add_member(n, pid);
                    changed = true;
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        if changed {
            self.touched_profiles.push(pid);
        }
        self.profile_keys[pid as usize] = ids;
    }

    /// Removes all keys of `pid` (profile deletion).
    pub fn clear_profile(&mut self, pid: u32) {
        self.set_profile(pid, std::iter::empty());
    }

    /// Takes the accumulated dirty state, resetting it.
    pub fn drain_dirty(&mut self) -> DirtyDrain {
        let mut keys = std::mem::take(&mut self.dirty_keys);
        for &k in &keys {
            self.dirty_flags[k as usize] = false;
        }
        keys.sort_unstable();
        let mut removed = std::mem::take(&mut self.removed_members);
        removed.sort_unstable();
        removed.dedup();
        let mut touched = std::mem::take(&mut self.touched_profiles);
        touched.sort_unstable();
        touched.dedup();
        DirtyDrain {
            keys,
            removed_members: removed,
            touched_profiles: touched,
        }
    }

    /// A from-scratch [`BlockCollection`] of the **raw** (uncleaned) index:
    /// bit-identical to batch Token Blocking on the materialised input —
    /// same blocks, same labels, same canonical order, invalid blocks
    /// dropped the same way.
    pub fn snapshot_raw(
        &self,
        clean_clean: bool,
        separator: u32,
        total_profiles: u32,
    ) -> BlockCollection {
        let blocks = self
            .sorted
            .iter()
            .filter_map(|&kid| {
                let entry = &self.keys[kid as usize];
                if entry.postings.is_empty() {
                    return None;
                }
                let block = Block::new(
                    self.label(kid),
                    entry.cluster,
                    entry.postings.clone(),
                    separator,
                );
                block.is_valid(clean_clean).then_some(block)
            })
            .collect();
        BlockCollection::new(blocks, clean_clean, separator, total_profiles)
    }

    fn intern_key(&mut self, cluster: ClusterId, token: &str) -> KeyId {
        if let Some(ids) = self.by_token.get(token) {
            if let Some(&(_, id)) = ids.iter().find(|&&(c, _)| c == cluster) {
                return id;
            }
        }
        let id = self.keys.len() as KeyId;
        // Keep the canonical order: insert at the sorted position.
        let pos = self.sorted.partition_point(|&k| {
            let e = &self.keys[k as usize];
            (e.cluster, &*e.token) < (cluster, token)
        });
        self.keys.push(KeyEntry {
            cluster,
            token: Box::from(token),
            postings: Vec::new(),
        });
        match self.by_token.get_mut(token) {
            Some(ids) => ids.push((cluster, id)),
            None => {
                self.by_token.insert(Box::from(token), vec![(cluster, id)]);
            }
        }
        self.dirty_flags.push(false);
        self.sorted.insert(pos, id);
        id
    }

    fn mark_dirty(&mut self, key: KeyId) {
        if !self.dirty_flags[key as usize] {
            self.dirty_flags[key as usize] = true;
            self.dirty_keys.push(key);
        }
    }

    fn add_member(&mut self, key: KeyId, pid: u32) {
        let postings = &mut self.keys[key as usize].postings;
        let pos = postings.partition_point(|p| p.0 < pid);
        debug_assert!(
            postings.get(pos).map(|p| p.0) != Some(pid),
            "duplicate member"
        );
        postings.insert(pos, ProfileId(pid));
        let len = postings.len();
        self.push_len_bucket(key, len);
        self.mark_dirty(key);
    }

    fn remove_member(&mut self, key: KeyId, pid: u32) {
        let postings = &mut self.keys[key as usize].postings;
        let pos = postings.partition_point(|p| p.0 < pid);
        debug_assert_eq!(postings.get(pos).map(|p| p.0), Some(pid), "missing member");
        postings.remove(pos);
        let len = postings.len();
        self.push_len_bucket(key, len);
        self.removed_members.push(pid);
        self.mark_dirty(key);
    }

    fn push_len_bucket(&mut self, key: KeyId, len: usize) {
        if self.by_len.len() <= len {
            self.by_len.resize_with(len + 1, Vec::new);
        }
        let bucket = &mut self.by_len[len];
        bucket.push(key);
        // Lazy entries accumulate one per mutation; compact when the bucket
        // doubles past a floor so memory stays proportional to the keys
        // *currently* at this length (amortised O(1) per push) instead of
        // growing with the whole mutation history.
        if bucket.len() >= 32 && bucket.len().is_power_of_two() {
            let keys = &self.keys;
            bucket.sort_unstable();
            bucket.dedup();
            bucket.retain(|&k| keys[k as usize].postings.len() == len);
        }
    }

    /// The keys that at some point held exactly `len` postings (lazy
    /// bucket: entries may be stale — callers must re-check
    /// `key(k).postings.len()` — and may repeat).
    pub fn keys_of_len(&self, len: usize) -> &[KeyId] {
        self.by_len.get(len).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn glue(tokens: &[&'static str]) -> Vec<(ClusterId, &'static str)> {
        tokens.iter().map(|&t| (ClusterId::GLUE, t)).collect()
    }

    #[test]
    fn set_profile_diffs_postings() {
        let mut idx = IncrementalBlockIndex::new(false);
        idx.set_profile(0, glue(&["abram", "john"]));
        idx.set_profile(1, glue(&["abram", "ellen"]));
        let d = idx.drain_dirty();
        assert_eq!(d.touched_profiles, vec![0, 1]);
        assert!(d.removed_members.is_empty());

        // Update profile 0: drops "john", keeps "abram", gains "jr".
        idx.set_profile(0, glue(&["abram", "jr"]));
        let d = idx.drain_dirty();
        assert_eq!(d.touched_profiles, vec![0]);
        assert_eq!(d.removed_members, vec![0]);
        // Dirty keys: john (lost 0) and jr (gained 0) — not abram.
        let labels: Vec<String> = d.keys.iter().map(|&k| idx.label(k)).collect();
        assert!(labels.contains(&"john".to_string()));
        assert!(labels.contains(&"jr".to_string()));
        assert!(!labels.contains(&"abram".to_string()));
    }

    #[test]
    fn unchanged_set_is_not_dirty() {
        let mut idx = IncrementalBlockIndex::new(false);
        idx.set_profile(0, glue(&["a", "b"]));
        idx.drain_dirty();
        idx.set_profile(0, glue(&["b", "a", "a"]));
        assert!(idx.drain_dirty().is_empty());
    }

    #[test]
    fn snapshot_drops_invalid_blocks_and_orders_canonically() {
        let mut idx = IncrementalBlockIndex::new(false);
        idx.set_profile(0, glue(&["zeta", "shared"]));
        idx.set_profile(1, glue(&["alpha", "shared"]));
        let blocks = idx.snapshot_raw(false, 2, 2);
        // Singletons are invalid for dirty ER; only "shared" survives.
        assert_eq!(blocks.len(), 1);
        assert_eq!(&*blocks.blocks()[0].label, "shared");
        // Make alpha/zeta valid and check the canonical order.
        idx.set_profile(0, glue(&["zeta", "alpha", "shared"]));
        idx.set_profile(1, glue(&["zeta", "alpha", "shared"]));
        let blocks = idx.snapshot_raw(false, 2, 2);
        let labels: Vec<&str> = blocks.blocks().iter().map(|b| &*b.label).collect();
        assert_eq!(labels, vec!["alpha", "shared", "zeta"]);
    }

    #[test]
    fn clear_profile_empties_its_keys() {
        let mut idx = IncrementalBlockIndex::new(false);
        idx.set_profile(0, glue(&["x", "y"]));
        idx.set_profile(1, glue(&["x"]));
        idx.drain_dirty();
        idx.clear_profile(0);
        let d = idx.drain_dirty();
        assert_eq!(d.removed_members, vec![0]);
        assert_eq!(idx.profile_keys(0), &[] as &[KeyId]);
        let blocks = idx.snapshot_raw(false, 2, 2);
        assert!(blocks.is_empty(), "x became a singleton, y empty");
    }

    #[test]
    fn multi_cluster_labels_match_batch_convention() {
        let mut idx = IncrementalBlockIndex::new(true);
        idx.set_profile(0, vec![(ClusterId(1), "abram"), (ClusterId::GLUE, "abram")]);
        idx.set_profile(1, vec![(ClusterId(1), "abram"), (ClusterId::GLUE, "abram")]);
        let blocks = idx.snapshot_raw(false, 2, 2);
        let labels: Vec<&str> = blocks.blocks().iter().map(|b| &*b.label).collect();
        assert_eq!(labels, vec!["abram#c0", "abram#c1"]);
    }
}
