//! The incremental inverted block index.
//!
//! The batch [`TokenBlocking`](blast_blocking::token_blocking::TokenBlocking)
//! pass rebuilds every posting list from scratch; this index instead keeps
//! the `(cluster, token) → sorted posting list` map **mutable**: setting a
//! profile's key set diffs it against the previous one and touches only the
//! postings that actually change. Every touched key is recorded as *dirty*
//! so the downstream cleaning and graph-repair stages can restrict
//! themselves to the affected blocks.
//!
//! Keys live in a slab and are additionally kept in a canonically sorted
//! list (`(cluster, token)` ascending) — the exact block order batch Token
//! Blocking emits — so a snapshot of this index is **identical**, block ids
//! included, to a from-scratch blocking run on the materialised input.
//!
//! Token strings are interned: each distinct token is allocated once in a
//! [`blast_datamodel::interner::Interner`] and keys carry its dense `u32`
//! [`Symbol`], shrinking the slab entries to a fixed size and turning the
//! former `token → keys` hash map into a symbol-indexed vector.

use blast_blocking::block::Block;
use blast_blocking::collection::BlockCollection;
use blast_blocking::key::ClusterId;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::interner::{Interner, Symbol};
use blast_graph::cold::{decode_u32s, encode_u32s};
use blast_graph::{ColdStats, ColdStore, FrameRef, SpillBackend};

/// Stable handle of a `(cluster, token)` key in the slab.
pub type KeyId = u32;

/// Where a posting list currently lives: in its hot `Vec` or demoted to a
/// delta-encoded frame in the index's [`ColdStore`].
#[derive(Debug, Clone)]
enum PostingsSlot {
    Hot(Vec<ProfileId>),
    Cold { frame: FrameRef, len: u32 },
}

/// One blocking key and its members.
///
/// The token is an interned [`Symbol`] — each distinct token string is
/// stored once in the index's interner no matter how many clusters carry
/// it, so the slab entry stays fixed-size and posting maintenance never
/// touches string storage. Posting lists are read through
/// [`IncrementalBlockIndex::with_postings`] (a budgeted index may hold
/// them in the cold tier) and their length through
/// [`KeyEntry::postings_len`].
#[derive(Debug, Clone)]
pub struct KeyEntry {
    /// The attribute cluster the key belongs to.
    pub cluster: ClusterId,
    /// Interned token (without the `#c` disambiguation suffix); resolve via
    /// [`IncrementalBlockIndex::token_str`] / [`IncrementalBlockIndex::canon_key`].
    pub token: Symbol,
    /// Sorted global profile ids currently carrying this key, hot or cold.
    slot: PostingsSlot,
}

impl KeyEntry {
    /// Number of profiles currently carrying this key (no decode — cold
    /// slots record their length in the handle).
    #[inline]
    pub fn postings_len(&self) -> usize {
        match &self.slot {
            PostingsSlot::Hot(v) => v.len(),
            PostingsSlot::Cold { len, .. } => *len as usize,
        }
    }

    /// Whether the posting list is currently demoted to the cold tier.
    #[inline]
    pub fn is_cold(&self) -> bool {
        matches!(self.slot, PostingsSlot::Cold { .. })
    }
}

/// Residency state of a budgeted index: the cold frame store plus a
/// per-key last-touch epoch driving the idle-eviction policy.
#[derive(Debug)]
struct IndexResidency {
    store: ColdStore,
    /// Epoch of the last mutation of each key (parallel to `keys`).
    touch: Vec<u32>,
    /// Bumped once per [`IncrementalBlockIndex::enforce_residency`] round.
    epoch: u32,
}

/// What changed since the last [`IncrementalBlockIndex::drain_dirty`].
#[derive(Debug, Default)]
pub struct DirtyDrain {
    /// Keys whose posting list changed (sorted, deduplicated).
    pub keys: Vec<KeyId>,
    /// Profiles removed from at least one dirty key (old members that the
    /// current postings no longer show).
    pub removed_members: Vec<u32>,
    /// Profiles whose own key list changed (sorted, deduplicated).
    pub touched_profiles: Vec<u32>,
}

impl DirtyDrain {
    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.touched_profiles.is_empty()
    }
}

/// The mutable `(cluster, token) → postings` index with dirty tracking.
#[derive(Debug)]
pub struct IncrementalBlockIndex {
    keys: Vec<KeyEntry>,
    /// Token string ↔ symbol store (each distinct token allocated once).
    tokens: Interner,
    /// symbol → [(cluster, key id)] (usually one entry) — the dense
    /// replacement of the former `token → keys` hash map.
    token_keys: Vec<Vec<(ClusterId, KeyId)>>,
    /// Key ids sorted by `(cluster, token)` — the canonical block order.
    sorted: Vec<KeyId>,
    /// Per-profile sorted key-id lists (the raw, pre-cleaning memberships).
    profile_keys: Vec<Vec<KeyId>>,
    /// Whether labels carry the `#c{n}` suffix (more than one cluster).
    multi_cluster: bool,
    /// Lazily-maintained length buckets: every posting mutation pushes the
    /// key onto the bucket of its *new* length (stale entries are filtered
    /// by the reader). Lets the cleaner re-evaluate purging after a
    /// threshold move by visiting only the lengths that crossed the
    /// boundary instead of scanning every key.
    by_len: Vec<Vec<KeyId>>,
    // -- dirty state since the last drain --
    dirty_flags: Vec<bool>,
    dirty_keys: Vec<KeyId>,
    removed_members: Vec<u32>,
    touched_profiles: Vec<u32>,
    /// Cold-tier state when the pipeline runs under a memory budget.
    residency: Option<Box<IndexResidency>>,
}

impl IncrementalBlockIndex {
    /// An empty index. `multi_cluster` must match the key disambiguator the
    /// pipeline uses (it controls the `#c{n}` label suffix, exactly like
    /// batch Token Blocking's `cluster_count() > 1`).
    pub fn new(multi_cluster: bool) -> Self {
        Self {
            keys: Vec::new(),
            tokens: Interner::new(),
            token_keys: Vec::new(),
            sorted: Vec::new(),
            profile_keys: Vec::new(),
            multi_cluster,
            by_len: Vec::new(),
            dirty_flags: Vec::new(),
            dirty_keys: Vec::new(),
            removed_members: Vec::new(),
            touched_profiles: Vec::new(),
            residency: None,
        }
    }

    /// Number of keys ever created (dead keys with empty postings included).
    #[inline]
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// The slab entry of a key.
    #[inline]
    pub fn key(&self, id: KeyId) -> &KeyEntry {
        &self.keys[id as usize]
    }

    /// Runs `f` over the posting list of `id`. Hot lists are borrowed
    /// directly; cold ones are decoded transiently (counted as a
    /// rehydration, but **not** promoted — read-only passes like the batch
    /// snapshot must not drag the whole index hot again).
    pub fn with_postings<R>(&self, id: KeyId, f: impl FnOnce(&[ProfileId]) -> R) -> R {
        match &self.keys[id as usize].slot {
            PostingsSlot::Hot(v) => f(v),
            PostingsSlot::Cold { frame, len } => {
                let r = self
                    .residency
                    .as_ref()
                    .expect("cold posting list without residency state");
                let bytes = r
                    .store
                    .get(*frame)
                    .unwrap_or_else(|e| panic!("cold tier: posting list of key {id} lost: {e}"));
                let mut pos = 0;
                let mut ids: Vec<u32> = Vec::with_capacity(*len as usize);
                decode_u32s(&bytes, &mut pos, &mut ids);
                let members: Vec<ProfileId> = ids.into_iter().map(ProfileId).collect();
                f(&members)
            }
        }
    }

    /// The key ids in canonical `(cluster, token)` order (including keys
    /// whose postings are currently empty).
    #[inline]
    pub fn ordered_keys(&self) -> &[KeyId] {
        &self.sorted
    }

    /// The raw (pre-cleaning) key list of a profile, sorted by key id.
    pub fn profile_keys(&self, pid: u32) -> &[KeyId] {
        self.profile_keys
            .get(pid as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The token string of a key (interner-resolved).
    #[inline]
    pub fn token_str(&self, id: KeyId) -> &str {
        self.tokens.resolve(self.keys[id as usize].token)
    }

    /// The canonical `(cluster, token)` identity of a key — the sort key of
    /// the batch block order. Tuples compare exactly like the former
    /// string-owning entries did.
    #[inline]
    pub fn canon_key(&self, id: KeyId) -> (ClusterId, &str) {
        let entry = &self.keys[id as usize];
        (entry.cluster, self.tokens.resolve(entry.token))
    }

    /// Number of distinct token strings interned by this index.
    #[inline]
    pub fn interned_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Estimated resident heap footprint of the index in bytes (capacities,
    /// not lengths; the hash-map overhead of the interner is approximated).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let vec_of_vecs = |rows: &[Vec<KeyId>]| {
            rows.iter()
                .map(|r| r.capacity() * size_of::<KeyId>())
                .sum::<usize>()
                + std::mem::size_of_val(rows)
        };
        self.keys.capacity() * size_of::<KeyEntry>()
            + self
                .keys
                .iter()
                .map(|e| match &e.slot {
                    PostingsSlot::Hot(v) => v.capacity() * size_of::<ProfileId>(),
                    PostingsSlot::Cold { .. } => 0,
                })
                .sum::<usize>()
            + self
                .residency
                .as_ref()
                .map(|r| r.touch.capacity() * size_of::<u32>())
                .unwrap_or(0)
            + self.tokens.resident_bytes()
            + self
                .token_keys
                .iter()
                .map(|r| r.capacity() * size_of::<(ClusterId, KeyId)>())
                .sum::<usize>()
            + self.token_keys.len() * size_of::<Vec<(ClusterId, KeyId)>>()
            + self.sorted.capacity() * size_of::<KeyId>()
            + vec_of_vecs(&self.profile_keys)
            + vec_of_vecs(&self.by_len)
            + self.dirty_flags.capacity()
            + self.dirty_keys.capacity() * size_of::<KeyId>()
    }

    /// The display label of a key (batch Token Blocking's block label).
    pub fn label(&self, id: KeyId) -> String {
        let entry = &self.keys[id as usize];
        let token = self.tokens.resolve(entry.token);
        if self.multi_cluster {
            format!("{}#c{}", token, entry.cluster.0)
        } else {
            token.to_string()
        }
    }

    /// Replaces the key set of `pid` with `new_keys` (cluster, token pairs;
    /// duplicates allowed — they are deduplicated here, mirroring the
    /// per-profile dedup of batch Token Blocking). Updates postings and
    /// dirty state by diffing against the profile's previous key set.
    pub fn set_profile<'a>(
        &mut self,
        pid: u32,
        new_keys: impl IntoIterator<Item = (ClusterId, &'a str)>,
    ) {
        let ids: Vec<(ClusterId, Symbol)> = new_keys
            .into_iter()
            .map(|(cluster, token)| (cluster, self.tokens.intern(token)))
            .collect();
        self.set_profile_symbols(pid, ids);
    }

    /// Interns a token string, returning its dense symbol. Lets callers that
    /// tokenize on the fly feed [`IncrementalBlockIndex::set_profile_symbols`]
    /// without materialising any per-token `String`.
    #[inline]
    pub fn intern_token(&mut self, token: &str) -> Symbol {
        self.tokens.intern(token)
    }

    /// [`IncrementalBlockIndex::set_profile`] with pre-interned tokens — the
    /// allocation-free hot path of the streaming pipeline.
    pub fn set_profile_symbols(
        &mut self,
        pid: u32,
        new_keys: impl IntoIterator<Item = (ClusterId, Symbol)>,
    ) {
        if self.profile_keys.len() <= pid as usize {
            self.profile_keys.resize_with(pid as usize + 1, Vec::new);
        }
        let mut ids: Vec<KeyId> = new_keys
            .into_iter()
            .map(|(cluster, token)| self.intern_key(cluster, token))
            .collect();
        ids.sort_unstable();
        ids.dedup();

        let old = std::mem::take(&mut self.profile_keys[pid as usize]);
        let mut changed = false;
        // Merge-diff the sorted id lists.
        let (mut i, mut j) = (0, 0);
        while i < old.len() || j < ids.len() {
            match (old.get(i), ids.get(j)) {
                (Some(&o), Some(&n)) if o == n => {
                    i += 1;
                    j += 1;
                }
                (Some(&o), Some(&n)) if o < n => {
                    self.remove_member(o, pid);
                    changed = true;
                    i += 1;
                }
                (Some(_), Some(&n)) => {
                    self.add_member(n, pid);
                    changed = true;
                    j += 1;
                }
                (Some(&o), None) => {
                    self.remove_member(o, pid);
                    changed = true;
                    i += 1;
                }
                (None, Some(&n)) => {
                    self.add_member(n, pid);
                    changed = true;
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        if changed {
            self.touched_profiles.push(pid);
        }
        self.profile_keys[pid as usize] = ids;
    }

    /// Removes all keys of `pid` (profile deletion).
    pub fn clear_profile(&mut self, pid: u32) {
        self.set_profile(pid, std::iter::empty());
    }

    /// Takes the accumulated dirty state, resetting it.
    pub fn drain_dirty(&mut self) -> DirtyDrain {
        let mut keys = std::mem::take(&mut self.dirty_keys);
        for &k in &keys {
            self.dirty_flags[k as usize] = false;
        }
        keys.sort_unstable();
        let mut removed = std::mem::take(&mut self.removed_members);
        removed.sort_unstable();
        removed.dedup();
        let mut touched = std::mem::take(&mut self.touched_profiles);
        touched.sort_unstable();
        touched.dedup();
        DirtyDrain {
            keys,
            removed_members: removed,
            touched_profiles: touched,
        }
    }

    /// A from-scratch [`BlockCollection`] of the **raw** (uncleaned) index:
    /// bit-identical to batch Token Blocking on the materialised input —
    /// same blocks, same labels, same canonical order, invalid blocks
    /// dropped the same way.
    pub fn snapshot_raw(
        &self,
        clean_clean: bool,
        separator: u32,
        total_profiles: u32,
    ) -> BlockCollection {
        let blocks = self
            .sorted
            .iter()
            .filter_map(|&kid| {
                let entry = &self.keys[kid as usize];
                if entry.postings_len() == 0 {
                    return None;
                }
                let block = self.with_postings(kid, |postings| {
                    Block::new(self.label(kid), entry.cluster, postings.to_vec(), separator)
                });
                block.is_valid(clean_clean).then_some(block)
            })
            .collect();
        BlockCollection::new(blocks, clean_clean, separator, total_profiles)
    }

    fn intern_key(&mut self, cluster: ClusterId, token: Symbol) -> KeyId {
        if self.token_keys.len() <= token.index() {
            self.token_keys.resize_with(token.index() + 1, Vec::new);
        }
        if let Some(&(_, id)) = self.token_keys[token.index()]
            .iter()
            .find(|&&(c, _)| c == cluster)
        {
            return id;
        }
        let id = self.keys.len() as KeyId;
        // Keep the canonical order: insert at the sorted position. Symbols
        // are assigned in first-seen order, so the comparison resolves
        // through the interner.
        let (keys, tokens) = (&self.keys, &self.tokens);
        let text = tokens.resolve(token);
        let pos = self.sorted.partition_point(|&k| {
            let e = &keys[k as usize];
            (e.cluster, tokens.resolve(e.token)) < (cluster, text)
        });
        self.keys.push(KeyEntry {
            cluster,
            token,
            slot: PostingsSlot::Hot(Vec::new()),
        });
        self.token_keys[token.index()].push((cluster, id));
        self.dirty_flags.push(false);
        if let Some(r) = self.residency.as_deref_mut() {
            r.touch.push(r.epoch);
        }
        self.sorted.insert(pos, id);
        id
    }

    /// Promotes a cold posting list back to its hot `Vec` and stamps the
    /// key's touch epoch. Mutations always go through this, so postings
    /// being patched are guaranteed hot.
    fn ensure_hot(&mut self, key: KeyId) {
        let Some(r) = self.residency.as_deref_mut() else {
            return;
        };
        if let PostingsSlot::Cold { frame, len } = self.keys[key as usize].slot {
            let bytes = r
                .store
                .get(frame)
                .unwrap_or_else(|e| panic!("cold tier: posting list of key {key} lost: {e}"));
            r.store.free(frame);
            let mut pos = 0;
            let mut ids: Vec<u32> = Vec::with_capacity(len as usize);
            decode_u32s(&bytes, &mut pos, &mut ids);
            self.keys[key as usize].slot =
                PostingsSlot::Hot(ids.into_iter().map(ProfileId).collect());
        }
        r.touch[key as usize] = r.epoch;
    }

    fn mark_dirty(&mut self, key: KeyId) {
        if !self.dirty_flags[key as usize] {
            self.dirty_flags[key as usize] = true;
            self.dirty_keys.push(key);
        }
    }

    fn add_member(&mut self, key: KeyId, pid: u32) {
        self.ensure_hot(key);
        let PostingsSlot::Hot(postings) = &mut self.keys[key as usize].slot else {
            unreachable!("ensure_hot promoted the slot")
        };
        let pos = postings.partition_point(|p| p.0 < pid);
        debug_assert!(
            postings.get(pos).map(|p| p.0) != Some(pid),
            "duplicate member"
        );
        postings.insert(pos, ProfileId(pid));
        let len = postings.len();
        self.push_len_bucket(key, len);
        self.mark_dirty(key);
    }

    fn remove_member(&mut self, key: KeyId, pid: u32) {
        self.ensure_hot(key);
        let PostingsSlot::Hot(postings) = &mut self.keys[key as usize].slot else {
            unreachable!("ensure_hot promoted the slot")
        };
        let pos = postings.partition_point(|p| p.0 < pid);
        debug_assert_eq!(postings.get(pos).map(|p| p.0), Some(pid), "missing member");
        postings.remove(pos);
        let len = postings.len();
        self.push_len_bucket(key, len);
        self.removed_members.push(pid);
        self.mark_dirty(key);
    }

    fn push_len_bucket(&mut self, key: KeyId, len: usize) {
        if self.by_len.len() <= len {
            self.by_len.resize_with(len + 1, Vec::new);
        }
        let bucket = &mut self.by_len[len];
        bucket.push(key);
        // Lazy entries accumulate one per mutation; compact when the bucket
        // doubles past a floor so memory stays proportional to the keys
        // *currently* at this length (amortised O(1) per push) instead of
        // growing with the whole mutation history.
        if bucket.len() >= 32 && bucket.len().is_power_of_two() {
            let keys = &self.keys;
            bucket.sort_unstable();
            bucket.dedup();
            bucket.retain(|&k| keys[k as usize].postings_len() == len);
        }
    }

    /// The keys that at some point held exactly `len` postings (lazy
    /// bucket: entries may be stale — callers must re-check
    /// `key(k).postings_len()` — and may repeat).
    pub fn keys_of_len(&self, len: usize) -> &[KeyId] {
        self.by_len.get(len).map(Vec::as_slice).unwrap_or(&[])
    }

    // -- cold-tier residency ------------------------------------------------

    /// Turns on cold-tier residency (idempotent). With a `spill` backend
    /// the demoted frames leave memory entirely; otherwise they live in a
    /// compact in-memory arena.
    pub fn enable_residency(&mut self, spill: Option<Box<dyn SpillBackend>>) {
        if self.residency.is_some() {
            return;
        }
        let store = match spill {
            Some(backend) => ColdStore::spilled(backend),
            None => ColdStore::in_memory(),
        };
        self.residency = Some(Box::new(IndexResidency {
            store,
            touch: vec![0; self.keys.len()],
            epoch: 0,
        }));
    }

    /// Whether a memory budget is active on this index.
    pub fn residency_enabled(&self) -> bool {
        self.residency.is_some()
    }

    /// Cold-tier telemetry (zeros when residency is off).
    pub fn cold_stats(&self) -> ColdStats {
        self.residency
            .as_ref()
            .map(|r| r.store.stats())
            .unwrap_or_default()
    }

    /// Hot posting-list bytes the eviction policy could demote (0 when
    /// residency is off — an unbudgeted index never evicts).
    pub fn evictable_hot_bytes(&self) -> usize {
        use std::mem::size_of;
        if self.residency.is_none() {
            return 0;
        }
        self.keys
            .iter()
            .map(|e| match &e.slot {
                PostingsSlot::Hot(v) if !v.is_empty() => v.len() * size_of::<ProfileId>(),
                _ => 0,
            })
            .sum()
    }

    /// One eviction round: demotes every non-empty hot posting list idle
    /// for more than `idle_commits` rounds, then keeps demoting
    /// coldest-first until hot posting bytes fit `target_hot_bytes`.
    /// Deterministic: candidates are ordered by `(touch epoch, key id)`.
    pub fn enforce_residency(&mut self, idle_commits: u32, target_hot_bytes: usize) {
        use std::mem::size_of;
        if self.residency.is_none() {
            return;
        }
        let epoch = {
            let r = self.residency.as_deref_mut().unwrap();
            r.epoch += 1;
            r.epoch
        };
        let mut hot_bytes = 0usize;
        let mut candidates: Vec<(u32, KeyId)> = Vec::new();
        {
            let r = self.residency.as_deref().unwrap();
            for (i, e) in self.keys.iter().enumerate() {
                if let PostingsSlot::Hot(v) = &e.slot {
                    if v.is_empty() {
                        continue;
                    }
                    hot_bytes += v.len() * size_of::<ProfileId>();
                    candidates.push((r.touch[i], i as KeyId));
                }
            }
        }
        candidates.sort_unstable();
        let mut scratch = Vec::new();
        for (touch, kid) in candidates {
            let stale = (touch as u64) + (idle_commits as u64) < epoch as u64;
            if !stale && hot_bytes <= target_hot_bytes {
                break;
            }
            let PostingsSlot::Hot(v) = &mut self.keys[kid as usize].slot else {
                continue;
            };
            let members = std::mem::take(v);
            hot_bytes -= members.len() * size_of::<ProfileId>();
            scratch.clear();
            let ids: Vec<u32> = members.iter().map(|p| p.0).collect();
            encode_u32s(&ids, &mut scratch);
            let r = self.residency.as_deref_mut().unwrap();
            let frame = r.store.put(&scratch);
            self.keys[kid as usize].slot = PostingsSlot::Cold {
                frame,
                len: members.len() as u32,
            };
        }
        if let Some(r) = self.residency.as_deref_mut() {
            if r.store.wants_compaction() {
                let refs: Vec<&mut FrameRef> = self
                    .keys
                    .iter_mut()
                    .filter_map(|e| match &mut e.slot {
                        PostingsSlot::Cold { frame, .. } => Some(frame),
                        _ => None,
                    })
                    .collect();
                r.store.compact(refs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn glue(tokens: &[&'static str]) -> Vec<(ClusterId, &'static str)> {
        tokens.iter().map(|&t| (ClusterId::GLUE, t)).collect()
    }

    #[test]
    fn set_profile_diffs_postings() {
        let mut idx = IncrementalBlockIndex::new(false);
        idx.set_profile(0, glue(&["abram", "john"]));
        idx.set_profile(1, glue(&["abram", "ellen"]));
        let d = idx.drain_dirty();
        assert_eq!(d.touched_profiles, vec![0, 1]);
        assert!(d.removed_members.is_empty());

        // Update profile 0: drops "john", keeps "abram", gains "jr".
        idx.set_profile(0, glue(&["abram", "jr"]));
        let d = idx.drain_dirty();
        assert_eq!(d.touched_profiles, vec![0]);
        assert_eq!(d.removed_members, vec![0]);
        // Dirty keys: john (lost 0) and jr (gained 0) — not abram.
        let labels: Vec<String> = d.keys.iter().map(|&k| idx.label(k)).collect();
        assert!(labels.contains(&"john".to_string()));
        assert!(labels.contains(&"jr".to_string()));
        assert!(!labels.contains(&"abram".to_string()));
    }

    #[test]
    fn unchanged_set_is_not_dirty() {
        let mut idx = IncrementalBlockIndex::new(false);
        idx.set_profile(0, glue(&["a", "b"]));
        idx.drain_dirty();
        idx.set_profile(0, glue(&["b", "a", "a"]));
        assert!(idx.drain_dirty().is_empty());
    }

    #[test]
    fn snapshot_drops_invalid_blocks_and_orders_canonically() {
        let mut idx = IncrementalBlockIndex::new(false);
        idx.set_profile(0, glue(&["zeta", "shared"]));
        idx.set_profile(1, glue(&["alpha", "shared"]));
        let blocks = idx.snapshot_raw(false, 2, 2);
        // Singletons are invalid for dirty ER; only "shared" survives.
        assert_eq!(blocks.len(), 1);
        assert_eq!(&*blocks.blocks()[0].label, "shared");
        // Make alpha/zeta valid and check the canonical order.
        idx.set_profile(0, glue(&["zeta", "alpha", "shared"]));
        idx.set_profile(1, glue(&["zeta", "alpha", "shared"]));
        let blocks = idx.snapshot_raw(false, 2, 2);
        let labels: Vec<&str> = blocks.blocks().iter().map(|b| &*b.label).collect();
        assert_eq!(labels, vec!["alpha", "shared", "zeta"]);
    }

    #[test]
    fn clear_profile_empties_its_keys() {
        let mut idx = IncrementalBlockIndex::new(false);
        idx.set_profile(0, glue(&["x", "y"]));
        idx.set_profile(1, glue(&["x"]));
        idx.drain_dirty();
        idx.clear_profile(0);
        let d = idx.drain_dirty();
        assert_eq!(d.removed_members, vec![0]);
        assert_eq!(idx.profile_keys(0), &[] as &[KeyId]);
        let blocks = idx.snapshot_raw(false, 2, 2);
        assert!(blocks.is_empty(), "x became a singleton, y empty");
    }

    #[test]
    fn tokens_are_interned_once_across_clusters_and_profiles() {
        let mut idx = IncrementalBlockIndex::new(true);
        idx.set_profile(0, vec![(ClusterId(1), "abram"), (ClusterId::GLUE, "abram")]);
        idx.set_profile(1, vec![(ClusterId(1), "abram"), (ClusterId::GLUE, "smith")]);
        // Two distinct token strings back three (cluster, token) keys.
        assert_eq!(idx.interned_tokens(), 2);
        assert_eq!(idx.key_count(), 3);
        assert_eq!(idx.token_str(0), "abram");
        assert_eq!(idx.canon_key(0), (ClusterId(1), "abram"));
        // The symbol route produces the same key ids as the string route.
        let sym = idx.intern_token("abram");
        assert_eq!(idx.interned_tokens(), 2, "intern is idempotent");
        idx.set_profile_symbols(2, vec![(ClusterId(1), sym)]);
        assert_eq!(idx.profile_keys(2), &[0]);
        assert!(idx.resident_bytes() > 0);
    }

    #[test]
    fn multi_cluster_labels_match_batch_convention() {
        let mut idx = IncrementalBlockIndex::new(true);
        idx.set_profile(0, vec![(ClusterId(1), "abram"), (ClusterId::GLUE, "abram")]);
        idx.set_profile(1, vec![(ClusterId(1), "abram"), (ClusterId::GLUE, "abram")]);
        let blocks = idx.snapshot_raw(false, 2, 2);
        let labels: Vec<&str> = blocks.blocks().iter().map(|b| &*b.label).collect();
        assert_eq!(labels, vec!["abram#c0", "abram#c1"]);
    }
}
