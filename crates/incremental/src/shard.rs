//! Profile-space sharding of the commit path.
//!
//! The sharded engine partitions the profile space into S shards by
//! **round-robin node ownership**: profile `u` belongs to shard
//! `u mod S`, so a streamed collection spreads evenly however its ids
//! arrive (range partitioning would pile every freshly appended profile
//! onto the last shard). Each shard owns its slice of every per-node
//! structure — CSR rows, adjacency rows, retained-index rows, per-node
//! artefacts — and an edge is **owned by the shard of its canonical
//! (smaller) endpoint**. An edge whose endpoints live in different shards
//! is a *cross-shard* edge; it is computed by its owner shard like any
//! other, but it is accounted to the **merge frontier**, the deterministic
//! reduction step where per-shard result runs are merged back into the
//! single canonical order the decision stage consumes.
//!
//! Determinism contract (what makes sharding bit-identical "for free"):
//!
//! 1. per-edge weights are pure functions of the cached accumulator and
//!    O(1) snapshot statistics (the factored-weight contract), so *where*
//!    an edge is computed cannot change its bits;
//! 2. each shard emits its results sorted in the canonical `(u, v)` order
//!    (it scans its owned rows ascending), so [`merge_shard_runs`] — an
//!    S-way merge on the canonical key — reproduces exactly the sequence a
//!    single-shard scan would have produced;
//! 3. order-sensitive global state is order-free by construction: the
//!    ordered-weight treap's shape is canonical in its key set, and the
//!    exact-sum WEP threshold accumulates in an integer superaccumulator
//!    ([`blast_graph::exact_sum::ExactSum::merge`]), so per-shard partial
//!    sums reduce to the same bits in any merge order.
//!
//! Hence every commit outcome — pair deltas, tiers, Θ, retained sets — is
//! bit-identical to the single-shard pipeline at any shard/thread count,
//! which the property tests in `tests/sharded_equivalence.rs` pin.

/// The shard partitioning of a pipeline: how many shards, and which shard
/// owns which profile. `ShardPlan::single()` (S = 1) is the canonical
/// single-shard engine every other plan must reproduce bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    shards: usize,
}

impl ShardPlan {
    /// A plan over `shards` shards (at least one).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
        }
    }

    /// The single-shard (canonical) plan.
    pub fn single() -> Self {
        Self::new(1)
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning profile `u` (round-robin).
    #[inline]
    pub fn shard_of(&self, u: u32) -> usize {
        u as usize % self.shards
    }

    /// Whether the edge `(u, v)` crosses shards — a merge-frontier pair.
    #[inline]
    pub fn is_frontier(&self, u: u32, v: u32) -> bool {
        self.shard_of(u) != self.shard_of(v)
    }

    /// The owned node lists of every shard over `0..n`: `lists[s]` holds
    /// shard `s`'s profiles ascending. The shard-major concatenation is the
    /// scan order of a shard-parallel per-node pass.
    pub fn owned_nodes(&self, n: usize) -> Vec<Vec<u32>> {
        let mut lists: Vec<Vec<u32>> = (0..self.shards)
            .map(|s| Vec::with_capacity(n / self.shards + usize::from(s < n % self.shards)))
            .collect();
        for u in 0..n as u32 {
            lists[self.shard_of(u)].push(u);
        }
        lists
    }
}

impl Default for ShardPlan {
    fn default() -> Self {
        Self::single()
    }
}

/// Per-commit accounting of one shard-partitioned pass: how much work each
/// owner shard carried and how many of its edges crossed the frontier.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Edges processed per owner shard.
    pub per_shard: Vec<usize>,
    /// Edges whose endpoints live in different shards.
    pub frontier_pairs: usize,
}

impl ShardStats {
    /// Zeroed accounting for a plan.
    pub fn new(plan: &ShardPlan) -> Self {
        Self {
            per_shard: vec![0; plan.shards()],
            frontier_pairs: 0,
        }
    }

    /// Accounts one edge to its owner shard (and to the frontier when it
    /// crosses shards).
    #[inline]
    pub fn record_edge(&mut self, plan: &ShardPlan, u: u32, v: u32) {
        self.per_shard[plan.shard_of(u)] += 1;
        if plan.is_frontier(u, v) {
            self.frontier_pairs += 1;
        }
    }

    /// Folds another pass's accounting into this one (same plan).
    pub fn merge(&mut self, other: &ShardStats) {
        if self.per_shard.len() < other.per_shard.len() {
            self.per_shard.resize(other.per_shard.len(), 0);
        }
        for (mine, theirs) in self.per_shard.iter_mut().zip(&other.per_shard) {
            *mine += theirs;
        }
        self.frontier_pairs += other.frontier_pairs;
    }

    /// Total edges accounted across all shards.
    pub fn total(&self) -> usize {
        self.per_shard.iter().sum()
    }

    /// Owner-shard load imbalance, permille of the mean shard load:
    /// 1000 = perfectly balanced, 2000 = the heaviest shard carried twice
    /// the mean. 1000 when nothing was processed (vacuously balanced).
    pub fn imbalance_permille(&self) -> u64 {
        let total = self.total();
        if total == 0 || self.per_shard.is_empty() {
            return 1000;
        }
        let max = *self.per_shard.iter().max().expect("non-empty") as f64;
        let mean = total as f64 / self.per_shard.len() as f64;
        (max / mean * 1000.0).round() as u64
    }
}

/// The merge frontier's reduction: merges per-shard result runs — each
/// already sorted by `key` — into one sequence sorted by `key`, exactly
/// the order a single-shard scan would have produced. Keys must be unique
/// across runs (canonical edges are), so the merge order is total and the
/// output deterministic whatever partitioned the input. O(total · S)
/// repeated-min over the run heads; S is small (shards, not threads).
pub fn merge_shard_runs<T, K: Ord>(runs: Vec<Vec<T>>, key: impl Fn(&T) -> K) -> Vec<T> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<T>>> =
        runs.into_iter().map(|r| r.into_iter().peekable()).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, K)> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some(head) = it.peek() {
                let k = key(head);
                if best.as_ref().is_none_or(|(_, bk)| k < *bk) {
                    best = Some((i, k));
                }
            }
        }
        match best {
            Some((i, _)) => out.push(iters[i].next().expect("peeked head exists")),
            None => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_ownership_spreads_consecutive_ids() {
        let plan = ShardPlan::new(4);
        assert_eq!(plan.shard_of(0), 0);
        assert_eq!(plan.shard_of(5), 1);
        assert!(plan.is_frontier(0, 1));
        assert!(!plan.is_frontier(0, 8));
        let owned = plan.owned_nodes(10);
        assert_eq!(owned[0], vec![0, 4, 8]);
        assert_eq!(owned[1], vec![1, 5, 9]);
        assert_eq!(owned[3], vec![3, 7]);
        assert_eq!(owned.iter().map(Vec::len).sum::<usize>(), 10);
    }

    #[test]
    fn single_shard_plan_has_no_frontier() {
        let plan = ShardPlan::single();
        let mut stats = ShardStats::new(&plan);
        stats.record_edge(&plan, 3, 11);
        stats.record_edge(&plan, 0, 1);
        assert_eq!(stats.frontier_pairs, 0);
        assert_eq!(stats.total(), 2);
        assert_eq!(stats.imbalance_permille(), 1000);
    }

    #[test]
    fn imbalance_reads_the_heaviest_shard() {
        let plan = ShardPlan::new(2);
        let mut stats = ShardStats::new(&plan);
        // Three edges owned by shard 0, one by shard 1 → max/mean = 1.5.
        for (u, v) in [(0, 2), (0, 4), (2, 4), (1, 3)] {
            stats.record_edge(&plan, u, v);
        }
        assert_eq!(stats.frontier_pairs, 0);
        assert_eq!(stats.imbalance_permille(), 1500);

        let mut other = ShardStats::new(&plan);
        other.record_edge(&plan, 1, 2); // cross-shard, owned by shard 1
        stats.merge(&other);
        assert_eq!(stats.frontier_pairs, 1);
        assert_eq!(stats.total(), 5);
    }

    #[test]
    fn merge_shard_runs_restores_canonical_order() {
        let plan = ShardPlan::new(3);
        let edges: Vec<(u32, u32)> = (0..30u32)
            .flat_map(|u| ((u + 1)..30).step_by(7).map(move |v| (u, v)))
            .collect();
        // Partition by owner shard, preserving the canonical order within
        // each run (exactly what a shard-local ascending scan produces).
        let mut runs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); 3];
        for &(u, v) in &edges {
            runs[plan.shard_of(u)].push((u, v));
        }
        let merged = merge_shard_runs(runs, |&(u, v)| (u, v));
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        assert_eq!(merged, sorted);
    }
}
