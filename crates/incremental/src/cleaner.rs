//! Incremental block cleaning: purging + filtering re-applied only where a
//! micro-batch touched the index, emitting a [`SnapshotDelta`] instead of a
//! materialised collection.
//!
//! Both batch cleaners are *locally decidable* given a handful of cached
//! statistics, which is what makes incremental re-application sound:
//!
//! * **Purging** keeps a block iff `|b| ≤ max` — a per-block test. It must
//!   be re-evaluated for blocks whose membership changed and, when the
//!   threshold itself moved (the profile count grew), for the blocks whose
//!   length lies in the crossed interval — found through the index's lazy
//!   length buckets, not a full key scan.
//! * **Filtering** keeps profile `p` in the `ratio` smallest of its
//!   surviving blocks, ranked by (cardinality, canonical position). The
//!   kept set of `p` depends only on `p`'s own block list and those blocks'
//!   cardinalities, so it must be recomputed exactly for the profiles whose
//!   list or whose blocks changed — everyone else's cached kept set remains
//!   bit-identical to what a batch run would compute.
//!
//! The outcome is a [`SnapshotDelta`] — the patched block slots (stable
//! key ids) and CSR rows the graph snapshot applies in place — plus the
//! *graph-dirty* node set: every profile whose cleaned co-occurrence
//! changed, which is what the downstream meta-blocking repair needs. The
//! cleaner's cached state stays field-for-field equivalent to batch
//! purge→filter on the materialised input ([`IncrementalCleaner::materialize`]
//! rebuilds that collection for verification paths; the commit hot path
//! never does).

use crate::index::{DirtyDrain, IncrementalBlockIndex, KeyId};
use blast_blocking::block::Block;
use blast_blocking::collection::BlockCollection;
use blast_datamodel::entity::ProfileId;
use blast_graph::context::{RowPatch, SlotPatch, SnapshotDelta};

/// Purging/filtering configuration (defaults match `BlastConfig`).
#[derive(Debug, Clone)]
pub struct CleaningConfig {
    /// Apply Block Purging.
    pub purging: bool,
    /// Maximum fraction of the collection's profiles a block may hold.
    pub purge_fraction: f64,
    /// Apply Block Filtering.
    pub filtering: bool,
    /// Fraction of each profile's smallest blocks to keep.
    pub filter_ratio: f64,
}

impl Default for CleaningConfig {
    fn default() -> Self {
        Self {
            purging: true,
            purge_fraction: 0.5,
            filtering: true,
            filter_ratio: 0.8,
        }
    }
}

impl CleaningConfig {
    /// No cleaning at all (raw token blocking).
    pub fn none() -> Self {
        Self {
            purging: false,
            filtering: false,
            ..Self::default()
        }
    }
}

/// What one cleaning pass changed, for the snapshot and graph-repair stages.
#[derive(Debug)]
pub struct CleanOutcome {
    /// The slot/row patches bringing the graph snapshot up to date with the
    /// cleaned state of this commit.
    pub delta: SnapshotDelta,
    /// Number of cleaned (emitted) blocks after the commit — the batch
    /// collection's |B|.
    pub blocks: u64,
    /// Profiles whose cleaned co-occurrence changed (members added to or
    /// removed from some cleaned block, or members of blocks whose
    /// cardinality changed). Sorted, deduplicated.
    pub dirty_nodes: Vec<u32>,
    /// Profiles whose cleaned block *list* changed (their `|B_u|` moved).
    /// Subset of `dirty_nodes`; sorted.
    pub lists_changed: Vec<u32>,
    /// Whether the cleaned block count |B| differs from the previous pass.
    pub total_blocks_changed: bool,
}

/// The incremental purging + filtering stage.
#[derive(Debug)]
pub struct IncrementalCleaner {
    config: CleaningConfig,
    /// Per key: survives validity + purging (aligned with the key slab).
    present: Vec<bool>,
    /// Per key: cached raw comparison cardinality.
    cardinality: Vec<u64>,
    /// Per profile: kept key ids (sorted by key id).
    kept: Vec<Vec<KeyId>>,
    /// Per key: cleaned membership (sorted profile ids).
    cleaned: Vec<Vec<u32>>,
    /// Per key: whether the previous pass emitted it as a block. A flip
    /// changes the block count |B_u| of every *surviving* member — nodes
    /// whose own kept set did not move — so flips feed `lists_changed`.
    emitted: Vec<bool>,
    /// Running emitted-block count (the cleaned |B|).
    live_blocks: u64,
    prev_max_profiles: Option<usize>,
    prev_block_count: Option<u64>,
}

impl IncrementalCleaner {
    /// A cleaner with the given configuration.
    pub fn new(config: CleaningConfig) -> Self {
        Self {
            config,
            present: Vec::new(),
            cardinality: Vec::new(),
            kept: Vec::new(),
            cleaned: Vec::new(),
            emitted: Vec::new(),
            live_blocks: 0,
            prev_max_profiles: None,
            prev_block_count: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CleaningConfig {
        &self.config
    }

    /// Re-applies cleaning after the index absorbed a micro-batch.
    /// `cluster_entropies` carries the fixed partitioning's aggregate
    /// entropies (indexed by cluster id) for the slot patches; `None` for
    /// schema-agnostic pipelines.
    pub fn apply(
        &mut self,
        index: &IncrementalBlockIndex,
        drain: &DirtyDrain,
        clean_clean: bool,
        separator: u32,
        total_profiles: u32,
        cluster_entropies: Option<&[f64]>,
    ) -> CleanOutcome {
        let n_keys = index.key_count();
        self.present.resize(n_keys, false);
        self.cardinality.resize(n_keys, 0);
        self.cleaned.resize_with(n_keys, Vec::new);
        self.emitted.resize(n_keys, false);
        if self.kept.len() < total_profiles as usize {
            self.kept.resize_with(total_profiles as usize, Vec::new);
        }

        // 1. Refresh cached cardinalities of the touched keys.
        for &k in &drain.keys {
            self.cardinality[k as usize] =
                index.with_postings(k, |p| raw_cardinality(p, clean_clean, separator));
        }

        // 2. Purging: per-key length test. A threshold move re-evaluates the
        //    keys whose length lies in the crossed interval (via the index's
        //    lazy length buckets); otherwise only the dirty ones.
        let max_profiles = if self.config.purging {
            (total_profiles as f64 * self.config.purge_fraction) as usize
        } else {
            usize::MAX
        };
        let mut flipped: Vec<KeyId> = Vec::new();
        let mut present_of = |this: &mut Self, k: KeyId| {
            let e = index.key(k);
            let now = this.cardinality[k as usize] > 0 && e.postings_len() <= max_profiles;
            if now != this.present[k as usize] {
                this.present[k as usize] = now;
                flipped.push(k);
            }
        };
        match self.prev_max_profiles {
            Some(prev) if prev == max_profiles => {
                for &k in &drain.keys {
                    present_of(self, k);
                }
            }
            // The profile count only grows, so the threshold only rises:
            // exactly the keys with prev < |postings| ≤ max can resurface.
            // Their ids sit in the crossed length buckets (lazy entries are
            // deduplicated by the length re-check inside `present_of` being
            // idempotent). A falling threshold (config change) or the first
            // pass falls back to the full scan.
            Some(prev) if prev < max_profiles => {
                let hi = max_profiles.min(total_profiles as usize);
                for len in (prev + 1)..=hi {
                    for &k in index.keys_of_len(len) {
                        if index.key(k).postings_len() == len {
                            present_of(self, k);
                        }
                    }
                }
                for &k in &drain.keys {
                    present_of(self, k);
                }
            }
            _ => {
                for k in 0..n_keys as KeyId {
                    present_of(self, k);
                }
            }
        }
        self.prev_max_profiles = Some(max_profiles);
        // Emission must be re-examined for every present-flip, drained or
        // not; the *filtering* stage additionally needs the flips that were
        // not already drained (whose members it would otherwise miss).
        flipped.sort_unstable();
        flipped.dedup();
        let threshold_flipped: Vec<KeyId> = flipped
            .iter()
            .copied()
            .filter(|k| drain.keys.binary_search(k).is_err())
            .collect();

        // 3. The profiles whose kept set must be recomputed. A dirty key
        //    that is purged now and was purged before is skipped: it sits
        //    in no kept ranking (not present), it cannot enter one without
        //    flipping, and its cardinality only ranks keys while present —
        //    so its (possibly huge) raw posting list cannot move any
        //    member's kept set. This keeps stop-word-block mutations from
        //    costing O(|collection|) per commit at 10⁵–10⁶ profiles.
        let mut filter_dirty: Vec<u32> = Vec::new();
        filter_dirty.extend_from_slice(&drain.touched_profiles);
        filter_dirty.extend_from_slice(&drain.removed_members);
        for &k in drain.keys.iter() {
            if self.present[k as usize] || flipped.binary_search(&k).is_ok() {
                index.with_postings(k, |p| filter_dirty.extend(p.iter().map(|p| p.0)));
            }
        }
        for &k in &threshold_flipped {
            index.with_postings(k, |p| filter_dirty.extend(p.iter().map(|p| p.0)));
        }
        filter_dirty.sort_unstable();
        filter_dirty.dedup();

        // 4. Recompute kept sets; diff against the cache to patch the
        //    cleaned memberships and collect the graph-dirty scope.
        let mut changed_keys: Vec<KeyId> = Vec::new();
        let mut removed_nodes: Vec<u32> = Vec::new();
        let mut lists_changed: Vec<u32> = Vec::new();
        let mut ranked: Vec<KeyId> = Vec::new();
        for &p in &filter_dirty {
            ranked.clear();
            ranked.extend(
                index
                    .profile_keys(p)
                    .iter()
                    .copied()
                    .filter(|&k| self.present[k as usize]),
            );
            if self.config.filtering {
                let keep = ((ranked.len() as f64) * self.config.filter_ratio).ceil() as usize;
                if keep < ranked.len() {
                    // Rank by (cardinality asc, canonical order asc) — the
                    // canonical (cluster, token) order *is* the block-id
                    // order of the purged collection.
                    ranked.sort_unstable_by(|&a, &b| {
                        self.cardinality[a as usize]
                            .cmp(&self.cardinality[b as usize])
                            .then_with(|| index.canon_key(a).cmp(&index.canon_key(b)))
                    });
                    ranked.truncate(keep);
                    ranked.sort_unstable();
                }
            }
            let kept_new = &ranked;
            let kept_old = &self.kept[p as usize];
            // Merge-diff the sorted key-id lists.
            let (mut i, mut j) = (0, 0);
            let mut changed = false;
            let mut adds: Vec<KeyId> = Vec::new();
            let mut removes: Vec<KeyId> = Vec::new();
            while i < kept_old.len() || j < kept_new.len() {
                match (kept_old.get(i), kept_new.get(j)) {
                    (Some(&o), Some(&n)) if o == n => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&o), Some(&n)) if o < n => {
                        removes.push(o);
                        i += 1;
                    }
                    (Some(_), Some(&n)) => {
                        adds.push(n);
                        j += 1;
                    }
                    (Some(&o), None) => {
                        removes.push(o);
                        i += 1;
                    }
                    (None, Some(&n)) => {
                        adds.push(n);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            for k in removes {
                let members = &mut self.cleaned[k as usize];
                let pos = members.partition_point(|&m| m < p);
                debug_assert_eq!(members.get(pos), Some(&p));
                members.remove(pos);
                changed_keys.push(k);
                removed_nodes.push(p);
                changed = true;
            }
            for k in adds {
                let members = &mut self.cleaned[k as usize];
                let pos = members.partition_point(|&m| m < p);
                debug_assert_ne!(members.get(pos), Some(&p));
                members.insert(pos, p);
                changed_keys.push(k);
                changed = true;
            }
            if changed {
                lists_changed.push(p);
                self.kept[p as usize] = std::mem::take(&mut ranked);
            }
        }
        changed_keys.sort_unstable();
        changed_keys.dedup();

        // 5. Graph-dirty nodes: everyone in a cleaned block whose membership
        //    (and hence cardinality and co-occurrence) changed, plus the
        //    members that were just removed from one.
        let mut dirty_nodes = removed_nodes;
        for &k in &changed_keys {
            dirty_nodes.extend_from_slice(&self.cleaned[k as usize]);
        }
        dirty_nodes.sort_unstable();
        dirty_nodes.dedup();

        // 6. Resolve emission and build the snapshot's slot patches. Only
        //    keys whose cleaned membership or purge status moved can flip
        //    or change as blocks — the former O(|keys|) materialisation
        //    loop is gone from the commit path. A key whose emitted status
        //    flips changes |B_u| for every member that *stayed* in it —
        //    record them as list-changed.
        let mut candidates: Vec<KeyId> = changed_keys;
        candidates.extend_from_slice(&flipped);
        candidates.sort_unstable();
        candidates.dedup();
        let mut slots: Vec<SlotPatch> = Vec::new();
        for &k in &candidates {
            let members = &self.cleaned[k as usize];
            let emitted_now =
                self.present[k as usize] && members_valid(members, clean_clean, separator);
            let was = self.emitted[k as usize];
            if emitted_now != was {
                self.emitted[k as usize] = emitted_now;
                self.live_blocks = if emitted_now {
                    self.live_blocks + 1
                } else {
                    self.live_blocks - 1
                };
                lists_changed.extend_from_slice(members);
                dirty_nodes.extend_from_slice(members);
            }
            if emitted_now {
                slots.push(SlotPatch {
                    slot: k,
                    members: members.iter().map(|&p| ProfileId(p)).collect(),
                    entropy: cluster_entropies.map_or(1.0, |e| e[index.key(k).cluster.index()]),
                });
            } else if was {
                slots.push(SlotPatch {
                    slot: k,
                    members: Vec::new(),
                    entropy: 1.0,
                });
            }
        }
        lists_changed.sort_unstable();
        lists_changed.dedup();
        dirty_nodes.sort_unstable();
        dirty_nodes.dedup();
        let total_blocks_changed = self.prev_block_count != Some(self.live_blocks);
        self.prev_block_count = Some(self.live_blocks);

        // 7. Row patches: every profile whose cleaned block list moved gets
        //    its new row — the emitted subset of its kept keys, in the
        //    canonical (cluster, token) order batch block ids follow.
        let rows: Vec<RowPatch> = lists_changed
            .iter()
            .map(|&p| {
                let mut row: Vec<KeyId> = self.kept[p as usize]
                    .iter()
                    .copied()
                    .filter(|&k| self.emitted[k as usize])
                    .collect();
                row.sort_unstable_by(|&a, &b| index.canon_key(a).cmp(&index.canon_key(b)));
                RowPatch {
                    profile: p,
                    slots: row,
                }
            })
            .collect();

        CleanOutcome {
            delta: SnapshotDelta {
                total_profiles,
                slots,
                rows,
            },
            blocks: self.live_blocks,
            dirty_nodes,
            lists_changed,
            total_blocks_changed,
        }
    }

    /// Materialises the cleaned collection in canonical order, exactly like
    /// batch purge→filter on the materialised input (invalid blocks dropped
    /// the same way). Verification/diagnostics only — O(|keys|), never on
    /// the commit path.
    pub fn materialize(
        &self,
        index: &IncrementalBlockIndex,
        clean_clean: bool,
        separator: u32,
        total_profiles: u32,
    ) -> BlockCollection {
        let mut blocks: Vec<Block> = Vec::new();
        for &k in index.ordered_keys() {
            if !self.emitted[k as usize] {
                continue;
            }
            let members = &self.cleaned[k as usize];
            blocks.push(Block::new(
                index.label(k),
                index.key(k).cluster,
                members.iter().map(|&p| ProfileId(p)).collect(),
                separator,
            ));
        }
        BlockCollection::new(blocks, clean_clean, separator, total_profiles)
    }
}

/// Whether a cleaned membership list emits a valid block (≥1 comparison).
fn members_valid(members: &[u32], clean_clean: bool, separator: u32) -> bool {
    if clean_clean {
        let split = members.partition_point(|&m| m < separator);
        split > 0 && split < members.len()
    } else {
        members.len() >= 2
    }
}

/// A block's comparison cardinality from its raw postings.
fn raw_cardinality(postings: &[ProfileId], clean_clean: bool, separator: u32) -> u64 {
    if clean_clean {
        let split = postings.partition_point(|p| p.0 < separator) as u64;
        split * (postings.len() as u64 - split)
    } else {
        let n = postings.len() as u64;
        n * n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_blocking::filtering::BlockFiltering;
    use blast_blocking::key::ClusterId;
    use blast_blocking::purging::BlockPurging;
    use blast_blocking::token_blocking::TokenBlocking;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;
    use blast_datamodel::input::ErInput;
    use blast_datamodel::tokenizer::Tokenizer;

    /// Batch counterpart of the incremental cleaner for a dirty input.
    fn batch_cleaned(input: &ErInput, config: &CleaningConfig) -> BlockCollection {
        let blocks = TokenBlocking::new().build(input);
        let blocks = if config.purging {
            BlockPurging::new()
                .max_profile_fraction(config.purge_fraction)
                .purge(&blocks)
        } else {
            blocks
        };
        if config.filtering {
            BlockFiltering::with_ratio(config.filter_ratio).filter(&blocks)
        } else {
            blocks
        }
    }

    fn assert_same_collection(a: &BlockCollection, b: &BlockCollection) {
        assert_eq!(a.len(), b.len(), "block count");
        for (x, y) in a.blocks().iter().zip(b.blocks()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.profiles, y.profiles, "block {}", x.label);
            assert_eq!(x.split, y.split);
            assert_eq!(x.cluster, y.cluster);
        }
        assert_eq!(a.separator(), b.separator());
        assert_eq!(a.total_profiles(), b.total_profiles());
    }

    /// Streams profiles through index+cleaner and checks the cleaned
    /// collection equals batch purge→filter at every step, and that the
    /// emitted-block count tracks it.
    #[test]
    fn incremental_cleaning_tracks_batch() {
        let tokenizer = Tokenizer::new();
        let config = CleaningConfig::default();
        let mut index = IncrementalBlockIndex::new(false);
        let mut cleaner = IncrementalCleaner::new(config.clone());

        let rows: Vec<(&str, &str)> = vec![
            ("p0", "john abram jr"),
            ("p1", "ellen smith abram"),
            ("p2", "jon abram jr car"),
            ("p3", "ellen smith ny abram"),
            ("p4", "car seller main abram"),
            ("p5", "main street abram jr"),
        ];

        let mut d = EntityCollection::new(SourceId(0));
        for (step, (id, text)) in rows.iter().enumerate() {
            d.push_pairs(id, [("text", *text)]);
            let pid = step as u32;
            let mut keys: Vec<(ClusterId, String)> = Vec::new();
            tokenizer.for_each_token(text, |t| keys.push((ClusterId::GLUE, t.to_string())));
            index.set_profile(pid, keys.iter().map(|(c, t)| (*c, t.as_str())));

            let drain = index.drain_dirty();
            let total = (step + 1) as u32;
            let outcome = cleaner.apply(&index, &drain, false, total, total, None);
            let materialised = cleaner.materialize(&index, false, total, total);
            let batch = batch_cleaned(&ErInput::dirty(d.clone()), &config);
            assert_same_collection(&materialised, &batch);
            assert_eq!(outcome.blocks, batch.len() as u64, "live-block count");
        }
    }

    #[test]
    fn untouched_profiles_are_not_dirty() {
        let config = CleaningConfig::none();
        let mut index = IncrementalBlockIndex::new(false);
        let mut cleaner = IncrementalCleaner::new(config);
        // Two disjoint communities.
        index.set_profile(0, [(ClusterId::GLUE, "a"), (ClusterId::GLUE, "b")]);
        index.set_profile(1, [(ClusterId::GLUE, "a"), (ClusterId::GLUE, "b")]);
        index.set_profile(2, [(ClusterId::GLUE, "x")]);
        index.set_profile(3, [(ClusterId::GLUE, "x")]);
        let drain = index.drain_dirty();
        cleaner.apply(&index, &drain, false, 4, 4, None);
        // Touch only the x community: profile 2 leaves the x block.
        index.set_profile(2, [(ClusterId::GLUE, "y")]);
        let drain = index.drain_dirty();
        let outcome = cleaner.apply(&index, &drain, false, 4, 4, None);
        assert!(
            !outcome.dirty_nodes.contains(&0) && !outcome.dirty_nodes.contains(&1),
            "disjoint community must stay clean, got {:?}",
            outcome.dirty_nodes
        );
        // Both x members are dirty: 2 left, 3 lost its only co-member.
        assert!(outcome.dirty_nodes.contains(&2));
        assert!(outcome.dirty_nodes.contains(&3));
        // And the delta only patches the affected slots/rows.
        assert!(outcome
            .delta
            .rows
            .iter()
            .all(|r| r.profile == 2 || r.profile == 3));
    }

    #[test]
    fn purge_threshold_move_revisits_crossed_lengths() {
        // With fraction 0.5, a 2-member block is purged at total=3
        // (max = 1) but kept at total=4 (max = 2).
        let config = CleaningConfig {
            purging: true,
            purge_fraction: 0.5,
            filtering: false,
            filter_ratio: 0.8,
        };
        let mut index = IncrementalBlockIndex::new(false);
        let mut cleaner = IncrementalCleaner::new(config);
        index.set_profile(0, [(ClusterId::GLUE, "t")]);
        index.set_profile(1, [(ClusterId::GLUE, "t")]);
        index.set_profile(2, [(ClusterId::GLUE, "z")]);
        let drain = index.drain_dirty();
        let outcome = cleaner.apply(&index, &drain, false, 3, 3, None);
        assert_eq!(outcome.blocks, 0, "t purged at max=1");
        // A fourth, unrelated profile raises the threshold; the untouched
        // "t" block must resurface.
        index.set_profile(3, [(ClusterId::GLUE, "z")]);
        let drain = index.drain_dirty();
        let outcome = cleaner.apply(&index, &drain, false, 4, 4, None);
        let materialised = cleaner.materialize(&index, false, 4, 4);
        let labels: Vec<&str> = materialised.blocks().iter().map(|b| &*b.label).collect();
        assert_eq!(labels, vec!["t", "z"]);
        assert_eq!(outcome.blocks, 2);
        assert!(outcome.dirty_nodes.contains(&0));
        assert!(outcome.dirty_nodes.contains(&1));
    }
}
