//! Delta-aware decision structures: the per-commit state that lets the
//! pruning *decisions* — not just the artefact maintenance — run in time
//! proportional to the dirty neighbourhood plus the retention flips.
//!
//! Meta-blocking's pruning decisions are simple functionals over edge
//! weights (a global mean for WEP, a global top-K for CEP, per-node top-k
//! containment for CNP), so they admit incremental maintenance through
//! order-statistic and threshold-crossing structures:
//!
//! * [`OrderedWeightIndex`] — the live edge list as an order-statistic
//!   treap keyed by `(weight rank bits, u, v)` (descending weight,
//!   ascending `(u, v)` among bit-exact ties — precisely the batch
//!   tie-break order), with a running exact Σw. WEP's threshold falls out
//!   of [`blast_graph::pruning::Wep::mean_from_sum`] over the maintained
//!   sum; CEP's cutoff is the rank-K order statistic ([`OrderedWeightIndex::select`]).
//!   Both retention rules are **prefixes** of the key order, captured as a
//!   [`Frontier`]; when a commit moves the frontier, the clean edges whose
//!   retention flips are exactly the keys *between* the old and new
//!   frontier — enumerated by [`OrderedWeightIndex::for_each_between`] in
//!   O(log |E| + flips), never by re-scanning the edge list.
//! * [`EdgeAdjacency`] — per-node rows of `(neighbour, weight)` for every
//!   live edge, so a commit can enumerate the *old* dirty-incident edges
//!   (and their old weights, needed to unkey them from the treap) without
//!   touching clean rows.
//! * [`ContainmentIndex`] — CNP's per-pair containment counter (how many
//!   of the two endpoints list the other in their top-k, 0/1/2), updated
//!   only from dirty nodes' list diffs; redefined CNP retains count ≥ 1,
//!   reciprocal count = 2, so retention flips are counter threshold
//!   crossings.
//!
//! Everything here is deterministic: treap priorities are a pure hash of
//! the key, so the tree shape — and every traversal order — is a function
//! of the key *set*, independent of insertion history.

use crate::shard::{merge_shard_runs, ShardPlan, ShardStats};
use blast_datamodel::entity::ProfileId;
use blast_datamodel::parallel::parallel_work_steal;
use blast_graph::cold::{decode_u32s, encode_u32s, get_f64, get_varint, put_f64, put_varint};
use blast_graph::context::{EdgeAccum, GraphSnapshot};
use blast_graph::exact_sum::ExactSum;
use blast_graph::pruning::common::{weight_rank_bits, EpochMask};
use blast_graph::retained::RetainedPairs;
use blast_graph::weights::EdgeWeigher;
use blast_graph::{ColdStats, ColdStore, FrameRef, SpillBackend};
use blast_obs::{names, LazyCounter};

/// Bulk treap rebuilds (degraded-full and heavy-drift paths), recorded
/// into the process-wide registry — a healthy incremental stream should
/// show this staying near zero while commits climb.
static TREAP_BULK_REBUILDS: LazyCounter = LazyCounter::new(names::TREAP_BULK_REBUILDS);

/// The total retention order of the decision stage: ascending `rank` is
/// descending weight (see [`weight_rank_bits`]), ties broken by ascending
/// `(u, v)` — bit-for-bit the order batch CEP keeps its top-K in and batch
/// WEP resolves `w ≥ Θ` in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EdgeKey {
    /// Monotone-inverted weight bits (primary, ascending = heavier first).
    pub rank: u64,
    /// Canonical owner endpoint (smaller id).
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
}

impl EdgeKey {
    /// The key of edge `(u, v)` at weight `w`.
    #[inline]
    pub fn new(u: u32, v: u32, w: f64) -> Self {
        EdgeKey {
            rank: weight_rank_bits(w),
            u,
            v,
        }
    }

    /// The largest key still retained by a mean threshold θ: every edge
    /// with `w ≥ θ` (any `(u, v)`) keys at or before this bound.
    #[inline]
    pub fn mean_bound(theta: f64) -> Self {
        EdgeKey {
            rank: weight_rank_bits(theta),
            u: u32::MAX,
            v: u32::MAX,
        }
    }
}

/// The inclusive retention prefix of the key order: an edge is retained
/// iff its key is ≤ the frontier. `None` retains nothing (empty graph,
/// K = 0, or an uninitialised pass).
pub type Frontier = Option<EdgeKey>;

/// Whether a key is retained under a frontier.
#[inline]
pub fn retained_under(frontier: Frontier, key: EdgeKey) -> bool {
    frontier.is_some_and(|f| key <= f)
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct TreapNode {
    key: EdgeKey,
    w: f64,
    prio: u64,
    left: u32,
    right: u32,
    size: u32,
}

/// Deterministic treap priority: a splitmix64-style hash of the key, so
/// the tree shape is canonical in the key set.
fn priority(key: &EdgeKey) -> u64 {
    let mut z = key
        .rank
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(((key.u as u64) << 32) | key.v as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The live edge list as an order-statistic treap over [`EdgeKey`] with a
/// running exact weight sum (see module docs).
#[derive(Debug, Default)]
pub struct OrderedWeightIndex {
    nodes: Vec<TreapNode>,
    free: Vec<u32>,
    root: u32,
    sum: ExactSum,
    len: usize,
}

impl OrderedWeightIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            sum: ExactSum::new(),
            len: 0,
        }
    }

    /// Number of live edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the graph has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Estimated resident heap footprint in bytes (node-slab capacity).
    pub fn resident_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<TreapNode>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// The exactly accumulated Σw over the live edges.
    #[inline]
    pub fn sum(&self) -> &ExactSum {
        &self.sum
    }

    /// Drops every edge (the degraded-full rebuild path).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.sum.clear();
        self.len = 0;
    }

    /// Rebuilds the whole index from an edge list in one pass — the bulk
    /// path of the degraded-full and heavy-drift rebuilds. One flat key
    /// sort plus an O(n) right-spine construction replaces n split/merge
    /// inserts (~6× a flat sort in treap pointer churn), and the result is
    /// **bit-identical** to inserting the same edges one by one: with the
    /// deterministic tie order "higher priority wins, equal priorities go
    /// to the smaller key" — exactly what `OrderedWeightIndex::merge`'s
    /// `>=` implements, since its left tree always holds the smaller keys
    /// — the treap over a key set is unique, whatever built it.
    pub fn rebuild(&mut self, edges: impl IntoIterator<Item = (u32, u32, f64)>) {
        TREAP_BULK_REBUILDS.inc();
        self.clear();
        for (u, v, w) in edges {
            let key = EdgeKey::new(u, v, w);
            self.nodes.push(TreapNode {
                key,
                w,
                prio: priority(&key),
                left: NIL,
                right: NIL,
                size: 1,
            });
        }
        // Σw via shard-parallel exact partial sums: the integer
        // superaccumulator merge is order-independent bit-for-bit
        // (`ExactSum::merge`), so chunked reduction equals the serial fold.
        let nodes = &self.nodes;
        let partials = parallel_work_steal(
            nodes.len(),
            blast_datamodel::parallel::default_threads(nodes.len()),
            1 << 16,
            || (),
            |_, range| {
                let mut local = ExactSum::new();
                for node in &nodes[range] {
                    local.add(node.w);
                }
                local
            },
        );
        for part in &partials {
            self.sum.merge(part);
        }
        self.len = self.nodes.len();
        let n = self.nodes.len() as u32;
        if n == 0 {
            return;
        }
        self.nodes.sort_unstable_by_key(|n| n.key);
        debug_assert!(
            self.nodes.windows(2).all(|w| w[0].key < w[1].key),
            "duplicate edge key"
        );
        // Right-spine construction over the in-order layout: each new key
        // is the largest so far, so it lands on the right spine; everything
        // on the spine with *strictly* lower priority becomes its left
        // subtree (a spine node with equal priority stays its ancestor —
        // the smaller key wins the tie, matching `merge`).
        let mut spine: Vec<u32> = Vec::new();
        for i in 0..n {
            let prio = self.nodes[i as usize].prio;
            let mut left = NIL;
            while let Some(&top) = spine.last() {
                if self.nodes[top as usize].prio < prio {
                    left = top;
                    spine.pop();
                } else {
                    break;
                }
            }
            self.nodes[i as usize].left = left;
            if let Some(&top) = spine.last() {
                self.nodes[top as usize].right = i;
            }
            spine.push(i);
        }
        self.root = spine[0];
        // Subtree sizes, children before parents: a pre-order walk reversed.
        let mut order = Vec::with_capacity(n as usize);
        let mut stack = vec![self.root];
        while let Some(t) = stack.pop() {
            order.push(t);
            let node = &self.nodes[t as usize];
            if node.left != NIL {
                stack.push(node.left);
            }
            if node.right != NIL {
                stack.push(node.right);
            }
        }
        for &t in order.iter().rev() {
            self.update(t);
        }
    }

    /// Pre-order walk of `(key, weight)` — the canonical-shape fingerprint
    /// (a BST's pre-order determines its structure): diagnostics and the
    /// bulk-vs-incremental construction property tests.
    pub fn for_each_preorder(&self, f: &mut impl FnMut(EdgeKey, f64)) {
        let mut stack = Vec::new();
        if self.root != NIL {
            stack.push(self.root);
        }
        while let Some(t) = stack.pop() {
            let node = &self.nodes[t as usize];
            f(node.key, node.w);
            if node.right != NIL {
                stack.push(node.right);
            }
            if node.left != NIL {
                stack.push(node.left);
            }
        }
    }

    fn size(&self, t: u32) -> u32 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].size
        }
    }

    fn update(&mut self, t: u32) {
        let (l, r) = (self.nodes[t as usize].left, self.nodes[t as usize].right);
        self.nodes[t as usize].size = 1 + self.size(l) + self.size(r);
    }

    /// Splits `t` into (< key, ≥ key).
    fn split(&mut self, t: u32, key: &EdgeKey) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].key < *key {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split(right, key);
            self.nodes[t as usize].right = a;
            self.update(t);
            (t, b)
        } else {
            let left = self.nodes[t as usize].left;
            let (a, b) = self.split(left, key);
            self.nodes[t as usize].left = b;
            self.update(t);
            (a, t)
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let m = self.merge(ar, b);
            self.nodes[a as usize].right = m;
            self.update(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let m = self.merge(a, bl);
            self.nodes[b as usize].left = m;
            self.update(b);
            b
        }
    }

    fn alloc(&mut self, key: EdgeKey, w: f64) -> u32 {
        let node = TreapNode {
            key,
            w,
            prio: priority(&key),
            left: NIL,
            right: NIL,
            size: 1,
        };
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Inserts the edge `(u, v)` at weight `w`. The key must not be
    /// present (each live edge appears once).
    pub fn insert(&mut self, u: u32, v: u32, w: f64) {
        let key = EdgeKey::new(u, v, w);
        let node = self.alloc(key, w);
        let (a, b) = self.split(self.root, &key);
        #[cfg(debug_assertions)]
        if b != NIL {
            let mut t = b;
            while self.nodes[t as usize].left != NIL {
                t = self.nodes[t as usize].left;
            }
            debug_assert_ne!(self.nodes[t as usize].key, key, "duplicate edge key");
        }
        let ab = self.merge(a, node);
        self.root = self.merge(ab, b);
        self.sum.add(w);
        self.len += 1;
    }

    /// Removes the edge `(u, v)` that was inserted at weight `w` (the old
    /// weight keys it). Panics in debug builds when absent.
    pub fn remove(&mut self, u: u32, v: u32, w: f64) {
        let key = EdgeKey::new(u, v, w);
        let (removed, root) = self.erase(self.root, &key);
        debug_assert!(removed, "removing an edge that is not indexed");
        if removed {
            self.root = root;
            self.sum.sub(w);
            self.len -= 1;
        }
    }

    fn erase(&mut self, t: u32, key: &EdgeKey) -> (bool, u32) {
        if t == NIL {
            return (false, NIL);
        }
        let tk = self.nodes[t as usize].key;
        if tk == *key {
            let (l, r) = (self.nodes[t as usize].left, self.nodes[t as usize].right);
            self.free.push(t);
            return (true, self.merge(l, r));
        }
        if *key < tk {
            let left = self.nodes[t as usize].left;
            let (removed, nl) = self.erase(left, key);
            if removed {
                self.nodes[t as usize].left = nl;
                self.update(t);
            }
            (removed, t)
        } else {
            let right = self.nodes[t as usize].right;
            let (removed, nr) = self.erase(right, key);
            if removed {
                self.nodes[t as usize].right = nr;
                self.update(t);
            }
            (removed, t)
        }
    }

    /// The key at 0-based `rank` in the retention order (rank 0 = heaviest
    /// edge, best `(u, v)`), or `None` past the end — CEP's cutoff cursor.
    pub fn select(&self, rank: usize) -> Option<EdgeKey> {
        if rank >= self.len {
            return None;
        }
        let mut t = self.root;
        let mut rank = rank as u32;
        loop {
            let node = &self.nodes[t as usize];
            let ls = self.size(node.left);
            if rank < ls {
                t = node.left;
            } else if rank == ls {
                return Some(node.key);
            } else {
                rank -= ls + 1;
                t = node.right;
            }
        }
    }

    /// Number of keys ≤ `bound` (the size of a retention prefix).
    pub fn prefix_len(&self, bound: EdgeKey) -> usize {
        let mut t = self.root;
        let mut count = 0usize;
        while t != NIL {
            let node = &self.nodes[t as usize];
            if node.key <= bound {
                count += self.size(node.left) as usize + 1;
                t = node.right;
            } else {
                t = node.left;
            }
        }
        count
    }

    /// Visits every edge with `lo < key ≤ hi` in key order — the frontier
    /// band. `lo = None` means unbounded below (visit the whole prefix of
    /// `hi`). O(log |E| + visited).
    pub fn for_each_between(&self, lo: Frontier, hi: EdgeKey, f: &mut impl FnMut(EdgeKey, f64)) {
        self.band_visit(self.root, lo, hi, f);
    }

    fn band_visit(&self, t: u32, lo: Frontier, hi: EdgeKey, f: &mut impl FnMut(EdgeKey, f64)) {
        if t == NIL {
            return;
        }
        let node = &self.nodes[t as usize];
        let above_lo = lo.is_none_or(|l| node.key > l);
        if above_lo {
            self.band_visit(node.left, lo, hi, f);
            if node.key <= hi {
                f(node.key, node.w);
            }
        }
        if node.key <= hi || !above_lo {
            self.band_visit(node.right, lo, hi, f);
        }
    }

    /// Materialises the retained pairs of a frontier — the lazy read path
    /// (O(prefix log prefix) for the final sort by `(u, v)`).
    pub fn prefix_pairs(&self, frontier: Frontier) -> RetainedPairs {
        let Some(bound) = frontier else {
            return RetainedPairs::default();
        };
        let mut pairs: Vec<(ProfileId, ProfileId)> = Vec::new();
        self.for_each_between(None, bound, &mut |key, _| {
            pairs.push((ProfileId(key.u), ProfileId(key.v)));
        });
        pairs.sort_unstable();
        RetainedPairs::from_sorted(pairs)
    }
}

/// One freshly accumulated-and-weighted edge of a repair pass: the
/// canonical pair, the weight, and the raw local accumulator the weight was
/// derived from (cached so a later global-statistic drift can re-derive the
/// weight without any block traversal).
#[derive(Debug, Clone, Copy)]
pub struct FreshEdge {
    /// Canonical owner endpoint (smaller id).
    pub u: u32,
    /// The other endpoint.
    pub v: u32,
    /// The weight under the snapshot statistics at collection time.
    pub w: f64,
    /// The edge's local co-occurrence components.
    pub acc: EdgeAccum,
}

/// One cached edge entry of an [`EdgeAdjacency`] row — the packed,
/// padding-free layout (24 bytes, vs 40 for a naive
/// `(v, w, EdgeAccum)`): the neighbour, the last decided weight, and the
/// accumulator's shared-block count and ARCS reciprocal sum. The
/// accumulator's entropy tally is *not* stored per entry: a snapshot with
/// no entropies attached accumulates exactly 1.0 per shared block
/// ([`GraphSnapshot::slot_entropy`]), so `entropy_sum` is bit-exactly
/// `common_blocks as f64` (integer sums of 1.0 are exact far beyond any
/// feasible block count) and is re-derived on read. Pipelines that attach
/// real entropies promote the adjacency to carry index-aligned entropy
/// side rows on first contact ([`EdgeAdjacency::promote_entropy`]) —
/// losslessly, because every entry stored before the first non-derived
/// tally must itself hold the derived value.
#[derive(Debug, Clone, Copy)]
struct CachedEdge {
    /// The last weight pushed through the decision stage.
    w: f64,
    /// Σ over shared blocks of 1/‖b‖ (the ARCS component).
    arcs: f64,
    /// The neighbour on this row.
    v: u32,
    /// Number of shared blocks |B_ij|.
    common_blocks: u32,
}

/// Per-node rows of `(neighbour, weight, accumulator)` covering every live
/// edge (each edge stored at both endpoints, rows ascending by neighbour
/// id): the commit-path source of the *old* dirty-incident edges and their
/// old weights, and — through the cached accumulators — the reweigh tier's
/// input: when a global scalar (|B|, degrees, |E_G|) drifts, every clean
/// edge's weight is re-derived from its cached local factors and the
/// patched snapshot ([`EdgeAdjacency::reweigh_clean`]) instead of
/// re-accumulated from the blocks. Clean rows are patched by binary-search
/// surgery proportional to the dirty neighbourhood. Entries are stored
/// packed (`CachedEdge`, 24 bytes) with the entropy tally elided until
/// a pipeline actually attaches entropies — the dominant memory cost of
/// the reweigh tier at scale.
#[derive(Debug, Default)]
pub struct EdgeAdjacency {
    rows: Vec<Vec<CachedEdge>>,
    /// Index-aligned entropy tallies (`EdgeAccum::entropy_sum`), one row
    /// per node mirroring `rows`, present only once an inserted
    /// accumulator's tally differs bitwise from the derived
    /// `common_blocks as f64` value (see `CachedEdge`).
    ent: Option<Vec<Vec<f64>>>,
    /// Cold-tier state when the pipeline runs under a memory budget.
    residency: Option<Box<AdjResidency>>,
}

/// A demoted adjacency row: its frame plus the entry count (so the
/// footprint counters stay exact without a decode).
#[derive(Debug, Clone, Copy)]
struct ColdRow {
    frame: FrameRef,
    len: u32,
}

/// Residency state of a budgeted adjacency: the cold frame store, one
/// optional cold slot per row, and per-row last-touch epochs.
#[derive(Debug)]
struct AdjResidency {
    store: ColdStore,
    cold: Vec<Option<ColdRow>>,
    touch: Vec<u32>,
    epoch: u32,
}

impl EdgeAdjacency {
    /// An empty adjacency.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the row table to cover `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.rows.len() < n {
            self.rows.resize_with(n, Vec::new);
        }
        if let Some(ent) = &mut self.ent {
            if ent.len() < n {
                ent.resize_with(n, Vec::new);
            }
        }
        if let Some(r) = self.residency.as_deref_mut() {
            if r.cold.len() < n {
                r.cold.resize(n, None);
                r.touch.resize(n, r.epoch);
            }
        }
    }

    /// The entropy tally a no-entropy snapshot would have accumulated for
    /// this entry — 1.0 per shared block, summed exactly.
    #[inline]
    fn derived_entropy(e: &CachedEdge) -> f64 {
        e.common_blocks as f64
    }

    /// Whether storing `acc` requires the entropy side rows.
    #[inline]
    fn needs_entropy(acc: &EdgeAccum) -> bool {
        acc.entropy_sum.to_bits() != (acc.common_blocks as f64).to_bits()
    }

    /// Materialises the entropy side rows from the packed entries. Every
    /// entry cached so far held the derived tally (otherwise this
    /// promotion would already have run), so the materialised values are
    /// bit-identical to the tallies the entries were inserted with.
    fn promote_entropy(&mut self) {
        debug_assert!(self.ent.is_none());
        // Promotion derives the side rows from the packed entries, so
        // every row must be hot while it runs.
        self.ensure_all_hot();
        self.ent = Some(
            self.rows
                .iter()
                .map(|row| row.iter().map(Self::derived_entropy).collect())
                .collect(),
        );
    }

    /// Encodes one row (and its entropy side row, when promoted) into a
    /// cold frame payload: ascending neighbour ids delta-compress, weights
    /// and ARCS sums are raw `f64` bits — lossless either way.
    fn encode_row(row: &[CachedEdge], ent: Option<&[f64]>, out: &mut Vec<u8>) {
        out.push(ent.is_some() as u8);
        let vs: Vec<u32> = row.iter().map(|e| e.v).collect();
        encode_u32s(&vs, out);
        for e in row {
            put_varint(out, e.common_blocks as u64);
        }
        for e in row {
            put_f64(out, e.w);
        }
        for e in row {
            put_f64(out, e.arcs);
        }
        if let Some(ent) = ent {
            for &x in ent {
                put_f64(out, x);
            }
        }
    }

    /// Decodes an [`EdgeAdjacency::encode_row`] payload.
    fn decode_row(bytes: &[u8]) -> (Vec<CachedEdge>, Option<Vec<f64>>) {
        let mut pos = 0;
        let has_ent = bytes[pos] != 0;
        pos += 1;
        let mut vs: Vec<u32> = Vec::new();
        decode_u32s(bytes, &mut pos, &mut vs);
        let mut row: Vec<CachedEdge> = vs
            .into_iter()
            .map(|v| CachedEdge {
                w: 0.0,
                arcs: 0.0,
                v,
                common_blocks: 0,
            })
            .collect();
        for e in &mut row {
            e.common_blocks = get_varint(bytes, &mut pos) as u32;
        }
        for e in &mut row {
            e.w = get_f64(bytes, &mut pos);
        }
        for e in &mut row {
            e.arcs = get_f64(bytes, &mut pos);
        }
        let ent = has_ent.then(|| (0..row.len()).map(|_| get_f64(bytes, &mut pos)).collect());
        (row, ent)
    }

    /// Runs `f` over node `u`'s row and entropy side row. Hot rows are
    /// borrowed directly; cold ones decode transiently under `&self`
    /// (counted as a rehydration, not promoted) — shared read paths stay
    /// correct at any eviction cadence.
    fn with_row<R>(&self, u: u32, f: impl FnOnce(&[CachedEdge], Option<&[f64]>) -> R) -> R {
        let ui = u as usize;
        if ui >= self.rows.len() {
            return f(&[], None);
        }
        if let Some(r) = self.residency.as_deref() {
            if let Some(cold) = r.cold.get(ui).copied().flatten() {
                let bytes = r
                    .store
                    .get(cold.frame)
                    .unwrap_or_else(|e| panic!("cold tier: adjacency row {u} lost: {e}"));
                let (row, ent) = Self::decode_row(&bytes);
                let ent: Option<Vec<f64>> = match (&self.ent, ent) {
                    (Some(_), Some(e)) => Some(e),
                    (Some(_), None) => Some(row.iter().map(Self::derived_entropy).collect()),
                    (None, _) => None,
                };
                return f(&row, ent.as_deref());
            }
        }
        f(
            &self.rows[ui],
            self.ent.as_ref().map(|ent| ent[ui].as_slice()),
        )
    }

    /// Entry count of node `u`'s row, hot or cold (no decode).
    fn row_len(&self, u: usize) -> usize {
        if let Some(r) = self.residency.as_deref() {
            if let Some(c) = r.cold.get(u).copied().flatten() {
                return c.len as usize;
            }
        }
        self.rows[u].len()
    }

    /// Promotes a cold row back to its hot `Vec`s and stamps its touch
    /// epoch. Every mutation path goes through this.
    fn ensure_row_hot(&mut self, u: u32) {
        let Some(r) = self.residency.as_deref_mut() else {
            return;
        };
        let ui = u as usize;
        if ui >= r.cold.len() {
            return;
        }
        if let Some(cold) = r.cold[ui].take() {
            let bytes = r
                .store
                .get(cold.frame)
                .unwrap_or_else(|e| panic!("cold tier: adjacency row {u} lost: {e}"));
            r.store.free(cold.frame);
            let (row, ent) = Self::decode_row(&bytes);
            if let Some(side) = &mut self.ent {
                side[ui] = ent.unwrap_or_else(|| row.iter().map(Self::derived_entropy).collect());
            }
            self.rows[ui] = row;
        }
        r.touch[ui] = r.epoch;
    }

    /// Rehydrates the given rows ahead of a repair pass (the blocker's
    /// prefetch hook).
    pub fn ensure_rows(&mut self, nodes: &[u32]) {
        if self.residency.is_none() {
            return;
        }
        for &u in nodes {
            self.ensure_row_hot(u);
        }
    }

    /// Rehydrates every cold row — the full-sweep passes (tier-2 reweigh,
    /// entropy promotion) scan all rows and re-demotion is the eviction
    /// policy's job afterwards.
    fn ensure_all_hot(&mut self) {
        if self.residency.is_none() {
            return;
        }
        for u in 0..self.rows.len() as u32 {
            let is_cold = self
                .residency
                .as_deref()
                .is_some_and(|r| r.cold.get(u as usize).copied().flatten().is_some());
            if is_cold {
                self.ensure_row_hot(u);
            }
        }
    }

    // -- cold-tier residency ------------------------------------------------

    /// Turns on cold-tier residency (idempotent). With a `spill` backend
    /// the demoted frames leave memory entirely.
    pub fn enable_residency(&mut self, spill: Option<Box<dyn SpillBackend>>) {
        if self.residency.is_some() {
            return;
        }
        let store = match spill {
            Some(backend) => ColdStore::spilled(backend),
            None => ColdStore::in_memory(),
        };
        self.residency = Some(Box::new(AdjResidency {
            store,
            cold: vec![None; self.rows.len()],
            touch: vec![0; self.rows.len()],
            epoch: 0,
        }));
    }

    /// Whether a memory budget is active on this adjacency.
    pub fn residency_enabled(&self) -> bool {
        self.residency.is_some()
    }

    /// Cold-tier telemetry (zeros when residency is off).
    pub fn cold_stats(&self) -> ColdStats {
        self.residency
            .as_ref()
            .map(|r| r.store.stats())
            .unwrap_or_default()
    }

    /// Hot row bytes the eviction policy could demote (0 when residency
    /// is off).
    pub fn evictable_hot_bytes(&self) -> usize {
        if self.residency.is_none() {
            return 0;
        }
        let ent = self.ent.is_some();
        self.rows
            .iter()
            .map(|row| Self::hot_row_bytes(row.len(), ent))
            .sum()
    }

    #[inline]
    fn hot_row_bytes(len: usize, ent: bool) -> usize {
        len * std::mem::size_of::<CachedEdge>()
            + if ent {
                len * std::mem::size_of::<f64>()
            } else {
                0
            }
    }

    /// One eviction round over the adjacency rows — same deterministic
    /// `(touch epoch, node id)` policy as the block index.
    pub fn enforce_residency(&mut self, idle_commits: u32, target_hot_bytes: usize) {
        if self.residency.is_none() {
            return;
        }
        let epoch = {
            let r = self.residency.as_deref_mut().unwrap();
            r.epoch += 1;
            if r.cold.len() < self.rows.len() {
                r.cold.resize(self.rows.len(), None);
                r.touch.resize(self.rows.len(), r.epoch);
            }
            r.epoch
        };
        let has_ent = self.ent.is_some();
        let mut hot_bytes = 0usize;
        let mut candidates: Vec<(u32, u32)> = Vec::new();
        {
            let r = self.residency.as_deref().unwrap();
            for (u, row) in self.rows.iter().enumerate() {
                if row.is_empty() {
                    continue;
                }
                hot_bytes += Self::hot_row_bytes(row.len(), has_ent);
                candidates.push((r.touch[u], u as u32));
            }
        }
        candidates.sort_unstable();
        let mut scratch = Vec::new();
        for (touch, u) in candidates {
            let stale = (touch as u64) + (idle_commits as u64) < epoch as u64;
            if !stale && hot_bytes <= target_hot_bytes {
                break;
            }
            let row = std::mem::take(&mut self.rows[u as usize]);
            let ent_row = self
                .ent
                .as_mut()
                .map(|ent| std::mem::take(&mut ent[u as usize]));
            hot_bytes -= Self::hot_row_bytes(row.len(), has_ent);
            scratch.clear();
            Self::encode_row(&row, ent_row.as_deref(), &mut scratch);
            let r = self.residency.as_deref_mut().unwrap();
            let frame = r.store.put(&scratch);
            r.cold[u as usize] = Some(ColdRow {
                frame,
                len: row.len() as u32,
            });
        }
        let r = self.residency.as_deref_mut().unwrap();
        if r.store.wants_compaction() {
            let AdjResidency { store, cold, .. } = r;
            let refs: Vec<&mut FrameRef> = cold
                .iter_mut()
                .filter_map(|c| c.as_mut().map(|c| &mut c.frame))
                .collect();
            store.compact(refs);
        }
    }

    /// Reconstructs the full accumulator of entry `i` on row `u` —
    /// bit-identical to the one it was cached with.
    #[inline]
    fn acc_at(&self, u: usize, i: usize) -> EdgeAccum {
        let e = &self.rows[u][i];
        EdgeAccum {
            common_blocks: e.common_blocks,
            arcs: e.arcs,
            entropy_sum: match &self.ent {
                Some(ent) => ent[u][i],
                None => Self::derived_entropy(e),
            },
        }
    }

    /// Number of live edges in the cache (each mirrored entry pair counts
    /// once), cold rows included — the `--stats` footprint counter.
    /// O(rows).
    pub fn live_edges(&self) -> usize {
        self.cached_accumulators() / 2
    }

    /// Number of cached accumulator entries (two mirrors per live edge),
    /// cold rows included.
    pub fn cached_accumulators(&self) -> usize {
        (0..self.rows.len()).map(|u| self.row_len(u)).sum()
    }

    /// Estimated resident heap footprint in bytes: packed entry capacity,
    /// entropy side rows when promoted, and the row headers themselves.
    pub fn resident_bytes(&self) -> usize {
        let entries: usize = self
            .rows
            .iter()
            .map(|row| row.capacity() * std::mem::size_of::<CachedEdge>())
            .sum();
        let ent: usize = self.ent.as_ref().map_or(0, |ent| {
            ent.iter()
                .map(|row| row.capacity() * std::mem::size_of::<f64>())
                .sum()
        });
        let headers = (self.rows.capacity() + self.ent.as_ref().map_or(0, Vec::capacity))
            * std::mem::size_of::<Vec<f64>>();
        let residency = self.residency.as_ref().map_or(0, |r| {
            r.cold.capacity() * std::mem::size_of::<Option<ColdRow>>()
                + r.touch.capacity() * std::mem::size_of::<u32>()
        });
        entries + ent + headers + residency
    }

    /// The live edges with at least one endpoint in the mask, canonical
    /// `(min, max, old weight)`, each exactly once, sorted — the old-side
    /// counterpart of `collect_edges_touching`.
    pub fn collect_touching(&self, dirty: &[u32], mask: &EpochMask) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        for &u in dirty {
            self.with_row(u, |row, _| {
                for e in row {
                    // Emit once: from the smaller endpoint when both are
                    // dirty, from the dirty endpoint otherwise.
                    if u < e.v || !mask.contains(e.v) {
                        out.push((u.min(e.v), u.max(e.v), e.w));
                    }
                }
            });
        }
        out.sort_unstable_by_key(|&(a, b, _)| (a, b));
        out
    }

    /// Every live edge once, canonical `(u, v, weight)`, sorted ascending.
    /// A diagnostics/verification view (the repair ladder builds its
    /// decision input from the sweep + dirty merge instead); O(|E|), never
    /// on the dirty-neighbourhood tier.
    pub fn all_edges(&self) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        for u in 0..self.rows.len() as u32 {
            self.with_row(u, |row, _| {
                for e in row {
                    if e.v > u {
                        out.push((u, e.v, e.w));
                    }
                }
            });
        }
        out
    }

    /// Drops every edge, keeping row allocations (the degraded-full
    /// rebuild path; O(rows), allowed there and only there). Cold frames
    /// are dropped too; the cumulative telemetry counters persist.
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
        if let Some(ent) = &mut self.ent {
            for row in ent {
                row.clear();
            }
        }
        if let Some(r) = self.residency.as_deref_mut() {
            for slot in &mut r.cold {
                *slot = None;
            }
            r.store.clear();
        }
    }

    /// Bulk-loads a full canonical fresh-edge list into cleared rows (the
    /// degraded-full rebuild path). Scanning `fresh` in `(u, v)` order
    /// pushes each row's partners ascending (all `y < u` arrive before all
    /// `x > u`), so rows come out sorted without a sort.
    pub fn load(&mut self, fresh: &[FreshEdge]) {
        if self.ent.is_none() && fresh.iter().any(|e| Self::needs_entropy(&e.acc)) {
            self.promote_entropy();
        }
        for e in fresh {
            let packed = CachedEdge {
                w: e.w,
                arcs: e.acc.arcs,
                v: e.v,
                common_blocks: e.acc.common_blocks,
            };
            self.rows[e.u as usize].push(CachedEdge { v: e.v, ..packed });
            self.rows[e.v as usize].push(CachedEdge { v: e.u, ..packed });
            if let Some(ent) = &mut self.ent {
                ent[e.u as usize].push(e.acc.entropy_sum);
                ent[e.v as usize].push(e.acc.entropy_sum);
            }
        }
        debug_assert!(self
            .rows
            .iter()
            .all(|row| row.windows(2).all(|w| w[0].v < w[1].v)));
    }

    /// Adds one edge (both mirror rows, binary-search insertion).
    pub fn insert_edge(&mut self, a: u32, b: u32, w: f64, acc: EdgeAccum) {
        if self.ent.is_none() && Self::needs_entropy(&acc) {
            self.promote_entropy();
        }
        self.ensure_row_hot(a);
        self.ensure_row_hot(b);
        for (x, y) in [(a, b), (b, a)] {
            let row = &mut self.rows[x as usize];
            let i = row
                .binary_search_by_key(&y, |e| e.v)
                .expect_err("inserting a duplicate edge");
            row.insert(
                i,
                CachedEdge {
                    w,
                    arcs: acc.arcs,
                    v: y,
                    common_blocks: acc.common_blocks,
                },
            );
            if let Some(ent) = &mut self.ent {
                ent[x as usize].insert(i, acc.entropy_sum);
            }
        }
    }

    /// Removes one edge (both mirror rows).
    pub fn remove_edge(&mut self, a: u32, b: u32) {
        self.ensure_row_hot(a);
        self.ensure_row_hot(b);
        for (x, y) in [(a, b), (b, a)] {
            let row = &mut self.rows[x as usize];
            let i = row
                .binary_search_by_key(&y, |e| e.v)
                .expect("removing an absent edge");
            row.remove(i);
            if let Some(ent) = &mut self.ent {
                ent[x as usize].remove(i);
            }
        }
    }

    /// Re-weights one edge in place (fresh accumulator included) — no row
    /// shifting.
    pub fn set_edge(&mut self, a: u32, b: u32, w: f64, acc: EdgeAccum) {
        if self.ent.is_none() && Self::needs_entropy(&acc) {
            self.promote_entropy();
        }
        self.ensure_row_hot(a);
        self.ensure_row_hot(b);
        for (x, y) in [(a, b), (b, a)] {
            let row = &mut self.rows[x as usize];
            let i = row
                .binary_search_by_key(&y, |e| e.v)
                .expect("re-weighting an absent edge");
            row[i].w = w;
            row[i].arcs = acc.arcs;
            row[i].common_blocks = acc.common_blocks;
            if let Some(ent) = &mut self.ent {
                ent[x as usize][i] = acc.entropy_sum;
            }
        }
    }

    /// Streams node `u`'s cached adjacency in **row orientation** —
    /// `f(v, weigher.weight(ctx, u, v, acc))`, ascending neighbours. Batch
    /// node passes weigh each edge from the row owner's side, and weights
    /// are *not* bitwise orientation-symmetric (float rounding of the EJS
    /// /χ² factor products), so the reweigh tier re-derives per-node
    /// artefacts the same way. The cached accumulator itself *is*
    /// orientation-symmetric (same shared blocks, ascending slot order
    /// from either endpoint), which is what makes this bit-identical to a
    /// scratch pass.
    pub fn for_each_node_weight(
        &self,
        u: u32,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        mut f: impl FnMut(u32, f64),
    ) {
        self.with_row(u, |row, ent| {
            for (i, entry) in row.iter().enumerate() {
                let acc = EdgeAccum {
                    common_blocks: entry.common_blocks,
                    arcs: entry.arcs,
                    entropy_sum: ent.map_or_else(|| Self::derived_entropy(entry), |e| e[i]),
                };
                f(entry.v, weigher.weight(ctx, u, entry.v, &acc));
            }
        });
    }

    /// The **reweigh tier's** sweep: re-derives the weight of every edge
    /// with *no* marked endpoint from its cached accumulator and the
    /// current snapshot statistics (the marked edges' fresh weights arrive
    /// through the dirty merge instead), updates the cached weights in
    /// place, and returns every clean edge as `(u, v, old w, new w)` in
    /// canonical ascending order. No block is traversed; bit-identity to a
    /// batch re-weighting follows from the factored-weight contract.
    ///
    /// The serial reference implementation; the commit path runs
    /// [`EdgeAdjacency::reweigh_clean_sharded`], which must reproduce this
    /// output bit-for-bit (pinned by the unit test below and the sharded
    /// equivalence property tests).
    pub fn reweigh_clean(
        &mut self,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        mask: &EpochMask,
    ) -> Vec<(u32, u32, f64, f64)> {
        // The sweep reads and patches every clean row: rehydrate up front
        // (an eviction round landing before a tier-2 commit must not
        // change what the sweep sees).
        self.ensure_all_hot();
        let mut swept: Vec<(u32, u32, f64, f64)> = Vec::new();
        for u in 0..self.rows.len() as u32 {
            let u_marked = mask.contains(u);
            for i in 0..self.rows[u as usize].len() {
                let e = self.rows[u as usize][i];
                if e.v <= u || u_marked || mask.contains(e.v) {
                    continue;
                }
                let acc = self.acc_at(u as usize, i);
                let nw = weigher.weight(ctx, u, e.v, &acc);
                swept.push((u, e.v, e.w, nw));
                if nw.to_bits() != e.w.to_bits() {
                    self.rows[u as usize][i].w = nw;
                    let row = &mut self.rows[e.v as usize];
                    let j = row
                        .binary_search_by_key(&u, |m| m.v)
                        .expect("rows must mirror");
                    row[j].w = nw;
                }
            }
        }
        swept
    }

    /// The shard-parallel reweigh sweep — what the commit path runs.
    ///
    /// Each owner shard scans its own adjacency rows ascending and
    /// re-derives its clean edges' weights in parallel on the
    /// work-stealing scheduler (the compute is read-only: weights are pure
    /// functions of the cached accumulator plus O(1) snapshot statistics).
    /// The per-shard runs — each already in canonical `(u, v)` order — are
    /// then reduced at the **merge frontier**
    /// ([`crate::shard::merge_shard_runs`]) into the single canonical
    /// sequence the serial sweep produces, and the re-keyed weights are
    /// applied to the mirrored rows in that canonical order. Cross-shard
    /// edges are accounted to `ShardStats::frontier_pairs` along the way.
    ///
    /// Bit-identical to [`EdgeAdjacency::reweigh_clean`] at every shard
    /// and thread count: the chunk geometry of the compute pass cannot
    /// affect per-edge bits, and the merge restores the exact serial
    /// order before anything stateful happens.
    pub fn reweigh_clean_sharded(
        &mut self,
        ctx: &GraphSnapshot,
        weigher: &dyn EdgeWeigher,
        mask: &EpochMask,
        plan: &ShardPlan,
        threads: usize,
    ) -> (Vec<(u32, u32, f64, f64)>, ShardStats) {
        self.ensure_all_hot();
        let n = self.rows.len();
        let owned = plan.owned_nodes(n);
        // Shard-major scan order: chunk-ordered concatenation of the
        // work-stolen results is then exactly "each shard's run, in shard
        // order", each run sorted by (u, v).
        let order: Vec<u32> = owned.iter().flatten().copied().collect();
        let chunk = (n / 128).clamp(32, 4096);
        let this = &*self;
        let chunks = parallel_work_steal(
            order.len(),
            threads,
            chunk,
            || (),
            |_, range| {
                let mut out: Vec<(u32, u32, f64, f64)> = Vec::new();
                for &u in &order[range] {
                    if mask.contains(u) {
                        continue;
                    }
                    let row = &this.rows[u as usize];
                    for (i, e) in row.iter().enumerate() {
                        if e.v <= u || mask.contains(e.v) {
                            continue;
                        }
                        let acc = this.acc_at(u as usize, i);
                        out.push((u, e.v, e.w, weigher.weight(ctx, u, e.v, &acc)));
                    }
                }
                out
            },
        );
        // Split the shard-major stream back into one run per shard.
        let mut runs: Vec<Vec<(u32, u32, f64, f64)>> =
            (0..plan.shards()).map(|_| Vec::new()).collect();
        let mut stats = ShardStats::new(plan);
        for (u, v, ow, nw) in chunks.into_iter().flatten() {
            stats.record_edge(plan, u, v);
            runs[plan.shard_of(u)].push((u, v, ow, nw));
        }
        debug_assert!(runs
            .iter()
            .all(|r| r.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1))));
        let swept = merge_shard_runs(runs, |&(u, v, _, _)| (u, v));
        // Apply the re-keyed weights in canonical order (mirrored rows).
        for &(u, v, ow, nw) in &swept {
            if nw.to_bits() != ow.to_bits() {
                for (x, y) in [(u, v), (v, u)] {
                    let row = &mut self.rows[x as usize];
                    let i = row
                        .binary_search_by_key(&y, |m| m.v)
                        .expect("rows must mirror");
                    row[i].w = nw;
                }
            }
        }
        (swept, stats)
    }
}

/// CNP's per-pair containment counter: for each candidate pair, how many
/// of its two endpoints currently list the other in their top-k (0, 1 or
/// 2). Stored once per pair at the smaller endpoint, rows ascending.
/// Retention is `count ≥ NodeCentricMode::required_listings()`, so a list
/// diff's increments/decrements surface retention flips as threshold
/// crossings — no global union over all n lists.
#[derive(Debug, Default)]
pub struct ContainmentIndex {
    rows: Vec<Vec<(u32, u8)>>,
}

impl ContainmentIndex {
    /// An empty counter table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the row table to cover `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.rows.len() < n {
            self.rows.resize_with(n, Vec::new);
        }
    }

    /// Estimated resident heap footprint in bytes (row capacities).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.rows
            .iter()
            .map(|r| r.capacity() * size_of::<(u32, u8)>())
            .sum::<usize>()
            + self.rows.len() * size_of::<Vec<(u32, u8)>>()
    }

    /// The current containment count of the pair `{a, b}`.
    pub fn count(&self, a: u32, b: u32) -> u8 {
        let (lo, hi) = (a.min(b), a.max(b));
        self.rows
            .get(lo as usize)
            .and_then(|row| {
                row.binary_search_by_key(&hi, |&(v, _)| v)
                    .ok()
                    .map(|i| row[i].1)
            })
            .unwrap_or(0)
    }

    /// Applies one directed listing change (+1: `a` now lists `b`; -1: it
    /// no longer does), returning the count before the change. Entries
    /// vanish at zero.
    pub fn bump(&mut self, a: u32, b: u32, delta: i8) -> u8 {
        let (lo, hi) = (a.min(b), a.max(b));
        let row = &mut self.rows[lo as usize];
        match row.binary_search_by_key(&hi, |&(v, _)| v) {
            Ok(i) => {
                let before = row[i].1;
                let after = before as i8 + delta;
                debug_assert!((0..=2).contains(&after), "containment count in 0..=2");
                if after == 0 {
                    row.remove(i);
                } else {
                    row[i].1 = after as u8;
                }
                before
            }
            Err(i) => {
                debug_assert!(delta > 0, "decrementing an absent pair");
                row.insert(i, (hi, 1));
                0
            }
        }
    }

    /// Materialises the retained pairs (count ≥ `need`) — the lazy read
    /// path. Rows are sorted, owners ascend, so the output is born sorted.
    pub fn to_pairs(&self, need: u8) -> RetainedPairs {
        let mut pairs: Vec<(ProfileId, ProfileId)> = Vec::new();
        for (u, row) in self.rows.iter().enumerate() {
            for &(v, c) in row {
                if c >= need {
                    pairs.push((ProfileId(u as u32), ProfileId(v)));
                }
            }
        }
        RetainedPairs::from_sorted(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(n: usize, marked: &[u32]) -> EpochMask {
        let mut m = EpochMask::new();
        m.begin(n);
        for &u in marked {
            m.mark(u);
        }
        m
    }

    #[test]
    fn treap_orders_by_weight_then_pair() {
        let mut idx = OrderedWeightIndex::new();
        idx.insert(0, 1, 2.0);
        idx.insert(2, 3, 5.0);
        idx.insert(0, 2, 2.0);
        idx.insert(1, 3, 1.0);
        assert_eq!(idx.len(), 4);
        // Retention order: (2,3)@5, (0,1)@2, (0,2)@2 (tie → (u,v) asc), (1,3)@1.
        assert_eq!(idx.select(0).map(|k| (k.u, k.v)), Some((2, 3)));
        assert_eq!(idx.select(1).map(|k| (k.u, k.v)), Some((0, 1)));
        assert_eq!(idx.select(2).map(|k| (k.u, k.v)), Some((0, 2)));
        assert_eq!(idx.select(3).map(|k| (k.u, k.v)), Some((1, 3)));
        assert_eq!(idx.select(4), None);

        idx.remove(0, 1, 2.0);
        assert_eq!(idx.select(1).map(|k| (k.u, k.v)), Some((0, 2)));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.sum().round(), 8.0);
    }

    #[test]
    fn band_visits_between_frontiers_only() {
        let mut idx = OrderedWeightIndex::new();
        for (u, v, w) in [
            (0, 1, 5.0),
            (0, 2, 4.0),
            (1, 2, 3.0),
            (1, 3, 2.0),
            (2, 3, 1.0),
        ] {
            idx.insert(u, v, w);
        }
        let lo = idx.select(0); // (0,1)@5
        let hi = idx.select(3).unwrap(); // (1,3)@2
        let mut seen = Vec::new();
        idx.for_each_between(lo, hi, &mut |k, w| seen.push(((k.u, k.v), w)));
        assert_eq!(
            seen,
            vec![((0, 2), 4.0), ((1, 2), 3.0), ((1, 3), 2.0)],
            "strictly after lo, up to and including hi, in key order"
        );
        assert_eq!(idx.prefix_len(hi), 4);
        let all = idx.prefix_pairs(idx.select(4));
        assert_eq!(all.len(), 5);
        assert!(idx.prefix_pairs(None).is_empty());
    }

    fn edges(list: &[(u32, u32, f64)]) -> Vec<FreshEdge> {
        list.iter()
            .map(|&(u, v, w)| FreshEdge {
                u,
                v,
                w,
                acc: EdgeAccum::default(),
            })
            .collect()
    }

    #[test]
    fn adjacency_patches_dirty_region() {
        let mut adj = EdgeAdjacency::new();
        adj.ensure_nodes(5);
        let full = mask_of(5, &[0, 1, 2, 3, 4]);
        adj.load(&edges(&[
            (0, 1, 1.0),
            (0, 3, 2.0),
            (1, 2, 3.0),
            (2, 3, 4.0),
        ]));

        // Node 2 dirty: (2,3) vanishes, (1,2) reweighted, (2,4) appears.
        let mask = mask_of(5, &[2]);
        let old = adj.collect_touching(&[2], &mask);
        assert_eq!(old, vec![(1, 2, 3.0), (2, 3, 4.0)]);
        adj.remove_edge(2, 3);
        adj.set_edge(1, 2, 30.0, EdgeAccum::default());
        adj.insert_edge(2, 4, 50.0, EdgeAccum::default());
        let now = adj.collect_touching(&[0, 1, 2, 3, 4], &full);
        assert_eq!(
            now,
            vec![(0, 1, 1.0), (0, 3, 2.0), (1, 2, 30.0), (2, 4, 50.0)]
        );
        assert_eq!(adj.all_edges(), now, "all_edges ≡ full-mask collect");
        adj.clear();
        assert!(adj.collect_touching(&[0, 1, 2, 3, 4], &full).is_empty());
    }

    /// The reweigh sweep re-derives clean weights from cached accumulators
    /// and the *current* snapshot globals, skipping masked edges.
    #[test]
    fn reweigh_clean_rederives_from_cache() {
        use blast_blocking::block::Block;
        use blast_blocking::collection::BlockCollection;
        use blast_blocking::key::ClusterId;

        // Weight = |B| · common_blocks: a pure (global × local) factoring.
        struct TimesTotalBlocks;
        impl EdgeWeigher for TimesTotalBlocks {
            fn weight(&self, ctx: &GraphSnapshot, _: u32, _: u32, acc: &EdgeAccum) -> f64 {
                ctx.total_blocks() as f64 * acc.common_blocks as f64
            }
        }
        let snap = |blocks: usize| {
            let b = (0..blocks)
                .map(|i| {
                    Block::new(
                        format!("b{i}"),
                        ClusterId::GLUE,
                        vec![ProfileId(0), ProfileId(1)],
                        u32::MAX,
                    )
                })
                .collect();
            GraphSnapshot::build(&BlockCollection::new(b, false, 4, 4))
        };

        let mut adj = EdgeAdjacency::new();
        adj.ensure_nodes(4);
        let acc = EdgeAccum {
            common_blocks: 3,
            ..EdgeAccum::default()
        };
        adj.load(&[
            FreshEdge {
                u: 0,
                v: 1,
                w: 3.0,
                acc,
            },
            FreshEdge {
                u: 2,
                v: 3,
                w: 3.0,
                acc,
            },
        ]);
        // |B| drifts 1 → 2: the clean edge re-derives to 6; the masked
        // edge (2,3) is left for the dirty merge.
        let mask = mask_of(4, &[2]);
        let swept = adj.reweigh_clean(&snap(2), &TimesTotalBlocks, &mask);
        assert_eq!(swept, vec![(0, 1, 3.0, 6.0)]);
        assert_eq!(
            adj.all_edges(),
            vec![(0, 1, 6.0), (2, 3, 3.0)],
            "cache weight updated in place; masked edge untouched"
        );
        // Node-orientation artefact read: same weigher, row side first.
        let mut seen = Vec::new();
        adj.for_each_node_weight(1, &snap(2), &TimesTotalBlocks, |v, w| seen.push((v, w)));
        assert_eq!(seen, vec![(0, 6.0)]);
    }

    /// The shard-parallel sweep is bit-identical to the serial reference —
    /// same swept sequence (order included), same patched rows, correct
    /// frontier accounting — at every shard × thread combination.
    #[test]
    fn reweigh_clean_sharded_matches_serial_bitwise() {
        use blast_blocking::block::Block;
        use blast_blocking::collection::BlockCollection;
        use blast_blocking::key::ClusterId;

        struct TimesTotalBlocks;
        impl EdgeWeigher for TimesTotalBlocks {
            fn weight(&self, ctx: &GraphSnapshot, u: u32, v: u32, acc: &EdgeAccum) -> f64 {
                ctx.total_blocks() as f64 * acc.common_blocks as f64 / (1.0 + (u + v) as f64)
            }
        }
        let snap = |blocks: usize| {
            let b = (0..blocks)
                .map(|i| {
                    Block::new(
                        format!("b{i}"),
                        ClusterId::GLUE,
                        vec![ProfileId(0), ProfileId(1)],
                        u32::MAX,
                    )
                })
                .collect();
            GraphSnapshot::build(&BlockCollection::new(b, false, 64, 64))
        };

        // A deterministic pseudo-random graph over 61 nodes.
        let n = 61u32;
        let mut edges = Vec::new();
        let mut x = 0x9e37u64;
        for u in 0..n {
            for step in 1..6u32 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = u + 1 + (x >> 33) as u32 % (step * 7 + 1);
                if v < n {
                    edges.push(FreshEdge {
                        u,
                        v,
                        w: 1.0,
                        acc: EdgeAccum {
                            common_blocks: 1 + (x % 5) as u32,
                            ..EdgeAccum::default()
                        },
                    });
                }
            }
        }
        edges.sort_unstable_by_key(|e| (e.u, e.v));
        edges.dedup_by_key(|e| (e.u, e.v));
        let mask = mask_of(n as usize, &[7, 20, 33]);
        let ctx = snap(3);

        let mut reference = EdgeAdjacency::new();
        reference.ensure_nodes(n as usize);
        reference.load(&edges);
        let expected = reference.reweigh_clean(&ctx, &TimesTotalBlocks, &mask);
        let expected_rows = reference.all_edges();
        assert!(!expected.is_empty());

        for shards in [1usize, 2, 3, 4, 8] {
            for threads in [1usize, 2, 8] {
                let mut adj = EdgeAdjacency::new();
                adj.ensure_nodes(n as usize);
                adj.load(&edges);
                let plan = ShardPlan::new(shards);
                let (swept, stats) =
                    adj.reweigh_clean_sharded(&ctx, &TimesTotalBlocks, &mask, &plan, threads);
                assert_eq!(swept, expected, "shards={shards} threads={threads}");
                assert_eq!(adj.all_edges(), expected_rows);
                assert_eq!(stats.total(), expected.len());
                let frontier = expected
                    .iter()
                    .filter(|&&(u, v, _, _)| plan.is_frontier(u, v))
                    .count();
                assert_eq!(stats.frontier_pairs, frontier);
                if shards == 1 {
                    assert_eq!(stats.frontier_pairs, 0);
                }
            }
        }
    }

    /// The packed layout is 24 bytes and the entropy side rows appear
    /// only when an accumulator actually carries a non-derived tally —
    /// and the promotion is lossless: accumulators cached before the
    /// promotion read back bit-identical afterwards.
    #[test]
    fn packed_entries_promote_entropy_losslessly() {
        assert_eq!(std::mem::size_of::<CachedEdge>(), 24);
        let mut adj = EdgeAdjacency::new();
        adj.ensure_nodes(4);
        // Derived tally: entropy_sum ≡ common_blocks as f64 → no side rows.
        let plain = EdgeAccum {
            common_blocks: 3,
            arcs: 0.75,
            entropy_sum: 3.0,
        };
        adj.insert_edge(0, 1, 1.5, plain);
        assert!(adj.ent.is_none(), "derived tallies stay packed");
        assert_eq!(adj.acc_at(0, 0), plain, "reconstructed bit-identical");
        assert_eq!(adj.live_edges(), 1);
        assert_eq!(adj.cached_accumulators(), 2);
        assert!(adj.resident_bytes() > 0);

        // A real entropy tally promotes — and the pre-promotion entry
        // still reads back exactly as inserted.
        let entropic = EdgeAccum {
            common_blocks: 2,
            arcs: 0.5,
            entropy_sum: 1.375,
        };
        adj.insert_edge(2, 3, 2.0, entropic);
        assert!(adj.ent.is_some(), "non-derived tally promotes");
        assert_eq!(adj.acc_at(0, 0), plain);
        assert_eq!(adj.acc_at(2, 0), entropic);
        // In-place re-weight with a fresh tally round-trips too.
        let moved = EdgeAccum {
            common_blocks: 4,
            arcs: 1.25,
            entropy_sum: 2.5,
        };
        adj.set_edge(0, 1, 9.0, moved);
        assert_eq!(adj.acc_at(1, 0), moved);
        adj.remove_edge(2, 3);
        assert_eq!(adj.live_edges(), 1);
        adj.clear();
        assert_eq!(adj.cached_accumulators(), 0);
    }

    #[test]
    fn containment_counts_cross_thresholds() {
        let mut c = ContainmentIndex::new();
        c.ensure_nodes(4);
        assert_eq!(c.bump(0, 1, 1), 0); // 0 lists 1
        assert_eq!(c.bump(1, 0, 1), 1); // 1 lists 0 → mutual
        assert_eq!(c.count(1, 0), 2);
        assert_eq!(c.bump(0, 1, -1), 2);
        assert_eq!(c.count(0, 1), 1);
        assert_eq!(c.bump(1, 0, -1), 1);
        assert_eq!(c.count(0, 1), 0);
        c.bump(2, 3, 1);
        c.bump(0, 2, 1);
        c.bump(2, 0, 1);
        let redefined = c.to_pairs(1);
        let reciprocal = c.to_pairs(2);
        assert_eq!(redefined.len(), 2);
        assert_eq!(reciprocal.len(), 1);
        assert!(reciprocal.contains(ProfileId(0), ProfileId(2)));
    }
}
