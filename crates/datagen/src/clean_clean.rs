//! Clean-clean dataset generation: two duplicate-free sources over a shared
//! pool of canonical entities, with per-source schemas and noise.

use crate::domain::Domain;
use crate::schema_map::SourceSpec;
use crate::vocab::Vocabularies;
use crate::zipf::Zipf;
use blast_datamodel::collection::EntityCollection;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_datamodel::ground_truth::GroundTruth;
use blast_datamodel::hash::fx_hash_one;
use blast_datamodel::input::ErInput;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Specification of a clean-clean benchmark.
#[derive(Debug, Clone)]
pub struct CleanCleanSpec {
    /// Dataset label (reports).
    pub name: &'static str,
    /// The entity domain.
    pub domain: Domain,
    /// Entities present in both sources (the matches, |D_E|).
    pub shared: usize,
    /// Entities only in source 1.
    pub only1: usize,
    /// Entities only in source 2.
    pub only2: usize,
    /// Source 1 schema view + noise.
    pub source1: SourceSpec,
    /// Source 2 schema view + noise.
    pub source2: SourceSpec,
    /// Master seed (vocabularies, entities, noise all derive from it).
    pub seed: u64,
}

impl CleanCleanSpec {
    /// Scales all entity counts by `factor` (for quick tests and CI-sized
    /// experiment runs). Keeps at least one shared entity.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.shared = ((self.shared as f64 * factor) as usize).max(1);
        self.only1 = (self.only1 as f64 * factor) as usize;
        self.only2 = (self.only2 as f64 * factor) as usize;
        self
    }
}

/// Generates the two collections and the ground truth.
///
/// Entity ids: `0..shared` live in both sources, `shared..shared+only1`
/// only in source 1, the rest only in source 2. Each source renders its own
/// noisy view of the canonical entity, so matched profiles are similar but
/// never identical.
pub fn generate_clean_clean(spec: &CleanCleanSpec) -> (ErInput, GroundTruth) {
    let vocab = Vocabularies::new(spec.seed);
    let zipf = Zipf::new(vocab.words.len(), 1.05);

    let total_entities = spec.shared + spec.only1 + spec.only2;
    let canonical: Vec<_> = (0..total_entities)
        .map(|e| {
            let mut rng = StdRng::seed_from_u64(fx_hash_one(&(spec.seed, "entity", e)));
            spec.domain.generate(&vocab, &zipf, &mut rng)
        })
        .collect();

    let mut d1 = EntityCollection::new(SourceId(0));
    for (e, entity) in canonical.iter().enumerate().take(spec.shared + spec.only1) {
        let mut rng = StdRng::seed_from_u64(fx_hash_one(&(spec.seed, "s1", e)));
        let p = spec
            .source1
            .render(&format!("d1-{e}"), entity, &mut d1, &mut rng);
        d1.push(p);
    }

    let mut d2 = EntityCollection::new(SourceId(1));
    let mut gt = GroundTruth::new();
    let d1_len = d1.len() as u32;
    let d2_entities = (0..spec.shared).chain(spec.shared + spec.only1..total_entities);
    for (d2_pos, e) in d2_entities.enumerate() {
        let mut rng = StdRng::seed_from_u64(fx_hash_one(&(spec.seed, "s2", e)));
        let p = spec
            .source2
            .render(&format!("d2-{e}"), &canonical[e], &mut d2, &mut rng);
        d2.push(p);
        if e < spec.shared {
            gt.insert(ProfileId(e as u32), ProfileId(d1_len + d2_pos as u32));
        }
    }

    (ErInput::clean_clean(d1, d2), gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::schema_map::FieldMapping;

    fn small_spec() -> CleanCleanSpec {
        CleanCleanSpec {
            name: "test",
            domain: Domain::Bibliographic,
            shared: 50,
            only1: 10,
            only2: 5,
            source1: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("title"),
                    FieldMapping::Rename("authors"),
                    FieldMapping::Rename("venue"),
                    FieldMapping::Rename("year"),
                ],
                noise: NoiseModel::light(),
            },
            source2: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("name"),
                    FieldMapping::Rename("writers"),
                    FieldMapping::Rename("booktitle"),
                    FieldMapping::Rename("date"),
                ],
                noise: NoiseModel::light(),
            },
            seed: 99,
        }
    }

    #[test]
    fn sizes_match_spec() {
        let (input, gt) = generate_clean_clean(&small_spec());
        let ErInput::CleanClean { d1, d2 } = &input else {
            unreachable!()
        };
        assert_eq!(d1.len(), 60);
        assert_eq!(d2.len(), 55);
        assert_eq!(gt.len(), 50);
        assert_eq!(d1.attribute_count(), 4);
        assert_eq!(d2.attribute_count(), 4);
    }

    #[test]
    fn ground_truth_ids_are_valid_and_cross_source() {
        let (input, gt) = generate_clean_clean(&small_spec());
        let sep = input.separator();
        for (a, b) in gt.iter() {
            assert!(a.0 < sep);
            assert!(b.0 >= sep);
            assert!((b.0 as usize) < input.total_profiles());
        }
    }

    #[test]
    fn matching_profiles_share_tokens() {
        let (input, gt) = generate_clean_clean(&small_spec());
        use blast_datamodel::tokenizer::Tokenizer;
        let t = Tokenizer::new();
        let mut total_overlap = 0usize;
        for (a, b) in gt.iter() {
            let mut ta = std::collections::HashSet::new();
            for (_, v) in &input.profile(a).values {
                t.for_each_token(v, |tok| {
                    ta.insert(tok.to_string());
                });
            }
            let mut shared = 0;
            for (_, v) in &input.profile(b).values {
                t.for_each_token(v, |tok| {
                    if ta.contains(tok) {
                        shared += 1;
                    }
                });
            }
            total_overlap += usize::from(shared >= 2);
        }
        // Nearly every match must share ≥2 tokens (token blocking PC ≈ 1).
        assert!(
            total_overlap >= 48,
            "only {total_overlap}/50 matches share ≥2 tokens"
        );
    }

    #[test]
    fn deterministic() {
        let (a, _) = generate_clean_clean(&small_spec());
        let (b, _) = generate_clean_clean(&small_spec());
        let ErInput::CleanClean { d1: a1, .. } = &a else {
            unreachable!()
        };
        let ErInput::CleanClean { d1: b1, .. } = &b else {
            unreachable!()
        };
        assert_eq!(a1.profiles()[0], b1.profiles()[0]);
        assert_eq!(a1.nvp(), b1.nvp());
    }

    #[test]
    fn scaled_shrinks() {
        let spec = small_spec().scaled(0.1);
        assert_eq!(spec.shared, 5);
        let (input, gt) = generate_clean_clean(&spec);
        assert_eq!(gt.len(), 5);
        assert!(input.total_profiles() < 15);
    }
}
