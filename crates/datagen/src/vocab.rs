//! Deterministic vocabularies: pronounceable generated words, person names,
//! and small curated pools (venues, genres, cities) — no external data
//! files, fully seeded.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const SYLLABLES: &[&str] = &[
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "ka", "ke", "ki", "ko", "ku", "la",
    "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu", "ra", "re",
    "ri", "ro", "ru", "sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu", "va", "ve", "vi",
    "vo", "vu", "za", "ze", "zi", "zo", "zu", "ga", "gi", "go", "pa", "po",
];

/// Common function words: the Zipf head shared by most values (these create
/// the stop-word blocks Block Purging is for).
pub const FILLERS: &[&str] = &[
    "the", "of", "and", "a", "in", "for", "on", "with", "an", "to", "from", "by", "at", "new",
];

/// Deterministic word/name pools.
#[derive(Debug, Clone)]
pub struct Vocabularies {
    /// Content words ranked by intended frequency (use with a Zipf sampler).
    pub words: Vec<String>,
    /// Given names.
    pub first_names: Vec<String>,
    /// Family names.
    pub last_names: Vec<String>,
    /// Venue-ish names (conferences / shops / labels).
    pub venues: Vec<String>,
    /// Brand names.
    pub brands: Vec<String>,
    /// City names.
    pub cities: Vec<String>,
    /// Genre labels.
    pub genres: Vec<String>,
}

/// Generates `n` distinct pronounceable words of 2..=max_syllables
/// syllables.
fn words(n: usize, max_syllables: usize, prefix: &str, rng: &mut StdRng) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while out.len() < n {
        let syl = rng.random_range(2..=max_syllables);
        let mut w = String::from(prefix);
        for _ in 0..syl {
            w.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
        }
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

impl Vocabularies {
    /// Builds all pools deterministically from a seed.
    pub fn new(seed: u64) -> Self {
        Self::scaled(seed, 1.0)
    }

    /// Builds the pools with their sizes multiplied by `scale` (≥ 1), so
    /// token diversity grows with the corpus instead of every word block
    /// collapsing into a giant stop-word-like posting list at 10⁵–10⁶
    /// profiles. `scaled(seed, 1.0)` is bit-identical to `new(seed)`.
    ///
    /// Pools are capped (the content-word pool at 1.5M entries) and the
    /// syllable budget widens automatically once a pool outgrows its
    /// combinatorial space, keeping the dedup loop fast.
    pub fn scaled(seed: u64, scale: f64) -> Self {
        assert!(scale >= 1.0, "vocab_scale must be ≥ 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = |base: usize, cap: usize| (((base as f64) * scale) as usize).min(cap);
        // Smallest max-syllable count whose space comfortably holds `count`
        // distinct words (space ≈ 60^max; keep ≥ 4× headroom).
        let syl = |count: usize, base: usize| {
            let mut max = base;
            while (SYLLABLES.len() as f64).powi(max as i32) < (count as f64) * 4.0 {
                max += 1;
            }
            max
        };
        let wn = n(6000, 1_500_000);
        let fst = n(220, 120_000);
        let lst = n(400, 160_000);
        let ven = n(80, 20_000);
        let brd = n(70, 20_000);
        let cty = n(120, 30_000);
        Self {
            words: words(wn, syl(wn, 4), "", &mut rng),
            first_names: words(fst, syl(fst, 3), "", &mut rng),
            last_names: words(lst, syl(lst, 3), "", &mut rng),
            venues: words(ven, syl(ven, 3), "v", &mut rng),
            brands: words(brd, syl(brd, 3), "b", &mut rng),
            cities: words(cty, syl(cty, 3), "c", &mut rng),
            genres: words(16, 2, "g", &mut rng),
        }
    }

    /// A full person name "first last".
    pub fn person_name(&self, rng: &mut StdRng) -> String {
        format!(
            "{} {}",
            self.first_names[rng.random_range(0..self.first_names.len())],
            self.last_names[rng.random_range(0..self.last_names.len())]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_deterministic_and_distinct() {
        let a = Vocabularies::new(1);
        let b = Vocabularies::new(1);
        assert_eq!(a.words, b.words);
        let c = Vocabularies::new(2);
        assert_ne!(a.words, c.words);
        let distinct: std::collections::HashSet<_> = a.words.iter().collect();
        assert_eq!(distinct.len(), a.words.len());
    }

    #[test]
    fn pools_have_expected_sizes() {
        let v = Vocabularies::new(7);
        assert_eq!(v.words.len(), 6000);
        assert!(v.first_names.len() >= 200);
        assert!(v.venues.len() >= 50);
    }

    #[test]
    fn scaled_pools_grow_and_unit_scale_is_identity() {
        let base = Vocabularies::new(5);
        let unit = Vocabularies::scaled(5, 1.0);
        assert_eq!(base.words, unit.words, "scale 1.0 must be bit-identical");
        assert_eq!(base.first_names, unit.first_names);
        let big = Vocabularies::scaled(5, 10.0);
        assert_eq!(big.words.len(), 60_000);
        assert_eq!(big.first_names.len(), 2_200);
        let distinct: std::collections::HashSet<_> = big.words.iter().collect();
        assert_eq!(distinct.len(), big.words.len());
    }

    #[test]
    fn person_names_have_two_tokens() {
        let v = Vocabularies::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let name = v.person_name(&mut rng);
            assert_eq!(name.split(' ').count(), 2);
        }
    }

    /// Generated titles must actually be Zipf-headed: the most frequent
    /// token should appear an order of magnitude more often than the median
    /// one — that skew is what produces the stop-word blocks Block Purging
    /// removes and the rare discriminating tokens meta-blocking rewards.
    #[test]
    fn generated_corpora_are_heavy_tailed() {
        use crate::domain::Domain;
        use crate::zipf::Zipf;
        let v = Vocabularies::new(11);
        let z = Zipf::new(v.words.len(), 1.05);
        let mut counts: std::collections::HashMap<String, u64> = Default::default();
        for seed in 0..400 {
            let mut rng = StdRng::seed_from_u64(seed);
            let e = Domain::Bibliographic.generate(&v, &z, &mut rng);
            for value in &e.fields[0] {
                for tok in value.split(' ') {
                    *counts.entry(tok.to_string()).or_insert(0) += 1;
                }
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top = freqs[0];
        let median = freqs[freqs.len() / 2];
        assert!(
            top >= 10 * median.max(1),
            "head {top} vs median {median}: distribution not heavy-tailed"
        );
    }
}
