//! Per-source schema views.
//!
//! Two sources rarely agree on schema: attributes are renamed, split
//! ("name" → "name1"/"name2", the paper's Fig. 1), merged, scattered across
//! huge heterogeneous property pools (DBpedia), or exploded into indexed
//! columns (cddb's track01…track99). A [`SourceSpec`] maps each canonical
//! field through one [`FieldMapping`] and corrupts values with its
//! [`NoiseModel`].

use crate::domain::CanonicalEntity;
use crate::noise::NoiseModel;
use blast_datamodel::collection::EntityCollection;
use blast_datamodel::entity::EntityProfile;
use blast_datamodel::hash::fx_hash_one;
use rand::rngs::StdRng;

/// How one canonical field appears in a source's schema.
#[derive(Debug, Clone)]
pub enum FieldMapping {
    /// The field becomes a single attribute with this name.
    Rename(&'static str),
    /// The field's tokens are distributed over these attributes in
    /// contiguous chunks ("John Abram Jr" → name1 = "John Abram",
    /// name2 = "Jr").
    Split(&'static [&'static str]),
    /// The field is appended to a shared attribute (several fields may
    /// merge into the same name, e.g. "work info").
    MergeInto(&'static str),
    /// Each value lands in one of `variants` pooled attributes chosen by
    /// hashing the value's first token — stable across sources, so similar
    /// kinds gather in corresponding attributes (DBpedia-style property
    /// space).
    Pool {
        /// Attribute-name prefix (source-specific).
        prefix: &'static str,
        /// Number of pooled attribute names.
        variants: u32,
    },
    /// The i-th value becomes attribute `{prefix}{i:02}` (cddb tracks).
    Indexed(&'static str),
    /// The source does not expose this field.
    Drop,
}

/// One source's schema view + noise.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// One mapping per canonical field (same order as
    /// `Domain::field_names`).
    pub mappings: Vec<FieldMapping>,
    /// The corruption model of this source.
    pub noise: NoiseModel,
}

impl SourceSpec {
    /// Renders a canonical entity as a profile of this source, interning
    /// attribute names into `collection` and corrupting values with `rng`.
    pub fn render(
        &self,
        external_id: &str,
        entity: &CanonicalEntity,
        collection: &mut EntityCollection,
        rng: &mut StdRng,
    ) -> EntityProfile {
        let mut profile = EntityProfile::new(external_id);
        for (field_values, mapping) in entity.fields.iter().zip(&self.mappings) {
            for (vi, value) in field_values.iter().enumerate() {
                if self.noise.drops_value(rng) {
                    continue;
                }
                let corrupted = self.noise.corrupt(value, rng);
                if corrupted.is_empty() {
                    continue;
                }
                match mapping {
                    FieldMapping::Rename(name) => {
                        let attr = collection.attribute(name);
                        profile.push(attr, corrupted);
                    }
                    FieldMapping::MergeInto(name) => {
                        let attr = collection.attribute(name);
                        profile.push(attr, corrupted);
                    }
                    FieldMapping::Split(parts) => {
                        let tokens: Vec<&str> = corrupted.split(' ').collect();
                        let chunk = tokens.len().div_ceil(parts.len()).max(1);
                        for (part, piece) in parts.iter().zip(tokens.chunks(chunk)) {
                            let attr = collection.attribute(part);
                            profile.push(attr, piece.join(" "));
                        }
                    }
                    FieldMapping::Pool { prefix, variants } => {
                        let first = corrupted.split(' ').next().unwrap_or("");
                        let k = fx_hash_one(&first) % *variants as u64;
                        let attr = collection.attribute(&format!("{prefix}{k}"));
                        profile.push(attr, corrupted);
                    }
                    FieldMapping::Indexed(prefix) => {
                        let attr = collection.attribute(&format!("{prefix}{vi:02}"));
                        profile.push(attr, corrupted);
                    }
                    FieldMapping::Drop => {}
                }
            }
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::vocab::Vocabularies;
    use crate::zipf::Zipf;
    use blast_datamodel::entity::SourceId;
    use rand::SeedableRng;

    fn entity(domain: Domain, seed: u64) -> CanonicalEntity {
        let vocab = Vocabularies::new(1);
        let zipf = Zipf::new(vocab.words.len(), 1.05);
        let mut rng = StdRng::seed_from_u64(seed);
        domain.generate(&vocab, &zipf, &mut rng)
    }

    #[test]
    fn rename_and_drop() {
        let e = entity(Domain::Bibliographic, 1);
        let spec = SourceSpec {
            mappings: vec![
                FieldMapping::Rename("title"),
                FieldMapping::Rename("authors"),
                FieldMapping::Drop,
                FieldMapping::Rename("year"),
            ],
            noise: NoiseModel::clean(),
        };
        let mut coll = EntityCollection::new(SourceId(0));
        let mut rng = StdRng::seed_from_u64(0);
        let p = spec.render("x", &e, &mut coll, &mut rng);
        assert_eq!(p.nvp(), 3);
        assert_eq!(coll.attribute_count(), 3);
        assert!(coll.attribute_id("venue").is_none());
    }

    #[test]
    fn split_distributes_tokens() {
        let e = CanonicalEntity {
            fields: vec![vec!["john abram jr".to_string()]],
        };
        let spec = SourceSpec {
            mappings: vec![FieldMapping::Split(&["name1", "name2"])],
            noise: NoiseModel::clean(),
        };
        let mut coll = EntityCollection::new(SourceId(0));
        let mut rng = StdRng::seed_from_u64(0);
        let p = spec.render("x", &e, &mut coll, &mut rng);
        let n1 = coll.attribute_id("name1").unwrap();
        let n2 = coll.attribute_id("name2").unwrap();
        assert_eq!(p.values_of(n1).next(), Some("john abram"));
        assert_eq!(p.values_of(n2).next(), Some("jr"));
    }

    #[test]
    fn indexed_explodes_multivalues() {
        let e = CanonicalEntity {
            fields: vec![vec!["one".into(), "two".into(), "three".into()]],
        };
        let spec = SourceSpec {
            mappings: vec![FieldMapping::Indexed("track")],
            noise: NoiseModel::clean(),
        };
        let mut coll = EntityCollection::new(SourceId(0));
        let mut rng = StdRng::seed_from_u64(0);
        let p = spec.render("x", &e, &mut coll, &mut rng);
        assert_eq!(p.nvp(), 3);
        assert!(coll.attribute_id("track00").is_some());
        assert!(coll.attribute_id("track02").is_some());
    }

    #[test]
    fn pool_routes_same_kind_to_same_attribute() {
        let e = CanonicalEntity {
            fields: vec![vec![
                "k7 alpha beta".into(),
                "k7 gamma delta".into(),
                "k9 x".into(),
            ]],
        };
        let spec = SourceSpec {
            mappings: vec![FieldMapping::Pool {
                prefix: "p",
                variants: 1000,
            }],
            noise: NoiseModel::clean(),
        };
        let mut coll = EntityCollection::new(SourceId(0));
        let mut rng = StdRng::seed_from_u64(0);
        let p = spec.render("x", &e, &mut coll, &mut rng);
        assert_eq!(p.nvp(), 3);
        // The two k7 facts share an attribute; k9 gets its own.
        assert_eq!(coll.attribute_count(), 2);
    }

    #[test]
    fn merge_collects_fields() {
        let e = CanonicalEntity {
            fields: vec![vec!["retailer".into()], vec!["new york".into()]],
        };
        let spec = SourceSpec {
            mappings: vec![
                FieldMapping::MergeInto("info"),
                FieldMapping::MergeInto("info"),
            ],
            noise: NoiseModel::clean(),
        };
        let mut coll = EntityCollection::new(SourceId(0));
        let mut rng = StdRng::seed_from_u64(0);
        let p = spec.render("x", &e, &mut coll, &mut rng);
        assert_eq!(coll.attribute_count(), 1);
        assert_eq!(p.nvp(), 2);
    }
}
