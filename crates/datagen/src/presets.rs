//! One preset per paper dataset (Table 2 and Table 7), with the schema
//! views and noise levels that give each benchmark its character. `dbp` is
//! scaled down (documented in DESIGN.md §3): the original is 1.2M × 2.2M
//! profiles with 30k × 50k attributes; the preset keeps the structural
//! traits (heterogeneous pooled property space, partial mappability, high
//! nvp) at laptop scale.

use crate::clean_clean::CleanCleanSpec;
use crate::dirty::DirtySpec;
use crate::domain::Domain;
use crate::noise::NoiseModel;
use crate::schema_map::{FieldMapping, SourceSpec};

/// The clean-clean benchmarks of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CleanCleanPreset {
    /// ar1: DBLP ↔ ACM (bibliographic, fully mappable, clean).
    Ar1,
    /// ar2: DBLP ↔ Google Scholar (bibliographic, one noisy web source,
    /// very unbalanced sizes).
    Ar2,
    /// prd: Abt ↔ Buy (products, sparse values).
    Prd,
    /// mov: IMDB ↔ DBpedia (movies, partially mappable 4 vs 7 attributes,
    /// multi-valued actors).
    Mov,
    /// dbp: DBpedia 2007 ↔ 2009, scaled down (heterogeneous pooled
    /// properties, partially mappable).
    DbpScaled,
}

impl CleanCleanPreset {
    /// All five presets in the paper's order.
    pub const ALL: [CleanCleanPreset; 5] = [
        CleanCleanPreset::Ar1,
        CleanCleanPreset::Ar2,
        CleanCleanPreset::Prd,
        CleanCleanPreset::Mov,
        CleanCleanPreset::DbpScaled,
    ];

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            CleanCleanPreset::Ar1 => "ar1",
            CleanCleanPreset::Ar2 => "ar2",
            CleanCleanPreset::Prd => "prd",
            CleanCleanPreset::Mov => "mov",
            CleanCleanPreset::DbpScaled => "dbp",
        }
    }
}

/// Builds the spec of a clean-clean preset.
pub fn clean_clean_preset(preset: CleanCleanPreset) -> CleanCleanSpec {
    match preset {
        // DBLP 2.6k / ACM 2.3k, 4↔4 attributes, 2.2k matches, both curated.
        CleanCleanPreset::Ar1 => CleanCleanSpec {
            name: "ar1",
            domain: Domain::Bibliographic,
            shared: 2200,
            only1: 400,
            only2: 100,
            source1: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("title"),
                    FieldMapping::Rename("authors"),
                    FieldMapping::Rename("venue"),
                    FieldMapping::Rename("year"),
                ],
                noise: NoiseModel::light(),
            },
            source2: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("name"),
                    FieldMapping::Rename("writers"),
                    FieldMapping::Rename("booktitle"),
                    FieldMapping::Rename("date"),
                ],
                noise: NoiseModel::light(),
            },
            seed: 0xA41,
        },
        // DBLP 2.5k / Scholar 61k, 2.3k matches; Scholar is web-scraped.
        CleanCleanPreset::Ar2 => CleanCleanSpec {
            name: "ar2",
            domain: Domain::Bibliographic,
            shared: 2300,
            only1: 200,
            only2: 58_700,
            source1: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("title"),
                    FieldMapping::Rename("authors"),
                    FieldMapping::Rename("venue"),
                    FieldMapping::Rename("year"),
                ],
                noise: NoiseModel::light(),
            },
            source2: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("title"),
                    FieldMapping::Rename("author"),
                    FieldMapping::Rename("venue"),
                    FieldMapping::Rename("year"),
                ],
                noise: NoiseModel::heavy(),
            },
            seed: 0xA42,
        },
        // Abt 1.1k / Buy 1.1k, 1.1k matches; sparse name-value pairs.
        CleanCleanPreset::Prd => CleanCleanSpec {
            name: "prd",
            domain: Domain::Product,
            shared: 1080,
            only1: 20,
            only2: 15,
            source1: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("name"),
                    FieldMapping::Rename("description"),
                    FieldMapping::Rename("manufacturer"),
                    FieldMapping::Rename("price"),
                ],
                noise: NoiseModel {
                    value_missing: 0.38,
                    ..NoiseModel::medium()
                },
            },
            source2: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("title"),
                    FieldMapping::Rename("details"),
                    FieldMapping::Rename("brand"),
                    FieldMapping::Rename("cost"),
                ],
                noise: NoiseModel {
                    value_missing: 0.42,
                    ..NoiseModel::medium()
                },
            },
            seed: 0xA43,
        },
        // IMDB 28k (4 attrs) / DBpedia 23k (7 attrs), 23k matches,
        // partially mappable (actors/genre/country/writer only on one side,
        // name split on the other).
        CleanCleanPreset::Mov => CleanCleanSpec {
            name: "mov",
            domain: Domain::Movie,
            shared: 22_500,
            only1: 5_500,
            only2: 500,
            source1: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("title"),
                    FieldMapping::Rename("director"),
                    FieldMapping::Rename("starring"),
                    FieldMapping::Rename("year"),
                    FieldMapping::Drop,
                    FieldMapping::Drop,
                    FieldMapping::Drop,
                ],
                noise: NoiseModel::light(),
            },
            source2: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("label"),
                    FieldMapping::Rename("dbo_director"),
                    FieldMapping::Rename("dbo_starring"),
                    FieldMapping::Rename("dbo_year"),
                    FieldMapping::Rename("dbo_genre"),
                    FieldMapping::Rename("dbo_country"),
                    FieldMapping::Rename("dbo_writer"),
                ],
                noise: NoiseModel::medium(),
            },
            seed: 0xA44,
        },
        // DBpedia 2007 ↔ 2009, scaled: pooled heterogeneous properties,
        // ~25 % of nvp shared flavour via heavy noise + pool drift.
        CleanCleanPreset::DbpScaled => CleanCleanSpec {
            name: "dbp",
            domain: Domain::Encyclopedia,
            shared: 12_000,
            only1: 8_000,
            only2: 18_000,
            source1: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("rdfs_label"),
                    FieldMapping::Rename("abstract"),
                    FieldMapping::Pool {
                        prefix: "p07_",
                        variants: 1200,
                    },
                ],
                noise: NoiseModel::medium(),
            },
            source2: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("label"),
                    FieldMapping::Rename("dbo_abstract"),
                    FieldMapping::Pool {
                        prefix: "p09_",
                        variants: 1800,
                    },
                ],
                noise: NoiseModel::heavy(),
            },
            seed: 0xA45,
        },
    }
}

/// The dirty benchmarks of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirtyPreset {
    /// census: 1k person records, 300 matching pairs, 5 attributes.
    Census,
    /// cora: 1k citation records, ~17k matches (huge duplicate clusters),
    /// 12 attributes.
    Cora,
    /// cddb: 10k album records, 600 matches, ~106 attributes (tracks).
    Cddb,
    /// census100k: census-style person records at 10⁵ profiles with a
    /// 100× vocabulary (the memory-diet smoke preset).
    Census100k,
    /// census1m: census-style person records at 10⁶ profiles with a
    /// 1000× vocabulary (the million-profile memory preset).
    Census1m,
}

impl DirtyPreset {
    /// The paper's three presets (Table 7) — the quality/benchmark matrix.
    pub const ALL: [DirtyPreset; 3] = [DirtyPreset::Census, DirtyPreset::Cora, DirtyPreset::Cddb];

    /// The synthetic scale-up presets of the memory benchmark (not part of
    /// [`DirtyPreset::ALL`]: generating them is minutes, not seconds).
    pub const SCALED: [DirtyPreset; 2] = [DirtyPreset::Census100k, DirtyPreset::Census1m];

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            DirtyPreset::Census => "census",
            DirtyPreset::Cora => "cora",
            DirtyPreset::Cddb => "cddb",
            DirtyPreset::Census100k => "census100k",
            DirtyPreset::Census1m => "census1m",
        }
    }
}

/// Builds the spec of a dirty preset.
pub fn dirty_preset(preset: DirtyPreset) -> DirtySpec {
    match preset {
        DirtyPreset::Census => DirtySpec {
            name: "census",
            domain: Domain::Person,
            entities: 700,
            profiles: 1000,
            source: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("first"),
                    FieldMapping::Rename("last"),
                    FieldMapping::Rename("street"),
                    FieldMapping::Rename("city"),
                    FieldMapping::Rename("zip"),
                ],
                noise: NoiseModel::medium(),
            },
            seed: 0xD01,
            vocab_scale: 1.0,
        },
        DirtyPreset::Cora => DirtySpec {
            name: "cora",
            domain: Domain::Reference,
            entities: 29,
            profiles: 1015,
            source: SourceSpec {
                mappings: Domain::Reference
                    .field_names()
                    .iter()
                    .map(|n| FieldMapping::Rename(n))
                    .collect(),
                noise: NoiseModel::heavy(),
            },
            seed: 0xD02,
            vocab_scale: 1.0,
        },
        DirtyPreset::Cddb => DirtySpec {
            name: "cddb",
            domain: Domain::Music,
            entities: 9_400,
            profiles: 10_000,
            source: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("artist"),
                    FieldMapping::Rename("dtitle"),
                    FieldMapping::Rename("genre"),
                    FieldMapping::Rename("year"),
                    FieldMapping::Indexed("track"),
                ],
                noise: NoiseModel::medium(),
            },
            seed: 0xD03,
            vocab_scale: 1.0,
        },
        DirtyPreset::Census100k => census_scaled("census100k", 100, 0xD05),
        DirtyPreset::Census1m => census_scaled("census1m", 1000, 0xD06),
    }
}

/// A census-shaped person dataset at `factor`× the paper's 1k-profile
/// scale, with the vocabulary pools grown by the same factor so token
/// selectivity (and hence block structure) stays realistic instead of
/// degenerating into a handful of giant posting lists.
fn census_scaled(name: &'static str, factor: usize, seed: u64) -> DirtySpec {
    DirtySpec {
        name,
        domain: Domain::Person,
        entities: 700 * factor,
        profiles: 1000 * factor,
        source: SourceSpec {
            mappings: vec![
                FieldMapping::Rename("first"),
                FieldMapping::Rename("last"),
                FieldMapping::Rename("street"),
                FieldMapping::Rename("city"),
                FieldMapping::Rename("zip"),
            ],
            noise: NoiseModel::medium(),
        },
        seed,
        vocab_scale: factor as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean_clean::generate_clean_clean;
    use crate::dirty::generate_dirty;
    use blast_datamodel::input::ErInput;

    #[test]
    fn ar1_matches_table2_shape() {
        let (input, gt) = generate_clean_clean(&clean_clean_preset(CleanCleanPreset::Ar1));
        let ErInput::CleanClean { d1, d2 } = &input else {
            unreachable!()
        };
        assert_eq!(d1.len(), 2600);
        assert_eq!(d2.len(), 2300);
        assert_eq!(gt.len(), 2200);
        assert_eq!(d1.attribute_count(), 4);
        assert_eq!(d2.attribute_count(), 4);
        // nvp ≈ 4 per profile (Table 2: 10k / 9.2k).
        assert!(
            d1.nvp() > 9_000 && d1.nvp() <= 10_400,
            "nvp1 = {}",
            d1.nvp()
        );
    }

    #[test]
    fn prd_is_sparse() {
        let (input, gt) = generate_clean_clean(&clean_clean_preset(CleanCleanPreset::Prd));
        let ErInput::CleanClean { d1, d2 } = &input else {
            unreachable!()
        };
        assert_eq!(gt.len(), 1080);
        // Table 2: 2.6k / 2.3k nvp over 1.1k profiles ≈ 2.3 per profile.
        let per_profile = d1.nvp() as f64 / d1.len() as f64;
        assert!(
            (1.8..3.2).contains(&per_profile),
            "nvp/profile = {per_profile}"
        );
        assert!(d2.nvp() < d2.len() * 4);
    }

    #[test]
    fn dirty_presets_match_table7_shape() {
        let (input, gt) = generate_dirty(&dirty_preset(DirtyPreset::Census));
        assert_eq!(input.total_profiles(), 1000);
        assert_eq!(gt.len(), 300);

        let (input, gt) = generate_dirty(&dirty_preset(DirtyPreset::Cora).scaled(0.2));
        assert!(input.total_profiles() <= 210);
        assert!(gt.len() > 2_000, "cora-like duplication, got {}", gt.len());
    }

    #[test]
    fn cddb_has_track_attribute_explosion() {
        let (input, gt) = generate_dirty(&dirty_preset(DirtyPreset::Cddb).scaled(0.1));
        let ErInput::Dirty(d) = &input else {
            unreachable!()
        };
        assert!(
            d.attribute_count() > 40,
            "track columns should inflate |A|, got {}",
            d.attribute_count()
        );
        assert!(!gt.is_empty());
    }

    #[test]
    fn labels() {
        assert_eq!(CleanCleanPreset::Ar1.label(), "ar1");
        assert_eq!(DirtyPreset::Cddb.label(), "cddb");
        assert_eq!(CleanCleanPreset::ALL.len(), 5);
        assert_eq!(DirtyPreset::Census100k.label(), "census100k");
        assert!(!DirtyPreset::ALL.contains(&DirtyPreset::Census1m));
    }

    /// The scaled census presets must keep the paper preset's shape (same
    /// fields, same duplication ratio) while growing profiles and vocab
    /// together. Generating at a small scale factor keeps the test fast —
    /// `scaled` only shrinks entity counts, never the vocab multiplier.
    #[test]
    fn census_scaled_presets_keep_census_shape() {
        let spec = dirty_preset(DirtyPreset::Census100k);
        assert_eq!(spec.profiles, 100_000);
        assert_eq!(spec.entities, 70_000);
        assert_eq!(spec.vocab_scale, 100.0);
        let spec = dirty_preset(DirtyPreset::Census1m);
        assert_eq!(spec.profiles, 1_000_000);
        assert_eq!(spec.vocab_scale, 1000.0);

        let (input, gt) = generate_dirty(&dirty_preset(DirtyPreset::Census100k).scaled(0.01));
        let ErInput::Dirty(d) = &input else {
            unreachable!()
        };
        assert_eq!(d.len(), 1000);
        assert_eq!(d.attribute_count(), 5);
        assert!(gt.len() > 100, "census-like duplication, got {}", gt.len());
    }
}
