//! Dirty dataset generation: one collection containing duplicate clusters
//! (§4.5's census / cora / cddb settings).

use crate::domain::Domain;
use crate::schema_map::SourceSpec;
use crate::vocab::Vocabularies;
use crate::zipf::Zipf;
use blast_datamodel::collection::EntityCollection;
use blast_datamodel::entity::{ProfileId, SourceId};
use blast_datamodel::ground_truth::GroundTruth;
use blast_datamodel::hash::fx_hash_one;
use blast_datamodel::input::ErInput;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Specification of a dirty benchmark.
#[derive(Debug, Clone)]
pub struct DirtySpec {
    /// Dataset label.
    pub name: &'static str,
    /// The entity domain.
    pub domain: Domain,
    /// Number of canonical entities.
    pub entities: usize,
    /// Total number of profiles (≥ entities). The surplus is distributed as
    /// evenly as possible, so cluster sizes are ⌈profiles/entities⌉ or the
    /// floor — cora-style heavy duplication uses profiles ≫ entities.
    pub profiles: usize,
    /// The (single) source view + noise: every profile is an independent
    /// corruption of its canonical entity.
    pub source: SourceSpec,
    /// Master seed.
    pub seed: u64,
    /// Vocabulary pool multiplier (≥ 1; see [`Vocabularies::scaled`]).
    /// The paper-scale presets use 1.0; the 10⁵/10⁶-profile memory presets
    /// grow the pools so block structure stays realistic.
    pub vocab_scale: f64,
}

impl DirtySpec {
    /// Scales entity/profile counts by `factor`.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.entities = ((self.entities as f64 * factor) as usize).max(1);
        self.profiles = ((self.profiles as f64 * factor) as usize).max(self.entities);
        self
    }
}

/// Generates the dirty collection and its ground truth (all within-cluster
/// pairs). Profile order is shuffled so duplicates are not adjacent.
pub fn generate_dirty(spec: &DirtySpec) -> (ErInput, GroundTruth) {
    assert!(
        spec.profiles >= spec.entities,
        "need at least one profile per entity"
    );
    let vocab = Vocabularies::scaled(spec.seed, spec.vocab_scale);
    let zipf = Zipf::new(vocab.words.len(), 1.05);

    // Cluster sizes: distribute the surplus round-robin.
    let base = spec.profiles / spec.entities;
    let extra = spec.profiles % spec.entities;
    // Entity of each profile slot, then shuffled.
    let mut owners: Vec<u32> = (0..spec.entities as u32)
        .flat_map(|e| {
            let size = base + usize::from((e as usize) < extra);
            std::iter::repeat_n(e, size)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(fx_hash_one(&(spec.seed, "shuffle")));
    owners.shuffle(&mut rng);

    let canonical: Vec<_> = (0..spec.entities)
        .map(|e| {
            let mut rng = StdRng::seed_from_u64(fx_hash_one(&(spec.seed, "entity", e)));
            spec.domain.generate(&vocab, &zipf, &mut rng)
        })
        .collect();

    let mut d = EntityCollection::new(SourceId(0));
    let mut members: Vec<Vec<ProfileId>> = vec![Vec::new(); spec.entities];
    for (i, &owner) in owners.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(fx_hash_one(&(spec.seed, "profile", i)));
        let p = spec.source.render(
            &format!("p{i}"),
            &canonical[owner as usize],
            &mut d,
            &mut rng,
        );
        d.push(p);
        members[owner as usize].push(ProfileId(i as u32));
    }

    let mut gt = GroundTruth::new();
    for cluster in members {
        for (i, &a) in cluster.iter().enumerate() {
            for &b in &cluster[i + 1..] {
                gt.insert(a, b);
            }
        }
    }

    (ErInput::dirty(d), gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::schema_map::FieldMapping;

    fn spec(entities: usize, profiles: usize) -> DirtySpec {
        DirtySpec {
            name: "t",
            domain: Domain::Person,
            entities,
            profiles,
            source: SourceSpec {
                mappings: vec![
                    FieldMapping::Rename("first"),
                    FieldMapping::Rename("last"),
                    FieldMapping::Rename("street"),
                    FieldMapping::Rename("city"),
                    FieldMapping::Rename("zip"),
                ],
                noise: NoiseModel::medium(),
            },
            seed: 5,
            vocab_scale: 1.0,
        }
    }

    #[test]
    fn census_shape_pairs() {
        // 700 entities over 1000 profiles → 300 clusters of 2 → 300 matches.
        let (input, gt) = generate_dirty(&spec(700, 1000));
        assert_eq!(input.total_profiles(), 1000);
        assert_eq!(gt.len(), 300);
    }

    #[test]
    fn cora_shape_heavy_clusters() {
        // 29 entities over 1015 profiles → clusters of 35 →
        // 29·C(35,2) = 29·595 = 17255 matches (Table 7's 17k).
        let (_, gt) = generate_dirty(&spec(29, 1015));
        assert_eq!(gt.len(), 29 * (35 * 34) / 2);
    }

    #[test]
    fn ground_truth_is_transitive_within_clusters() {
        let (_, gt) = generate_dirty(&spec(10, 30));
        // Every profile belongs to exactly one cluster of 3 → each profile
        // matches exactly 2 others.
        let mut degree = std::collections::HashMap::new();
        for (a, b) in gt.iter() {
            *degree.entry(a).or_insert(0) += 1;
            *degree.entry(b).or_insert(0) += 1;
        }
        assert!(degree.values().all(|&d| d == 2));
    }

    #[test]
    fn duplicates_are_not_identical_but_similar() {
        let (input, gt) = generate_dirty(&spec(50, 100));
        let mut identical = 0;
        for (a, b) in gt.iter().take(50) {
            if input.profile(a).values == input.profile(b).values {
                identical += 1;
            }
        }
        assert!(identical < 25, "noise must differentiate most duplicates");
    }

    #[test]
    fn deterministic() {
        let (a, ga) = generate_dirty(&spec(20, 50));
        let (b, gb) = generate_dirty(&spec(20, 50));
        assert_eq!(a.profile(ProfileId(0)), b.profile(ProfileId(0)));
        assert_eq!(ga.len(), gb.len());
    }
}
