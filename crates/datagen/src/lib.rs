//! Synthetic entity-resolution benchmarks mirroring the BLAST evaluation
//! datasets (Table 2 and §4.5).
//!
//! The original benchmarks (DBLP–ACM, DBLP–Scholar, Abt–Buy, IMDB–DBpedia,
//! DBpedia 2007/2009, census, cora, cddb) are distributed as archives we do
//! not ship; these generators produce collections with the same *structure*:
//! matching profiles that share distinctive tokens through noisy,
//! differently-schema'd views of a canonical entity, and non-matching
//! profiles that collide on frequent (Zipf-headed) tokens. That is exactly
//! the regime redundancy-based blocking and meta-blocking operate in, so the
//! relative behaviour of the compared techniques is preserved (see
//! DESIGN.md §3 for the substitution rationale).
//!
//! * [`vocab`] / [`zipf`] — deterministic vocabularies and Zipf sampling.
//! * [`noise`] — the per-source corruption model (token drops/swaps, typos,
//!   abbreviations, numeric reformatting, missing values).
//! * [`domain`] — canonical entity generators per domain (bibliographic,
//!   product, movie, encyclopedia, person, reference, music).
//! * [`schema_map`] — per-source schema views: renames, splits, merges,
//!   attribute-name pools (heterogeneous dbp-style schemas), indexed
//!   attributes (cddb's track01…).
//! * [`clean_clean`] / [`dirty`] — the two ER settings, with ground truth.
//! * [`presets`] — one preset per paper dataset, sizes from Table 2
//!   (dbp scaled down; see DESIGN.md).
//! * [`stats`] — the Table 2 characteristics of a generated dataset.

pub mod clean_clean;
pub mod dirty;
pub mod domain;
pub mod noise;
pub mod presets;
pub mod schema_map;
pub mod stats;
pub mod vocab;
pub mod zipf;

pub use clean_clean::{generate_clean_clean, CleanCleanSpec};
pub use dirty::{generate_dirty, DirtySpec};
pub use domain::Domain;
pub use noise::NoiseModel;
pub use presets::{clean_clean_preset, dirty_preset, CleanCleanPreset, DirtyPreset};
pub use schema_map::{FieldMapping, SourceSpec};
pub use stats::DatasetStats;
