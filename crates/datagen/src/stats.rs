//! Dataset characteristics — the columns of Table 2.

use blast_datamodel::ground_truth::GroundTruth;
use blast_datamodel::input::ErInput;

/// The Table 2 characteristics of a generated dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// |E1| (and the only size for dirty inputs).
    pub e1: usize,
    /// |E2| (0 for dirty inputs).
    pub e2: usize,
    /// |A1|.
    pub a1: usize,
    /// |A2| (0 for dirty inputs).
    pub a2: usize,
    /// nvp of source 1.
    pub nvp1: usize,
    /// nvp of source 2 (0 for dirty inputs).
    pub nvp2: usize,
    /// |D_E|.
    pub duplicates: usize,
}

impl DatasetStats {
    /// Computes the characteristics of `input` with ground truth `gt`.
    pub fn of(input: &ErInput, gt: &GroundTruth) -> Self {
        match input {
            ErInput::CleanClean { d1, d2 } => Self {
                e1: d1.len(),
                e2: d2.len(),
                a1: d1.attribute_count(),
                a2: d2.attribute_count(),
                nvp1: d1.nvp(),
                nvp2: d2.nvp(),
                duplicates: gt.len(),
            },
            ErInput::Dirty(d) => Self {
                e1: d.len(),
                e2: 0,
                a1: d.attribute_count(),
                a2: 0,
                nvp1: d.nvp(),
                nvp2: 0,
                duplicates: gt.len(),
            },
        }
    }

    /// Formats the stats as a Table 2 row.
    pub fn table2_row(&self, label: &str) -> String {
        if self.e2 > 0 {
            format!(
                "{label:>5} | {:>9} - {:<9} | {:>6} - {:<6} | {:>9} - {:<9} | {:>8}",
                self.e1, self.e2, self.a1, self.a2, self.nvp1, self.nvp2, self.duplicates
            )
        } else {
            format!(
                "{label:>5} | {:>9} {:<11} | {:>6} {:<8} | {:>9} {:<11} | {:>8}",
                self.e1, "", self.a1, "", self.nvp1, "", self.duplicates
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::{ProfileId, SourceId};

    #[test]
    fn computes_clean_clean_stats() {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("a", [("x", "1"), ("y", "2")]);
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("b", [("z", "3")]);
        let mut gt = GroundTruth::new();
        gt.insert(ProfileId(0), ProfileId(1));
        let stats = DatasetStats::of(&ErInput::clean_clean(d1, d2), &gt);
        assert_eq!(stats.e1, 1);
        assert_eq!(stats.e2, 1);
        assert_eq!(stats.a1, 2);
        assert_eq!(stats.a2, 1);
        assert_eq!(stats.nvp1, 2);
        assert_eq!(stats.duplicates, 1);
        assert!(stats.table2_row("t").contains('|'));
    }

    #[test]
    fn computes_dirty_stats() {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs("a", [("x", "1")]);
        d.push_pairs("b", [("x", "2")]);
        let stats = DatasetStats::of(&ErInput::dirty(d), &GroundTruth::new());
        assert_eq!(stats.e1, 2);
        assert_eq!(stats.e2, 0);
        assert_eq!(stats.duplicates, 0);
    }
}
