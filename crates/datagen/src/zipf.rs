//! Zipf-distributed sampling.
//!
//! Real-world token frequencies are heavy-tailed: a handful of words appear
//! everywhere (producing the huge, noisy blocks Block Purging removes) and a
//! long tail of rare words discriminates entities. The sampler precomputes
//! the CDF once and draws by binary search.

use rand::rngs::StdRng;
use rand::RngExt;

/// A Zipf(n, s) sampler over ranks `0..n` (rank 0 most frequent).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution with `n` ranks and exponent `s` (s ≈ 1 for
    /// natural language).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1, n=1000: P(rank<10) ≈ H(10)/H(1000) ≈ 2.93/7.49 ≈ 0.39.
        let frac = head as f64 / N as f64;
        assert!((0.3..0.5).contains(&frac), "head fraction {frac}");
    }

    #[test]
    fn samples_cover_range() {
        let z = Zipf::new(5, 0.8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..2000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all ranks eventually sampled");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(100, 1.1);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
