//! Canonical-entity generation per domain.
//!
//! A *canonical entity* is the ground-truth object both sources describe:
//! a paper, a product, a movie, a person, an album, an encyclopedia entry.
//! Each domain defines its canonical fields (possibly multi-valued) and how
//! values are composed from the vocabularies: a blend of Zipf-headed common
//! words (producing large shared blocks) and tail words / codes that
//! discriminate entities (producing the small blocks meta-blocking thrives
//! on).

use crate::vocab::{Vocabularies, FILLERS};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::RngExt;

/// A canonical entity: one value list per canonical field.
#[derive(Debug, Clone)]
pub struct CanonicalEntity {
    /// Values indexed by the domain's field position.
    pub fields: Vec<Vec<String>>,
}

/// The generated domains, mirroring the paper's dataset domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Papers: title, authors, venue, year (ar1/ar2).
    Bibliographic,
    /// Products: name, description, manufacturer, price (prd).
    Product,
    /// Movies: title, director, actors, year, genre, country, writer (mov).
    Movie,
    /// Encyclopedia entries: label, abstract, kind-tagged facts (dbp).
    Encyclopedia,
    /// People: first, last, street, city, zip (census).
    Person,
    /// Citations: 12 bibliographic-record fields (cora).
    Reference,
    /// Albums: artist, title, genre, year, tracks (cddb).
    Music,
}

impl Domain {
    /// The canonical field names, in field-position order.
    pub fn field_names(&self) -> &'static [&'static str] {
        match self {
            Domain::Bibliographic => &["title", "authors", "venue", "year"],
            Domain::Product => &["name", "description", "manufacturer", "price"],
            Domain::Movie => &[
                "title", "director", "actors", "year", "genre", "country", "writer",
            ],
            Domain::Encyclopedia => &["label", "abstract", "facts"],
            Domain::Person => &["first", "last", "street", "city", "zip"],
            Domain::Reference => &[
                "author1",
                "author2",
                "title",
                "venue",
                "volume",
                "pages",
                "year",
                "publisher",
                "address",
                "editor",
                "month",
                "note",
            ],
            Domain::Music => &["artist", "title", "genre", "year", "tracks"],
        }
    }

    /// Generates the canonical entity with the given id. Deterministic in
    /// `rng` (seed per entity at the call site).
    pub fn generate(&self, vocab: &Vocabularies, zipf: &Zipf, rng: &mut StdRng) -> CanonicalEntity {
        let fields = match self {
            Domain::Bibliographic => {
                // Real titles embed author names and year-like numbers, so
                // tokens collide across attributes — exactly what key
                // disambiguation (Fig. 2) exists for.
                let mut t = title(5, 9, vocab, zipf, rng);
                if rng.random_range(0.0..1.0) < 0.25 {
                    let name = &vocab.last_names[rng.random_range(0..vocab.last_names.len())];
                    t = format!("the {name} method {t}");
                }
                if rng.random_range(0.0..1.0) < 0.15 {
                    t = format!("{t} {}", year(rng));
                }
                vec![
                    vec![t],
                    vec![names(1, 4, vocab, rng).join(" ")],
                    vec![vocab.venues[rng.random_range(0..vocab.venues.len())].clone()],
                    vec![year(rng)],
                ]
            }
            Domain::Product => {
                let brand = vocab.brands[rng.random_range(0..vocab.brands.len())].clone();
                let code = model_code(rng);
                let kind = words(1, 2, vocab, zipf, rng);
                // Descriptions repeat the brand and model code (as real shop
                // listings do), so a match survives even when the name value
                // is missing on one side.
                vec![
                    vec![format!("{brand} {code} {kind}")],
                    vec![format!(
                        "{kind} {brand} {code} {}",
                        title(6, 16, vocab, zipf, rng)
                    )],
                    vec![brand],
                    vec![format!(
                        "{}.{:02}",
                        rng.random_range(5..900),
                        rng.random_range(0..100)
                    )],
                ]
            }
            Domain::Movie => vec![
                vec![title(1, 5, vocab, zipf, rng)],
                vec![vocab.person_name(rng)],
                names(2, 7, vocab, rng),
                vec![year(rng)],
                vec![vocab.genres[rng.random_range(0..vocab.genres.len())].clone()],
                vec![vocab.cities[rng.random_range(0..vocab.cities.len())].clone()],
                vec![vocab.person_name(rng)],
            ],
            Domain::Encyclopedia => {
                let label = format!(
                    "{} {}",
                    vocab.person_name(rng),
                    vocab.words[zipf.sample(rng)]
                );
                let abstract_ = title(8, 24, vocab, zipf, rng);
                // Kind-tagged facts: the kind token routes the value to a
                // stable attribute in the schema map, and the payload words
                // come from a kind-specific vocabulary slice so the same
                // kind has similar values across sources.
                let n_facts = rng.random_range(4..=10);
                let facts = (0..n_facts)
                    .map(|_| {
                        let kind = zipf.sample(rng) % 2000;
                        let base = (kind * 3) % (vocab.words.len() - 40);
                        let w1 = &vocab.words[base + rng.random_range(0..20)];
                        let w2 = &vocab.words[base + rng.random_range(0..40)];
                        format!("k{kind} {w1} {w2}")
                    })
                    .collect();
                vec![vec![label], vec![abstract_], facts]
            }
            Domain::Person => vec![
                vec![vocab.first_names[rng.random_range(0..vocab.first_names.len())].clone()],
                vec![vocab.last_names[rng.random_range(0..vocab.last_names.len())].clone()],
                vec![format!(
                    "{} {} st",
                    rng.random_range(1..999),
                    vocab.words[zipf.sample(rng)]
                )],
                vec![vocab.cities[rng.random_range(0..vocab.cities.len())].clone()],
                vec![format!("{:05}", rng.random_range(10_000..99_999))],
            ],
            Domain::Reference => vec![
                vec![vocab.person_name(rng)],
                vec![vocab.person_name(rng)],
                vec![title(4, 10, vocab, zipf, rng)],
                vec![vocab.venues[rng.random_range(0..vocab.venues.len())].clone()],
                vec![format!("{}", rng.random_range(1..40))],
                vec![format!(
                    "{}--{}",
                    rng.random_range(1..400),
                    rng.random_range(400..900)
                )],
                vec![year(rng)],
                vec![vocab.brands[rng.random_range(0..vocab.brands.len())].clone()],
                vec![vocab.cities[rng.random_range(0..vocab.cities.len())].clone()],
                vec![vocab.person_name(rng)],
                vec![[
                    "jan", "feb", "mar", "apr", "may", "jun", "jul", "aug", "sep", "oct", "nov",
                    "dec",
                ][rng.random_range(0..12)]
                .to_string()],
                vec![words(2, 5, vocab, zipf, rng)],
            ],
            Domain::Music => {
                let r: f64 = rng.random_range(0.0..1.0);
                // Cubic skew: mostly short albums, rare ~100-track box sets
                // (how cddb reaches its 106 attributes).
                let n_tracks = 3 + (97.0 * r * r * r) as usize;
                let tracks = (0..n_tracks)
                    .map(|_| title(1, 4, vocab, zipf, rng))
                    .collect();
                vec![
                    vec![vocab.person_name(rng)],
                    vec![title(1, 4, vocab, zipf, rng)],
                    vec![vocab.genres[rng.random_range(0..vocab.genres.len())].clone()],
                    vec![year(rng)],
                    tracks,
                ]
            }
        };
        CanonicalEntity { fields }
    }
}

/// A phrase of `min..=max` Zipf-sampled content words with occasional
/// fillers.
fn title(min: usize, max: usize, vocab: &Vocabularies, zipf: &Zipf, rng: &mut StdRng) -> String {
    let n = rng.random_range(min..=max);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.random_range(0.0..1.0) < 0.18 {
            out.push(FILLERS[rng.random_range(0..FILLERS.len())].to_string());
        } else {
            out.push(vocab.words[zipf.sample(rng)].clone());
        }
    }
    out.join(" ")
}

fn words(min: usize, max: usize, vocab: &Vocabularies, zipf: &Zipf, rng: &mut StdRng) -> String {
    let n = rng.random_range(min..=max);
    (0..n)
        .map(|_| vocab.words[zipf.sample(rng)].clone())
        .collect::<Vec<_>>()
        .join(" ")
}

fn names(min: usize, max: usize, vocab: &Vocabularies, rng: &mut StdRng) -> Vec<String> {
    let n = rng.random_range(min..=max);
    (0..n).map(|_| vocab.person_name(rng)).collect()
}

fn year(rng: &mut StdRng) -> String {
    format!("{}", rng.random_range(1950..2021))
}

/// An alphanumeric model code ("mk4821x"), a strong discriminator.
fn model_code(rng: &mut StdRng) -> String {
    let letters: String = (0..2)
        .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
        .collect();
    format!(
        "{letters}{}{}",
        rng.random_range(100..9999),
        (b'a' + rng.random_range(0..26u8)) as char
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn generate(domain: Domain, seed: u64) -> CanonicalEntity {
        let vocab = Vocabularies::new(1);
        let zipf = Zipf::new(vocab.words.len(), 1.05);
        let mut rng = StdRng::seed_from_u64(seed);
        domain.generate(&vocab, &zipf, &mut rng)
    }

    #[test]
    fn all_domains_fill_every_field() {
        for domain in [
            Domain::Bibliographic,
            Domain::Product,
            Domain::Movie,
            Domain::Encyclopedia,
            Domain::Person,
            Domain::Reference,
            Domain::Music,
        ] {
            let e = generate(domain, 42);
            assert_eq!(e.fields.len(), domain.field_names().len(), "{domain:?}");
            for (f, name) in e.fields.iter().zip(domain.field_names()) {
                assert!(!f.is_empty(), "{domain:?}.{name} empty");
                assert!(
                    f.iter().all(|v| !v.is_empty()),
                    "{domain:?}.{name} blank value"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(Domain::Bibliographic, 7);
        let b = generate(Domain::Bibliographic, 7);
        assert_eq!(a.fields, b.fields);
        let c = generate(Domain::Bibliographic, 8);
        assert_ne!(a.fields, c.fields);
    }

    #[test]
    fn movie_actors_multivalued() {
        let e = generate(Domain::Movie, 3);
        assert!(e.fields[2].len() >= 2, "actors: {:?}", e.fields[2]);
    }

    #[test]
    fn music_tracks_skewed_but_bounded() {
        let mut max = 0;
        for seed in 0..300 {
            let e = generate(Domain::Music, seed);
            max = max.max(e.fields[4].len());
            assert!(e.fields[4].len() >= 3);
            assert!(e.fields[4].len() <= 100);
        }
        assert!(
            max > 30,
            "the skew should occasionally produce big albums, max {max}"
        );
    }

    #[test]
    fn encyclopedia_facts_are_kind_tagged() {
        let e = generate(Domain::Encyclopedia, 5);
        for fact in &e.fields[2] {
            assert!(
                fact.starts_with('k'),
                "fact {fact} must start with its kind tag"
            );
        }
    }
}
