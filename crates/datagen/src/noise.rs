//! The per-source corruption model.
//!
//! Two sources describing the same entity never agree exactly: tokens get
//! dropped or reordered, words abbreviated ("John" → "J."), characters
//! mistyped, years reformatted ("1985" → "85"), whole values lost. The
//! noise model applies these independently so matched profiles still share
//! most distinctive tokens (keeping token-blocking PC high) while exact
//! equality is rare.

use rand::rngs::StdRng;
use rand::RngExt;

/// Per-source noise probabilities (all per-token unless stated).
#[derive(Debug, Clone, Copy)]
pub struct NoiseModel {
    /// Drop a token.
    pub token_drop: f64,
    /// Swap a token with its successor (applied in one pass).
    pub token_swap: f64,
    /// Replace one character of a token (creates unseen tokens).
    pub typo: f64,
    /// Abbreviate a token to its first letter.
    pub abbreviate: f64,
    /// Reformat a 4-digit number to its last two digits ("1985" → "85").
    pub numeric_truncate: f64,
    /// Drop a whole field value (per value).
    pub value_missing: f64,
}

impl NoiseModel {
    /// No corruption at all.
    pub fn clean() -> Self {
        Self {
            token_drop: 0.0,
            token_swap: 0.0,
            typo: 0.0,
            abbreviate: 0.0,
            numeric_truncate: 0.0,
            value_missing: 0.0,
        }
    }

    /// Curated, well-maintained source (DBLP/ACM-like).
    pub fn light() -> Self {
        Self {
            token_drop: 0.02,
            token_swap: 0.01,
            typo: 0.01,
            abbreviate: 0.02,
            numeric_truncate: 0.05,
            value_missing: 0.02,
        }
    }

    /// Web-extracted source (Scholar-like): aggressive.
    pub fn heavy() -> Self {
        Self {
            token_drop: 0.12,
            token_swap: 0.05,
            typo: 0.04,
            abbreviate: 0.10,
            numeric_truncate: 0.30,
            value_missing: 0.12,
        }
    }

    /// Middle ground (product catalogues, user-edited data).
    pub fn medium() -> Self {
        Self {
            token_drop: 0.06,
            token_swap: 0.03,
            typo: 0.02,
            abbreviate: 0.05,
            numeric_truncate: 0.15,
            value_missing: 0.06,
        }
    }

    /// Whether the whole value should be dropped.
    pub fn drops_value(&self, rng: &mut StdRng) -> bool {
        self.value_missing > 0.0 && rng.random_range(0.0..1.0) < self.value_missing
    }

    /// Applies token-level noise to a value, returning the corrupted value
    /// (possibly empty when all tokens drop).
    pub fn corrupt(&self, value: &str, rng: &mut StdRng) -> String {
        let mut tokens: Vec<String> = value.split_whitespace().map(str::to_string).collect();

        // Per-token mutations.
        let mut i = 0;
        while i < tokens.len() {
            if tokens.len() > 1 && rng.random_range(0.0..1.0) < self.token_drop {
                tokens.remove(i);
                continue;
            }
            let tok = &mut tokens[i];
            if tok.len() == 4
                && tok.chars().all(|c| c.is_ascii_digit())
                && rng.random_range(0.0..1.0) < self.numeric_truncate
            {
                *tok = tok[2..].to_string();
            } else if tok.len() > 2 && rng.random_range(0.0..1.0) < self.abbreviate {
                let first = tok.chars().next().expect("non-empty token");
                *tok = format!("{first}.");
            } else if tok.len() > 2 && rng.random_range(0.0..1.0) < self.typo {
                let pos = rng.random_range(0..tok.chars().count());
                *tok = tok
                    .chars()
                    .enumerate()
                    .map(|(i, c)| {
                        if i == pos && c.is_ascii_alphabetic() {
                            if c == 'z' || c == 'Z' {
                                (c as u8 - 1) as char
                            } else {
                                (c as u8 + 1) as char
                            }
                        } else {
                            c
                        }
                    })
                    .collect();
            }
            i += 1;
        }

        // Adjacent swaps.
        if tokens.len() > 1 {
            for i in 0..tokens.len() - 1 {
                if rng.random_range(0.0..1.0) < self.token_swap {
                    tokens.swap(i, i + 1);
                }
            }
        }
        tokens.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn clean_noise_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = NoiseModel::clean();
        assert_eq!(
            n.corrupt("john abram jr 1985", &mut rng),
            "john abram jr 1985"
        );
        assert!(!n.drops_value(&mut rng));
    }

    #[test]
    fn heavy_noise_preserves_most_tokens() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = NoiseModel::heavy();
        let original = "alpha beta gamma delta epsilon zeta eta theta iota kappa";
        let mut preserved = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            let corrupted = n.corrupt(original, &mut rng);
            let set: std::collections::HashSet<&str> = corrupted.split(' ').collect();
            for t in original.split(' ') {
                total += 1;
                if set.contains(t) {
                    preserved += 1;
                }
            }
        }
        let frac = preserved as f64 / total as f64;
        // drop .12 + typo .04 + abbreviate .10 → ≈ 0.74 kept intact.
        assert!((0.6..0.9).contains(&frac), "preserved {frac}");
    }

    #[test]
    fn numeric_truncation_shortens_years() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = NoiseModel {
            numeric_truncate: 1.0,
            ..NoiseModel::clean()
        };
        assert_eq!(n.corrupt("1985", &mut rng), "85");
        // Non-4-digit tokens untouched.
        assert_eq!(n.corrupt("198", &mut rng), "198");
    }

    #[test]
    fn abbreviation_keeps_initial() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = NoiseModel {
            abbreviate: 1.0,
            ..NoiseModel::clean()
        };
        assert_eq!(n.corrupt("john", &mut rng), "j.");
    }

    #[test]
    fn last_token_never_fully_lost() {
        // token_drop keeps at least one token.
        let mut rng = StdRng::seed_from_u64(5);
        let n = NoiseModel {
            token_drop: 1.0,
            ..NoiseModel::clean()
        };
        let out = n.corrupt("a b c d", &mut rng);
        assert_eq!(out.split(' ').count(), 1);
    }
}
