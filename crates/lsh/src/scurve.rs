//! The LSH S-curve (§3.1.2, Fig. 5).
//!
//! With `b` bands of `r` rows, two sets with Jaccard similarity `s` become
//! candidates with probability `1 − (1 − sʳ)ᵇ`. The curve's inflection is
//! approximated by the threshold `t ≈ (1/b)^{1/r}`; the paper's example
//! (r = 5, b = 30) gives t ≈ 0.506.

/// Probability that two columns with Jaccard similarity `s` collide in at
/// least one of `b` bands of `r` rows.
pub fn collision_probability(s: f64, rows: usize, bands: usize) -> f64 {
    assert!((0.0..=1.0).contains(&s), "similarity must be in [0,1]");
    1.0 - (1.0 - s.powi(rows as i32)).powi(bands as i32)
}

/// The similarity threshold approximated by `(1/b)^{1/r}`.
pub fn estimate_threshold(rows: usize, bands: usize) -> f64 {
    (1.0 / bands as f64).powf(1.0 / rows as f64)
}

/// Picks `(rows, bands)` whose estimated threshold is closest to `target`,
/// given a signature budget of `n` hash functions. Ties prefer more rows
/// (steeper curve → fewer false positives).
pub fn params_for_threshold(n: usize, target: f64) -> (usize, usize) {
    assert!(n > 0, "need at least one hash function");
    assert!((0.0..=1.0).contains(&target), "target must be in [0,1]");
    let mut best = (1usize, n.max(1));
    let mut best_err = f64::INFINITY;
    for rows in 1..=n {
        let bands = n / rows;
        if bands == 0 {
            break;
        }
        let err = (estimate_threshold(rows, bands) - target).abs();
        // Strictly-better, or equal with more rows.
        if err < best_err - 1e-12 || (err < best_err + 1e-12 && rows > best.0) {
            best_err = err;
            best = (rows, bands);
        }
    }
    best
}

/// A sampled S-curve, as plotted in Fig. 5.
#[derive(Debug, Clone)]
pub struct SCurve {
    /// Rows per band.
    pub rows: usize,
    /// Number of bands.
    pub bands: usize,
    /// `(similarity, collision probability)` samples.
    pub points: Vec<(f64, f64)>,
}

impl SCurve {
    /// Samples the curve at `steps + 1` evenly spaced similarities in \[0,1\].
    pub fn sample(rows: usize, bands: usize, steps: usize) -> Self {
        assert!(steps > 0);
        let points = (0..=steps)
            .map(|i| {
                let s = i as f64 / steps as f64;
                (s, collision_probability(s, rows, bands))
            })
            .collect();
        Self {
            rows,
            bands,
            points,
        }
    }

    /// The estimated threshold of this configuration.
    pub fn threshold(&self) -> f64 {
        estimate_threshold(self.rows, self.bands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn figure5_threshold_approx_half() {
        // The paper: "choosing b = 30 and r = 5, the attribute pairs that
        // have a Jaccard similarity greater than ~0.5 are considered".
        let t = estimate_threshold(5, 30);
        assert!((t - 0.506).abs() < 0.01, "threshold {t} should be ≈ 0.506");
    }

    #[test]
    fn curve_endpoints() {
        assert_eq!(collision_probability(0.0, 5, 30), 0.0);
        assert!((collision_probability(1.0, 5, 30) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn s_shape_around_threshold() {
        // Well below the threshold: near 0; well above: near 1.
        assert!(collision_probability(0.2, 5, 30) < 0.01);
        assert!(collision_probability(0.8, 5, 30) > 0.999);
    }

    #[test]
    fn sampled_curve_is_monotone() {
        let curve = SCurve::sample(5, 30, 100);
        for w in curve.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        assert_eq!(curve.points.len(), 101);
    }

    #[test]
    fn params_for_threshold_finds_figure5_shape() {
        let (rows, bands) = params_for_threshold(150, 0.5);
        let t = estimate_threshold(rows, bands);
        assert!((t - 0.5).abs() < 0.05, "({rows},{bands}) → {t}");
        assert!(rows * bands <= 150);
    }

    proptest! {
        #[test]
        fn prop_probability_monotone_in_similarity(
            r in 1usize..8, b in 1usize..40,
            s1 in 0.0f64..1.0, s2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(
                collision_probability(lo, r, b) <= collision_probability(hi, r, b) + 1e-12
            );
        }

        #[test]
        fn prop_threshold_in_unit_interval(r in 1usize..10, b in 1usize..60) {
            let t = estimate_threshold(r, b);
            prop_assert!((0.0..=1.0).contains(&t));
        }
    }
}
