//! MinHash signatures over interned token sets.
//!
//! With the binary attribute-representation model of §2.1 (an attribute is
//! the set of tokens appearing in its values), the probability that two
//! columns share a minhash value equals their Jaccard similarity [4, 11].
//! We implement the standard "one universal hash per permutation" variant:
//! `hᵢ(x) = (aᵢ·x + bᵢ) mod p`, `p = 2⁶¹ − 1`, taking the minimum over the
//! set's token ids.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Mersenne prime 2⁶¹−1: large enough for 32-bit token-id universes and
/// cheap to reduce by.
const PRIME: u64 = (1u64 << 61) - 1;

/// A MinHash signature: one minimum per hash function.
pub type Signature = Vec<u64>;

/// A family of `n` universal hash functions producing MinHash signatures.
///
/// ```
/// use blast_lsh::minhash::MinHasher;
/// let mh = MinHasher::new(128, 42);
/// let a = mh.signature(vec![1u32, 2, 3, 4]);
/// let b = mh.signature(vec![1u32, 2, 3, 9]);
/// let est = MinHasher::estimate_jaccard(&a, &b);
/// assert!((est - 0.6).abs() < 0.25); // true Jaccard = 3/5
/// ```
#[derive(Debug, Clone)]
pub struct MinHasher {
    coeffs: Vec<(u64, u64)>,
}

impl MinHasher {
    /// Creates `n` hash functions with deterministic seeding.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "at least one hash function required");
        let mut rng = StdRng::seed_from_u64(seed);
        let coeffs = (0..n)
            .map(|_| {
                // a must be non-zero mod p.
                let a = rng.random_range(1..PRIME);
                let b = rng.random_range(0..PRIME);
                (a, b)
            })
            .collect();
        Self { coeffs }
    }

    /// Number of hash functions (signature length).
    #[inline]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Whether the family is empty (never true by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Computes the signature of a token set given as an iterator of ids.
    /// An empty set yields the all-`u64::MAX` signature (never collides in
    /// banding with non-empty sets only by chance ≈ 0).
    pub fn signature(&self, tokens: impl IntoIterator<Item = u32> + Clone) -> Signature {
        let mut sig = vec![u64::MAX; self.coeffs.len()];
        for tok in tokens {
            let x = tok as u128;
            for (slot, &(a, b)) in sig.iter_mut().zip(&self.coeffs) {
                let h = ((a as u128 * x + b as u128) % PRIME as u128) as u64;
                if h < *slot {
                    *slot = h;
                }
            }
        }
        sig
    }

    /// Estimates the Jaccard similarity of two sets from their signatures
    /// (fraction of agreeing components).
    pub fn estimate_jaccard(a: &Signature, b: &Signature) -> f64 {
        assert_eq!(a.len(), b.len(), "signatures must have equal length");
        if a.is_empty() {
            return 0.0;
        }
        let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
        agree as f64 / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn true_jaccard(a: &BTreeSet<u32>, b: &BTreeSet<u32>) -> f64 {
        let inter = a.intersection(b).count() as f64;
        let union = a.union(b).count() as f64;
        if union == 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    #[test]
    fn identical_sets_have_identical_signatures() {
        let mh = MinHasher::new(64, 42);
        let s1 = mh.signature(vec![1u32, 5, 9, 200]);
        let s2 = mh.signature(vec![200u32, 9, 5, 1]); // order irrelevant
        assert_eq!(s1, s2);
        assert_eq!(MinHasher::estimate_jaccard(&s1, &s2), 1.0);
    }

    #[test]
    fn disjoint_sets_rarely_collide() {
        let mh = MinHasher::new(128, 7);
        let s1 = mh.signature(0u32..50);
        let s2 = mh.signature(1000u32..1050);
        assert!(MinHasher::estimate_jaccard(&s1, &s2) < 0.1);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        // Two sets with Jaccard exactly 1/3: |∩|=25, |∪|=75.
        let a: BTreeSet<u32> = (0..50).collect();
        let b: BTreeSet<u32> = (25..75).collect();
        let expected = true_jaccard(&a, &b);
        assert!((expected - 1.0 / 3.0).abs() < 1e-12);

        let mh = MinHasher::new(512, 123);
        let sa = mh.signature(a.iter().copied().collect::<Vec<_>>());
        let sb = mh.signature(b.iter().copied().collect::<Vec<_>>());
        let est = MinHasher::estimate_jaccard(&sa, &sb);
        // 512 hashes → s.e. ≈ sqrt(J(1−J)/512) ≈ 0.021; allow 4σ.
        assert!(
            (est - expected).abs() < 0.085,
            "estimate {est} too far from {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MinHasher::new(16, 99).signature(vec![3u32, 1, 4]);
        let b = MinHasher::new(16, 99).signature(vec![3u32, 1, 4]);
        assert_eq!(a, b);
        let c = MinHasher::new(16, 100).signature(vec![3u32, 1, 4]);
        assert_ne!(a, c, "different seed should give a different family");
    }

    #[test]
    fn empty_set_signature() {
        let mh = MinHasher::new(8, 1);
        let s = mh.signature(Vec::<u32>::new());
        assert!(s.iter().all(|&v| v == u64::MAX));
    }

    proptest! {
        /// MinHash estimate must be within a loose statistical bound of the
        /// true Jaccard for random sets.
        #[test]
        fn prop_estimate_close_to_jaccard(
            a in proptest::collection::btree_set(0u32..300, 1..80),
            b in proptest::collection::btree_set(0u32..300, 1..80),
        ) {
            let mh = MinHasher::new(256, 2024);
            let sa = mh.signature(a.iter().copied().collect::<Vec<_>>());
            let sb = mh.signature(b.iter().copied().collect::<Vec<_>>());
            let est = MinHasher::estimate_jaccard(&sa, &sb);
            let truth = true_jaccard(&a, &b);
            // 256 hashes → s.e. ≤ 0.032; 5σ bound keeps flakiness ≈ 0.
            prop_assert!((est - truth).abs() < 0.16, "est={est} truth={truth}");
        }
    }
}
