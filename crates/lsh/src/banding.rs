//! The banding technique \[11\]: signatures are split into `b` bands of `r`
//! rows; two columns are *candidates* iff they are identical in at least one
//! band.

use crate::minhash::Signature;
use blast_datamodel::hash::{FastMap, FastSet, FxHasher};
use std::hash::{Hash, Hasher};

/// An LSH banding index over MinHash signatures.
///
/// Columns (attributes) are added with dense ids; [`BandingIndex::candidate_pairs`]
/// returns every pair of columns colliding in some band, each pair reported
/// once.
#[derive(Debug, Clone)]
pub struct BandingIndex {
    bands: usize,
    rows: usize,
    /// One bucket map per band: band-hash → column ids.
    buckets: Vec<FastMap<u64, Vec<u32>>>,
}

impl BandingIndex {
    /// Creates an index with `bands` bands of `rows` rows each. Signatures
    /// inserted later must have length ≥ `bands·rows` (extra components are
    /// ignored).
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        Self {
            bands,
            rows,
            buckets: vec![FastMap::default(); bands],
        }
    }

    /// Number of bands.
    #[inline]
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Rows per band.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Inserts the signature of column `id`.
    ///
    /// # Panics
    /// Panics if the signature is shorter than `bands·rows`.
    pub fn insert(&mut self, id: u32, signature: &Signature) {
        assert!(
            signature.len() >= self.bands * self.rows,
            "signature length {} < bands*rows {}",
            signature.len(),
            self.bands * self.rows
        );
        for (band, bucket) in self.buckets.iter_mut().enumerate() {
            let slice = &signature[band * self.rows..(band + 1) * self.rows];
            let mut h = FxHasher::default();
            slice.hash(&mut h);
            bucket.entry(h.finish()).or_default().push(id);
        }
    }

    /// Every pair of columns colliding in at least one band, each reported
    /// once with the smaller id first, in deterministic (sorted) order.
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut seen: FastSet<(u32, u32)> = FastSet::default();
        for bucket in &self.buckets {
            for cols in bucket.values() {
                if cols.len() < 2 {
                    continue;
                }
                for (i, &a) in cols.iter().enumerate() {
                    for &b in &cols[i + 1..] {
                        let pair = if a < b { (a, b) } else { (b, a) };
                        seen.insert(pair);
                    }
                }
            }
        }
        let mut pairs: Vec<_> = seen.into_iter().collect();
        pairs.sort_unstable();
        pairs
    }

    /// Candidate pairs restricted to one column from each side of
    /// `separator` (clean-clean attribute-match induction compares only
    /// cross-collection attribute pairs). Pairs are `(left, right)` with
    /// `left < separator ≤ right`.
    pub fn candidate_pairs_bipartite(&self, separator: u32) -> Vec<(u32, u32)> {
        self.candidate_pairs()
            .into_iter()
            .filter_map(|(a, b)| {
                if a < separator && b >= separator {
                    Some((a, b))
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    #[test]
    fn identical_signatures_always_collide() {
        let mh = MinHasher::new(20, 5);
        let sig = mh.signature(vec![1u32, 2, 3, 4, 5]);
        let mut idx = BandingIndex::new(4, 5);
        idx.insert(0, &sig);
        idx.insert(1, &sig);
        assert_eq!(idx.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn disjoint_sets_do_not_collide() {
        let mh = MinHasher::new(150, 5);
        let mut idx = BandingIndex::new(30, 5);
        idx.insert(0, &mh.signature(0u32..40));
        idx.insert(1, &mh.signature(10_000u32..10_040));
        assert!(idx.candidate_pairs().is_empty());
    }

    #[test]
    fn similar_sets_collide_with_r5_b30() {
        // Jaccard ≈ 0.82 ≫ threshold ≈ 0.5 for (r=5, b=30): collision
        // probability ≈ 1 − (1 − 0.82⁵)³⁰ ≈ 0.9999998.
        let mh = MinHasher::new(150, 99);
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (10..100).collect(); // |∩|=90, |∪|=100
        let mut idx = BandingIndex::new(30, 5);
        idx.insert(0, &mh.signature(a));
        idx.insert(1, &mh.signature(b));
        assert_eq!(idx.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn bipartite_filter_keeps_cross_pairs_only() {
        let mh = MinHasher::new(20, 5);
        let sig = mh.signature(vec![1u32, 2, 3]);
        let mut idx = BandingIndex::new(4, 5);
        // Columns 0,1 on the left of separator 2; column 2 on the right.
        idx.insert(0, &sig);
        idx.insert(1, &sig);
        idx.insert(2, &sig);
        let all = idx.candidate_pairs();
        assert_eq!(all.len(), 3);
        let cross = idx.candidate_pairs_bipartite(2);
        assert_eq!(cross, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn pair_reported_once_despite_multiple_band_collisions() {
        let mh = MinHasher::new(150, 3);
        let sig = mh.signature(vec![7u32, 8, 9]);
        let mut idx = BandingIndex::new(30, 5);
        idx.insert(5, &sig);
        idx.insert(3, &sig);
        // Identical in all 30 bands, but one pair reported, normalised.
        assert_eq!(idx.candidate_pairs(), vec![(3, 5)]);
    }
}
