//! Locality-Sensitive Hashing substrate (§3.1.2).
//!
//! BLAST's attribute-match induction compares the token sets of every pair
//! of attributes — O(N₁·N₂) — which is infeasible when sources have
//! thousands of attributes. The LSH pre-processing step sketches each
//! attribute's token set with [`minhash`] signatures, indexes the signatures
//! with the [`banding`] technique, and emits only the colliding pairs as
//! candidates. [`scurve`] implements the collision-probability curve
//! `1 − (1 − sʳ)ᵇ` and the threshold estimate `(1/b)^{1/r}` of Fig. 5.

pub mod banding;
pub mod minhash;
pub mod scurve;

pub use banding::BandingIndex;
pub use minhash::{MinHasher, Signature};
pub use scurve::{collision_probability, estimate_threshold, params_for_threshold, SCurve};
