//! Blocking-key disambiguation.
//!
//! A schema-agnostic blocking key is a token; a *loosely schema-aware* key
//! is a (token, attribute-cluster) pair (§3.2). The [`KeyDisambiguator`]
//! trait abstracts over where the cluster comes from: the trivial
//! single-cluster case (plain Token Blocking), the loose attribute
//! partitioning produced by LMI/AC (in `blast-core`), or a manual schema
//! alignment (Standard Blocking).

use blast_datamodel::entity::{AttributeId, SourceId};

/// Identifier of an attribute cluster. By convention cluster 0 is the *glue
/// cluster* gathering all attributes with no confidently-similar partner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClusterId(pub u32);

impl ClusterId {
    /// The glue cluster (id 0).
    pub const GLUE: ClusterId = ClusterId(0);

    /// The cluster id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Maps an attribute to the cluster its blocking keys belong to.
///
/// Returning `None` excludes the attribute from blocking entirely — used by
/// the Fig. 10 experiments where the glue cluster is disabled and unclustered
/// attributes are discarded.
pub trait KeyDisambiguator {
    /// Cluster of `(source, attribute)`, or `None` to skip the attribute.
    fn cluster_of(&self, source: SourceId, attribute: AttributeId) -> Option<ClusterId>;

    /// Total number of clusters (cluster ids are `0..cluster_count()`).
    fn cluster_count(&self) -> usize;
}

/// The trivial disambiguator: every attribute in one cluster — plain
/// schema-agnostic Token Blocking.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleCluster;

impl KeyDisambiguator for SingleCluster {
    #[inline]
    fn cluster_of(&self, _source: SourceId, _attribute: AttributeId) -> Option<ClusterId> {
        Some(ClusterId::GLUE)
    }

    fn cluster_count(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::interner::Symbol;

    #[test]
    fn single_cluster_maps_everything_to_glue() {
        let d = SingleCluster;
        assert_eq!(d.cluster_of(SourceId(0), Symbol(3)), Some(ClusterId::GLUE));
        assert_eq!(d.cluster_of(SourceId(1), Symbol(9)), Some(ClusterId::GLUE));
        assert_eq!(d.cluster_count(), 1);
    }
}
