//! Standard Blocking (schema-based baseline, §4.1).
//!
//! Standard Blocking is Token Blocking restricted by a *schema alignment*:
//! tokens are disambiguated by the aligned attribute group they come from,
//! and attributes outside the alignment generate no keys. The paper observes
//! that on fully-mappable datasets BLAST with LMI achieves exactly the same
//! PC/PQ as Standard Blocking with a manual alignment — an integration test
//! pins that equivalence.

use crate::collection::BlockCollection;
use crate::key::{ClusterId, KeyDisambiguator};
use crate::token_blocking::TokenBlocking;
use blast_datamodel::collection::EntityCollection;
use blast_datamodel::entity::{AttributeId, SourceId};
use blast_datamodel::hash::FastMap;
use blast_datamodel::input::ErInput;
use blast_datamodel::tokenizer::Tokenizer;

/// A manual 1:1 (or n:m) alignment between attribute groups of two
/// collections.
#[derive(Debug, Clone, Default)]
pub struct SchemaAlignment {
    groups: FastMap<(SourceId, AttributeId), ClusterId>,
    n_groups: u32,
    include_unaligned: bool,
}

impl SchemaAlignment {
    /// Creates an empty alignment. Unaligned attributes are excluded from
    /// blocking (classic Standard Blocking semantics).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sends unaligned attributes to the glue cluster instead of excluding
    /// them.
    pub fn keep_unaligned(mut self) -> Self {
        self.include_unaligned = true;
        self
    }

    /// Aligns a set of attribute names (resolved against the collections
    /// they belong to) into one group. Names missing from their collection
    /// are ignored. Returns the group's cluster id.
    pub fn align<'a>(
        &mut self,
        members: impl IntoIterator<Item = (SourceId, &'a str)>,
        collections: &[&EntityCollection],
    ) -> ClusterId {
        self.n_groups += 1;
        let cluster = ClusterId(self.n_groups); // 0 is reserved for glue
        for (source, name) in members {
            let coll = collections
                .iter()
                .find(|c| c.source() == source)
                .expect("collection for source");
            if let Some(attr) = coll.attribute_id(name) {
                self.groups.insert((source, attr), cluster);
            }
        }
        cluster
    }

    /// Number of alignment groups (excluding the glue cluster).
    pub fn group_count(&self) -> usize {
        self.n_groups as usize
    }
}

impl KeyDisambiguator for SchemaAlignment {
    fn cluster_of(&self, source: SourceId, attribute: AttributeId) -> Option<ClusterId> {
        match self.groups.get(&(source, attribute)) {
            Some(&c) => Some(c),
            None if self.include_unaligned => Some(ClusterId::GLUE),
            None => None,
        }
    }

    fn cluster_count(&self) -> usize {
        self.n_groups as usize + 1
    }
}

/// Schema-based Standard Blocking: token blocking over an explicit
/// alignment.
#[derive(Debug, Clone, Default)]
pub struct StandardBlocking {
    inner: TokenBlocking,
}

impl StandardBlocking {
    /// Standard Blocking with the default tokenizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Standard Blocking with a custom tokenizer.
    pub fn with_tokenizer(tokenizer: Tokenizer) -> Self {
        Self {
            inner: TokenBlocking::with_tokenizer(tokenizer),
        }
    }

    /// Builds blocks keyed by (alignment group, token).
    pub fn build(&self, input: &ErInput, alignment: &SchemaAlignment) -> BlockCollection {
        self.inner.build_with(input, alignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bibliographic() -> (EntityCollection, EntityCollection) {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs(
            "a1",
            [("title", "entity resolution survey"), ("venue", "vldb")],
        );
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs(
            "b1",
            [("paper", "entity resolution survey"), ("booktitle", "vldb")],
        );
        d2.push_pairs(
            "b2",
            [("paper", "survey of nothing"), ("booktitle", "icde")],
        );
        (d1, d2)
    }

    #[test]
    fn aligned_attributes_share_blocks() {
        let (d1, d2) = bibliographic();
        let mut alignment = SchemaAlignment::new();
        alignment.align(
            [(SourceId(0), "title"), (SourceId(1), "paper")],
            &[&d1, &d2],
        );
        alignment.align(
            [(SourceId(0), "venue"), (SourceId(1), "booktitle")],
            &[&d1, &d2],
        );
        let input = ErInput::clean_clean(d1, d2);
        let blocks = StandardBlocking::new().build(&input, &alignment);

        // "survey" co-occurs through the title/paper group; "vldb" through
        // venue/booktitle.
        assert!(blocks.block_by_label("survey#c1").is_some());
        assert!(blocks.block_by_label("vldb#c2").is_some());
    }

    #[test]
    fn cross_group_tokens_do_not_collide() {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("a1", [("title", "vldb proceedings")]);
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("b1", [("booktitle", "vldb")]);
        let mut alignment = SchemaAlignment::new();
        alignment.align([(SourceId(0), "title")], &[&d1, &d2]);
        alignment.align([(SourceId(1), "booktitle")], &[&d1, &d2]);
        let input = ErInput::clean_clean(d1, d2);
        let blocks = StandardBlocking::new().build(&input, &alignment);
        // "vldb" sits in two different groups → no bilateral block survives.
        assert!(blocks.is_empty());
    }

    #[test]
    fn unaligned_excluded_by_default_kept_on_request() {
        let (d1, d2) = bibliographic();
        let mut alignment = SchemaAlignment::new();
        alignment.align(
            [(SourceId(0), "title"), (SourceId(1), "paper")],
            &[&d1, &d2],
        );
        let input = ErInput::clean_clean(d1.clone(), d2.clone());
        let blocks = StandardBlocking::new().build(&input, &alignment);
        // venue/booktitle tokens generate nothing.
        assert!(blocks.block_by_label("vldb#c0").is_none());

        let mut alignment = SchemaAlignment::new().keep_unaligned();
        alignment.align(
            [(SourceId(0), "title"), (SourceId(1), "paper")],
            &[&d1, &d2],
        );
        let input = ErInput::clean_clean(d1, d2);
        let blocks = StandardBlocking::new().build(&input, &alignment);
        assert!(blocks.block_by_label("vldb#c0").is_some());
    }
}
