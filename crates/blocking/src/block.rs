//! A single block: the set of profiles sharing one blocking key.

use crate::key::ClusterId;
use blast_datamodel::entity::ProfileId;

/// A block produced by a (meta-)blocking technique.
///
/// Profiles are stored as sorted global ids. For clean-clean inputs the
/// profiles of the first collection precede the separator, so `split` marks
/// where the second collection starts inside `profiles`; for dirty inputs
/// `split == profiles.len()` by convention and the block is *unilateral*.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Human-readable key (the token), for diagnostics and tests.
    pub label: Box<str>,
    /// The attribute cluster the key was derived from (glue cluster when
    /// blocking is schema-agnostic).
    pub cluster: ClusterId,
    /// Sorted global profile ids.
    pub profiles: Vec<ProfileId>,
    /// Index of the first profile belonging to the second collection.
    pub split: u32,
}

impl Block {
    /// Builds a block from sorted profile ids, computing the split at
    /// `separator` (pass `u32::MAX` effectively for dirty inputs so that
    /// `split == len`).
    pub fn new(
        label: impl Into<Box<str>>,
        cluster: ClusterId,
        profiles: Vec<ProfileId>,
        separator: u32,
    ) -> Self {
        debug_assert!(
            profiles.windows(2).all(|w| w[0] < w[1]),
            "profiles must be sorted+unique"
        );
        let split = profiles.partition_point(|p| p.0 < separator) as u32;
        Self {
            label: label.into(),
            cluster,
            profiles,
            split,
        }
    }

    /// Number of profiles in the block (|b|).
    #[inline]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Profiles of the first collection (clean-clean) or all profiles
    /// (dirty).
    #[inline]
    pub fn inner1(&self) -> &[ProfileId] {
        &self.profiles[..self.split as usize]
    }

    /// Profiles of the second collection (empty for dirty blocks).
    #[inline]
    pub fn inner2(&self) -> &[ProfileId] {
        &self.profiles[self.split as usize..]
    }

    /// Number of comparisons the block implies (‖b‖, §2): `|b1|·|b2|` for
    /// bilateral blocks, `C(|b|,2)` for unilateral ones.
    pub fn cardinality(&self, clean_clean: bool) -> u64 {
        if clean_clean {
            self.inner1().len() as u64 * self.inner2().len() as u64
        } else {
            let n = self.len() as u64;
            n * n.saturating_sub(1) / 2
        }
    }

    /// Whether the block implies at least one comparison.
    pub fn is_valid(&self, clean_clean: bool) -> bool {
        self.cardinality(clean_clean) > 0
    }

    /// Calls `f` on every comparison (pair of profiles, smaller id first)
    /// the block implies.
    pub fn for_each_comparison(&self, clean_clean: bool, mut f: impl FnMut(ProfileId, ProfileId)) {
        if clean_clean {
            for &a in self.inner1() {
                for &b in self.inner2() {
                    f(a, b);
                }
            }
        } else {
            for (i, &a) in self.profiles.iter().enumerate() {
                for &b in &self.profiles[i + 1..] {
                    f(a, b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    #[test]
    fn bilateral_cardinality_and_split() {
        // separator 3: {0,2} from E1, {3,5,7} from E2
        let b = Block::new("abram", ClusterId::GLUE, ids(&[0, 2, 3, 5, 7]), 3);
        assert_eq!(b.split, 2);
        assert_eq!(b.inner1(), &ids(&[0, 2])[..]);
        assert_eq!(b.inner2(), &ids(&[3, 5, 7])[..]);
        assert_eq!(b.cardinality(true), 6);
        assert!(b.is_valid(true));
    }

    #[test]
    fn unilateral_cardinality() {
        let b = Block::new("abram", ClusterId::GLUE, ids(&[0, 1, 2, 3]), u32::MAX);
        assert_eq!(b.cardinality(false), 6); // C(4,2)
        assert!(b.is_valid(false));
    }

    #[test]
    fn one_sided_bilateral_block_is_invalid() {
        let b = Block::new("john", ClusterId::GLUE, ids(&[0, 1]), 5);
        assert_eq!(b.cardinality(true), 0);
        assert!(!b.is_valid(true));
        // ...but valid as a dirty block.
        assert!(b.is_valid(false));
    }

    #[test]
    fn comparison_enumeration_matches_cardinality() {
        let b = Block::new("k", ClusterId::GLUE, ids(&[0, 2, 3, 5, 7]), 3);
        let mut n = 0u64;
        b.for_each_comparison(true, |a, x| {
            assert!(a.0 < 3 && x.0 >= 3);
            n += 1;
        });
        assert_eq!(n, b.cardinality(true));

        let d = Block::new("k", ClusterId::GLUE, ids(&[1, 4, 9]), u32::MAX);
        let mut pairs = Vec::new();
        d.for_each_comparison(false, |a, x| pairs.push((a.0, x.0)));
        assert_eq!(pairs, vec![(1, 4), (1, 9), (4, 9)]);
    }

    #[test]
    fn singleton_block_has_no_comparisons() {
        let b = Block::new("rare", ClusterId::GLUE, ids(&[4]), 2);
        assert_eq!(b.cardinality(true), 0);
        assert_eq!(b.cardinality(false), 0);
    }
}
