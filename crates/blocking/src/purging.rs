//! Block Purging (§4.1).
//!
//! "Block Purging discards all the blocks that contain more than half of the
//! entity profiles in the collection, corresponding to highly frequent
//! blocking keys (e.g. stop-words)." A comparison-cardinality cap is also
//! provided for workloads where a few oversized-but-below-half blocks would
//! still dominate ‖B‖.

use crate::collection::BlockCollection;

/// Removes oversized blocks from a collection.
#[derive(Debug, Clone)]
pub struct BlockPurging {
    max_profile_fraction: f64,
    max_comparisons: Option<u64>,
}

impl Default for BlockPurging {
    /// The paper's rule: drop blocks covering more than half the profiles.
    fn default() -> Self {
        Self {
            max_profile_fraction: 0.5,
            max_comparisons: None,
        }
    }
}

impl BlockPurging {
    /// The paper's configuration (fraction 0.5, no comparison cap).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum fraction of the collection's profiles a block may
    /// contain.
    pub fn max_profile_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0,1]"
        );
        self.max_profile_fraction = fraction;
        self
    }

    /// Additionally drops blocks implying more than `cap` comparisons.
    pub fn max_comparisons(mut self, cap: u64) -> Self {
        self.max_comparisons = Some(cap);
        self
    }

    /// Returns the purged collection (order of surviving blocks preserved).
    pub fn purge(&self, blocks: &BlockCollection) -> BlockCollection {
        let max_profiles = (blocks.total_profiles() as f64 * self.max_profile_fraction) as usize;
        let kept: Vec<_> = blocks
            .blocks()
            .iter()
            .filter(|b| {
                b.len() <= max_profiles
                    && self
                        .max_comparisons
                        .is_none_or(|cap| blocks.block_cardinality(b) <= cap)
            })
            .cloned()
            .collect();
        blocks.with_blocks(kept)
    }
}

/// Adaptive, comparison-based purging in the spirit of \[18\]'s Block
/// Purging: instead of a fixed size cap, pick the largest block-cardinality
/// level whose *marginal* cost stays proportionate.
///
/// Blocks are grouped by ‖b‖ into ascending levels; levels are admitted
/// while the level's marginal comparisons-per-assignment stays below
/// `smoothing ×` the running average of the admitted levels. Oversized
/// outlier blocks (stop-word keys) fail this test and are purged, without
/// having to know the collection size.
#[derive(Debug, Clone)]
pub struct CardinalityPurging {
    smoothing: f64,
}

impl Default for CardinalityPurging {
    fn default() -> Self {
        Self { smoothing: 2.0 }
    }
}

impl CardinalityPurging {
    /// The default smoothing factor (2.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// A custom smoothing factor (> 1; higher keeps more blocks).
    pub fn with_smoothing(smoothing: f64) -> Self {
        assert!(smoothing > 1.0, "smoothing must exceed 1");
        Self { smoothing }
    }

    /// The maximum admitted block cardinality for `blocks` (`None` when
    /// there is nothing to purge).
    pub fn threshold(&self, blocks: &BlockCollection) -> Option<u64> {
        // Distinct cardinality levels ascending, with aggregate comparisons
        // and block assignments per level.
        let mut levels: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
        for b in blocks.blocks() {
            let cardinality = blocks.block_cardinality(b);
            if cardinality == 0 {
                continue;
            }
            let e = levels.entry(cardinality).or_insert((0, 0));
            e.0 += cardinality;
            e.1 += b.len() as u64;
        }
        if levels.is_empty() {
            return None;
        }
        let mut admitted_comparisons = 0u64;
        let mut admitted_assignments = 0u64;
        let mut threshold = 0u64;
        for (cardinality, (comparisons, assignments)) in levels {
            if admitted_assignments > 0 {
                let marginal = comparisons as f64 / assignments as f64;
                let average = admitted_comparisons as f64 / admitted_assignments as f64;
                if marginal > self.smoothing * average {
                    break;
                }
            }
            admitted_comparisons += comparisons;
            admitted_assignments += assignments;
            threshold = cardinality;
        }
        Some(threshold)
    }

    /// Returns the purged collection.
    pub fn purge(&self, blocks: &BlockCollection) -> BlockCollection {
        let Some(threshold) = self.threshold(blocks) else {
            return blocks.with_blocks(blocks.blocks().to_vec());
        };
        let kept = blocks
            .blocks()
            .iter()
            .filter(|b| blocks.block_cardinality(b) <= threshold)
            .cloned()
            .collect();
        blocks.with_blocks(kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::key::ClusterId;
    use blast_datamodel::entity::ProfileId;

    fn ids(n: u32) -> Vec<ProfileId> {
        (0..n).map(ProfileId).collect()
    }

    fn collection(block_sizes: &[u32], total: u32) -> BlockCollection {
        let blocks = block_sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| Block::new(format!("b{i}"), ClusterId::GLUE, ids(s), u32::MAX))
            .collect();
        BlockCollection::new(blocks, false, total, total)
    }

    #[test]
    fn drops_blocks_over_half_the_collection() {
        let c = collection(&[2, 5, 6, 10], 10);
        let purged = BlockPurging::new().purge(&c);
        // total=10 → max 5 profiles per block.
        let labels: Vec<&str> = purged.blocks().iter().map(|b| &*b.label).collect();
        assert_eq!(labels, vec!["b0", "b1"]);
    }

    #[test]
    fn comparison_cap_is_independent() {
        let c = collection(&[2, 4], 100);
        // C(4,2)=6 comparisons > cap 5 → b1 dropped even though |b| ≪ half.
        let purged = BlockPurging::new().max_comparisons(5).purge(&c);
        assert_eq!(purged.len(), 1);
        assert_eq!(&*purged.blocks()[0].label, "b0");
    }

    #[test]
    fn stopword_block_example() {
        // A "the" block containing 90 of 100 profiles is purged; a name
        // block of 3 survives.
        let c = collection(&[90, 3], 100);
        let purged = BlockPurging::new().purge(&c);
        assert_eq!(purged.len(), 1);
        assert_eq!(purged.blocks()[0].len(), 3);
    }

    #[test]
    fn noop_when_all_blocks_small() {
        let c = collection(&[2, 3, 4], 100);
        let purged = BlockPurging::new().purge(&c);
        assert_eq!(purged.len(), 3);
        assert_eq!(purged.aggregate_cardinality(), c.aggregate_cardinality());
    }

    #[test]
    fn cardinality_purging_drops_outlier_blocks() {
        // Many small blocks plus one gigantic stop-word block: the marginal
        // comparisons-per-assignment of the big level explodes.
        let mut sizes = vec![2u32; 50];
        sizes.extend([3, 3, 3]);
        sizes.push(80); // C(80,2) = 3160 comparisons for 80 assignments
        let c = collection(&sizes, 100);
        let purged = CardinalityPurging::new().purge(&c);
        assert_eq!(purged.len(), 53);
        assert!(purged.blocks().iter().all(|b| b.len() <= 3));
    }

    #[test]
    fn cardinality_purging_keeps_homogeneous_collections() {
        let c = collection(&[2, 2, 3, 3, 4], 100);
        let purged = CardinalityPurging::new().purge(&c);
        assert_eq!(purged.len(), 5, "no outlier level → nothing purged");
    }

    #[test]
    fn cardinality_purging_empty_collection() {
        let c = collection(&[], 10);
        assert!(CardinalityPurging::new().threshold(&c).is_none());
        assert!(CardinalityPurging::new().purge(&c).is_empty());
    }

    #[test]
    fn smoothing_controls_aggressiveness() {
        let mut sizes = vec![2u32; 20];
        sizes.push(10);
        let c = collection(&sizes, 100);
        // Lenient smoothing keeps the 10-profile block, strict drops it.
        let lenient = CardinalityPurging::with_smoothing(100.0).purge(&c);
        assert_eq!(lenient.len(), 21);
        let strict = CardinalityPurging::with_smoothing(1.5).purge(&c);
        assert_eq!(strict.len(), 20);
    }
}
