//! Token Blocking (§3.2): the most general schema-agnostic blocking.
//!
//! Every token appearing anywhere in the dataset is a blocking key; a block
//! gathers all profiles containing that token, regardless of the attribute.
//! With a [`KeyDisambiguator`] other than [`SingleCluster`], keys become
//! (attribute-cluster, token) pairs — the loosely schema-aware blocking of
//! BLAST, which splits e.g. the "Abram" block into a person-name block and
//! a street-name block (Fig. 2).

use crate::block::Block;
use crate::collection::BlockCollection;
use crate::key::{ClusterId, KeyDisambiguator, SingleCluster};
use blast_datamodel::entity::ProfileId;
use blast_datamodel::hash::FastMap;
use blast_datamodel::input::ErInput;
use blast_datamodel::interner::{Interner, Symbol};
use blast_datamodel::tokenizer::Tokenizer;

/// Schema-agnostic Token Blocking with optional key disambiguation.
///
/// ```
/// use blast_blocking::token_blocking::TokenBlocking;
/// use blast_datamodel::{EntityCollection, ErInput};
/// use blast_datamodel::entity::SourceId;
///
/// let mut d = EntityCollection::new(SourceId(0));
/// d.push_pairs("p1", [("name", "John Abram")]);
/// d.push_pairs("p2", [("mail", "Abram st.")]);
/// let blocks = TokenBlocking::new().build(&ErInput::dirty(d));
/// // One shared token → one block ("abram") with both profiles.
/// assert_eq!(blocks.len(), 1);
/// assert_eq!(blocks.blocks()[0].len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TokenBlocking {
    tokenizer: Tokenizer,
}

impl TokenBlocking {
    /// Token Blocking with the default tokenizer (lowercased alphanumeric
    /// runs, no stop-word removal — the paper's configuration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Token Blocking with a custom value transformation function.
    pub fn with_tokenizer(tokenizer: Tokenizer) -> Self {
        Self { tokenizer }
    }

    /// Plain schema-agnostic blocking (single glue cluster).
    pub fn build(&self, input: &ErInput) -> BlockCollection {
        self.build_with(input, &SingleCluster)
    }

    /// Blocking with keys disambiguated by `disambiguator` (loosely
    /// schema-aware blocking when the disambiguator is an attribute
    /// partitioning).
    pub fn build_with(
        &self,
        input: &ErInput,
        disambiguator: &impl KeyDisambiguator,
    ) -> BlockCollection {
        let multi_cluster = disambiguator.cluster_count() > 1;
        let mut tokens = Interner::new();
        // (cluster, token) → sorted posting list of global profile ids.
        let mut postings: FastMap<(ClusterId, Symbol), Vec<ProfileId>> = FastMap::default();
        let mut profile_keys: Vec<(ClusterId, Symbol)> = Vec::new();

        for (pid, source, profile) in input.iter_profiles() {
            profile_keys.clear();
            for (attr, value) in &profile.values {
                let Some(cluster) = disambiguator.cluster_of(source, *attr) else {
                    continue; // attribute excluded from blocking
                };
                self.tokenizer.for_each_token(value, |tok| {
                    profile_keys.push((cluster, tokens.intern(tok)));
                });
            }
            profile_keys.sort_unstable();
            profile_keys.dedup();
            for &key in &profile_keys {
                postings.entry(key).or_default().push(pid);
            }
        }

        // Canonical block order: (cluster, token string). Unlike token-id
        // (first-appearance) order, this is independent of the insertion
        // history, so an incrementally maintained index can reproduce the
        // exact same collection — block ids included — from any mutation
        // sequence (the batch-equivalence contract of `blast-incremental`).
        let mut entries: Vec<((ClusterId, Symbol), Vec<ProfileId>)> =
            postings.into_iter().collect();
        entries.sort_unstable_by(|((ca, ta), _), ((cb, tb), _)| {
            ca.cmp(cb)
                .then_with(|| tokens.resolve(*ta).cmp(tokens.resolve(*tb)))
        });

        let clean_clean = input.is_clean_clean();
        let separator = input.separator();
        let blocks: Vec<Block> = entries
            .into_iter()
            .filter_map(|((cluster, token), profiles)| {
                let label = if multi_cluster {
                    format!("{}#c{}", tokens.resolve(token), cluster.0)
                } else {
                    tokens.resolve(token).to_string()
                };
                let block = Block::new(label, cluster, profiles, separator);
                block.is_valid(clean_clean).then_some(block)
            })
            .collect();

        BlockCollection::new(
            blocks,
            clean_clean,
            separator,
            input.total_profiles() as u32,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blast_datamodel::collection::EntityCollection;
    use blast_datamodel::entity::SourceId;

    /// The four profiles of Figure 1a, as a dirty (single-collection) input.
    pub(crate) fn figure1_input() -> ErInput {
        let mut d = EntityCollection::new(SourceId(0));
        // p1
        d.push_pairs(
            "p1",
            [
                ("Name", "John Abram Jr"),
                ("profession", "car seller"),
                ("year", "1985"),
                ("Addr.", "Main street"),
            ],
        );
        // p2
        d.push_pairs(
            "p2",
            [
                ("FirstName", "Ellen"),
                ("SecondName", "Smith"),
                ("year", "85"),
                ("occupation", "retail"),
                ("mail", "Abram st. 30 NY"),
            ],
        );
        // p3
        d.push_pairs(
            "p3",
            [
                ("name1", "Jon Jr"),
                ("name2", "Abram"),
                ("birth year", "85"),
                ("job", "car retail"),
                ("Loc", "Main st."),
            ],
        );
        // p4
        d.push_pairs(
            "p4",
            [
                ("full name", "Ellen Smith"),
                ("b. date", "May 10 1985"),
                ("work info", "retailer"),
                ("loc", "Abram street NY"),
            ],
        );
        ErInput::dirty(d)
    }

    /// Figure 1b: Token Blocking on the Figure 1a profiles yields exactly
    /// the twelve blocks shown in the paper.
    #[test]
    fn figure1_blocks_match_paper() {
        let input = figure1_input();
        let blocks = TokenBlocking::new().build(&input);

        let expected: &[(&str, &[u32])] = &[
            ("ellen", &[1, 3]),
            ("smith", &[1, 3]),
            ("1985", &[0, 3]),
            ("car", &[0, 2]),
            ("ny", &[1, 3]),
            ("main", &[0, 2]),
            ("abram", &[0, 1, 2, 3]),
            ("street", &[0, 3]),
            ("jr", &[0, 2]),
            ("85", &[1, 2]),
            ("st", &[1, 2]),
            ("retail", &[1, 2]),
        ];
        assert_eq!(blocks.len(), expected.len(), "paper shows 12 blocks");
        for (label, profiles) in expected {
            let b = blocks
                .block_by_label(label)
                .unwrap_or_else(|| panic!("missing block {label}"));
            let got: Vec<u32> = b.profiles.iter().map(|p| p.0).collect();
            assert_eq!(&got, profiles, "block {label}");
        }
    }

    /// Block order must be a pure function of the block *set* (sorted by
    /// cluster, then label), never of the insertion history — the
    /// incremental index relies on reproducing it exactly.
    #[test]
    fn block_order_is_canonical() {
        let blocks = TokenBlocking::new().build(&figure1_input());
        let labels: Vec<&str> = blocks.blocks().iter().map(|b| &*b.label).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(labels, sorted);
    }

    #[test]
    fn clean_clean_drops_one_sided_blocks() {
        let mut d1 = EntityCollection::new(SourceId(0));
        d1.push_pairs("a", [("name", "alpha shared")]);
        d1.push_pairs("b", [("name", "solo1 alpha")]);
        let mut d2 = EntityCollection::new(SourceId(1));
        d2.push_pairs("c", [("title", "shared beta")]);
        let input = ErInput::clean_clean(d1, d2);
        let blocks = TokenBlocking::new().build(&input);
        // "alpha" appears only in E1 → dropped; "shared" spans both → kept;
        // "beta"/"solo1" are singletons → dropped.
        assert_eq!(blocks.len(), 1);
        assert_eq!(&*blocks.blocks()[0].label, "shared");
        assert_eq!(blocks.aggregate_cardinality(), 1);
    }

    #[test]
    fn token_repeated_in_profile_counted_once() {
        let mut d = EntityCollection::new(SourceId(0));
        d.push_pairs("a", [("x", "rose rose rose"), ("y", "rose")]);
        d.push_pairs("b", [("x", "rose")]);
        let blocks = TokenBlocking::new().build(&ErInput::dirty(d));
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks.blocks()[0].len(), 2);
    }

    #[test]
    fn disambiguation_splits_blocks() {
        use blast_datamodel::entity::AttributeId;

        struct TwoClusters {
            name_attrs: Vec<(SourceId, AttributeId)>,
        }
        impl KeyDisambiguator for TwoClusters {
            fn cluster_of(&self, source: SourceId, attribute: AttributeId) -> Option<ClusterId> {
                if self.name_attrs.contains(&(source, attribute)) {
                    Some(ClusterId(1))
                } else {
                    Some(ClusterId::GLUE)
                }
            }
            fn cluster_count(&self) -> usize {
                2
            }
        }

        // Figure 2: clustering the name attributes separates "Abram" as a
        // person name from "Abram" as a street name.
        let input = figure1_input();
        let ErInput::Dirty(d) = &input else {
            unreachable!()
        };
        let name_attrs: Vec<_> = [
            "Name",
            "FirstName",
            "SecondName",
            "name1",
            "name2",
            "full name",
        ]
        .iter()
        .map(|n| (SourceId(0), d.attribute_id(n).unwrap()))
        .collect();
        let blocks = TokenBlocking::new().build_with(&input, &TwoClusters { name_attrs });

        let abram_name = blocks
            .block_by_label("abram#c1")
            .expect("name-cluster abram block");
        let abram_other = blocks
            .block_by_label("abram#c0")
            .expect("glue-cluster abram block");
        let name_ids: Vec<u32> = abram_name.profiles.iter().map(|p| p.0).collect();
        let other_ids: Vec<u32> = abram_other.profiles.iter().map(|p| p.0).collect();
        // p1 (Name) and p3 (name2) use Abram as a person name; p2 (mail) and
        // p4 (loc) as a street name — exactly Figure 2a.
        assert_eq!(name_ids, vec![0, 2]);
        assert_eq!(other_ids, vec![1, 3]);
    }

    mod properties {
        use super::*;
        use blast_datamodel::entity::ProfileId;
        use blast_datamodel::tokenizer::Tokenizer;
        use proptest::prelude::*;

        fn arb_dirty_input() -> impl Strategy<Value = ErInput> {
            let word = prop_oneof![
                Just("alpha"),
                Just("beta"),
                Just("gamma"),
                Just("delta"),
                Just("x1"),
            ];
            let value = proptest::collection::vec(word, 1..4).prop_map(|w| w.join(" "));
            let profile = proptest::collection::vec(value, 1..3);
            proptest::collection::vec(profile, 2..8).prop_map(|profiles| {
                let mut d = EntityCollection::new(SourceId(0));
                for (i, values) in profiles.iter().enumerate() {
                    d.push_pairs(
                        &format!("p{i}"),
                        values
                            .iter()
                            .enumerate()
                            .map(|(j, v)| (["a", "b", "c"][j % 3], v.as_str())),
                    );
                }
                ErInput::dirty(d)
            })
        }

        proptest! {
            /// Token Blocking's completeness guarantee: any two profiles
            /// sharing at least one token co-occur in at least one block.
            #[test]
            fn prop_shared_token_implies_co_occurrence(input in arb_dirty_input()) {
                use crate::index::ProfileBlockIndex;
                let blocks = TokenBlocking::new().build(&input);
                let index = ProfileBlockIndex::build(&blocks);
                let tokenizer = Tokenizer::new();
                let token_sets: Vec<std::collections::HashSet<String>> = input
                    .iter_profiles()
                    .map(|(_, _, p)| {
                        let mut set = std::collections::HashSet::new();
                        for (_, v) in &p.values {
                            tokenizer.for_each_token(v, |t| {
                                set.insert(t.to_string());
                            });
                        }
                        set
                    })
                    .collect();
                for a in 0..token_sets.len() {
                    for b in a + 1..token_sets.len() {
                        let share = !token_sets[a].is_disjoint(&token_sets[b]);
                        prop_assert_eq!(
                            share,
                            index.co_occur(a as u32, b as u32),
                            "profiles {} and {} share={} but co_occur disagrees", a, b, share
                        );
                    }
                }
            }

            /// Every block is keyed by a token every member actually has.
            #[test]
            fn prop_blocks_are_sound(input in arb_dirty_input()) {
                let blocks = TokenBlocking::new().build(&input);
                let tokenizer = Tokenizer::new();
                for block in blocks.blocks() {
                    for &ProfileId(p) in &block.profiles {
                        let profile = input.profile(ProfileId(p));
                        let mut found = false;
                        for (_, v) in &profile.values {
                            tokenizer.for_each_token(v, |t| {
                                if t == &*block.label {
                                    found = true;
                                }
                            });
                        }
                        prop_assert!(found, "profile {} lacks token {:?}", p, block.label);
                    }
                }
            }
        }
    }

    #[test]
    fn excluded_attributes_produce_no_keys() {
        struct ExcludeAll;
        impl KeyDisambiguator for ExcludeAll {
            fn cluster_of(
                &self,
                _: SourceId,
                _: blast_datamodel::entity::AttributeId,
            ) -> Option<ClusterId> {
                None
            }
            fn cluster_count(&self) -> usize {
                1
            }
        }
        let input = figure1_input();
        let blocks = TokenBlocking::new().build_with(&input, &ExcludeAll);
        assert!(blocks.is_empty());
    }
}
