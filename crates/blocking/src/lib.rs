//! Blocking substrate: redundancy-based block building and the two
//! block-cleaning steps the BLAST workflow applies before meta-blocking.
//!
//! * [`token_blocking`] — schema-agnostic Token Blocking (§3.2), optionally
//!   disambiguating keys with an attribute partitioning (the
//!   "Abram_c1"/"Abram_c2" effect of Fig. 2).
//! * [`standard_blocking`] — schema-based Standard Blocking baseline
//!   (§4.1, "Blast vs. Schema-based Blocking").
//! * [`purging`] — Block Purging: drop blocks whose key is so frequent the
//!   block covers most of the collection (stop-word blocks).
//! * [`filtering`] — Block Filtering: remove each profile from its least
//!   important (largest) blocks.
//! * [`block`] / [`collection`] — bilateral (clean-clean) and unilateral
//!   (dirty) blocks with aggregate-cardinality accounting (‖B‖, §2).
//! * [`index`] — CSR profile → block index shared by filtering and the
//!   blocking graph.

pub mod block;
pub mod collection;
pub mod filtering;
pub mod index;
pub mod key;
pub mod purging;
pub mod standard_blocking;
pub mod stats;
pub mod token_blocking;

pub use block::Block;
pub use collection::BlockCollection;
pub use filtering::BlockFiltering;
pub use index::ProfileBlockIndex;
pub use key::{ClusterId, KeyDisambiguator, SingleCluster};
pub use purging::{BlockPurging, CardinalityPurging};
pub use standard_blocking::{SchemaAlignment, StandardBlocking};
pub use stats::BlockStats;
pub use token_blocking::TokenBlocking;
