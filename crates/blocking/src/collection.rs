//! Block collections: the output of a blocking technique (§2).

use crate::block::Block;
use blast_datamodel::entity::ProfileId;
use blast_datamodel::input::ErInput;

/// A set of blocks over a global profile-id space, with the bookkeeping
/// needed to count comparisons consistently (clean-clean vs dirty).
#[derive(Debug, Clone)]
pub struct BlockCollection {
    blocks: Vec<Block>,
    clean_clean: bool,
    separator: u32,
    total_profiles: u32,
}

impl BlockCollection {
    /// Creates a collection; `separator` and `clean_clean` must describe the
    /// [`ErInput`] the blocks were built from.
    pub fn new(blocks: Vec<Block>, clean_clean: bool, separator: u32, total_profiles: u32) -> Self {
        Self {
            blocks,
            clean_clean,
            separator,
            total_profiles,
        }
    }

    /// Creates an empty collection shaped like `input`.
    pub fn empty_for(input: &ErInput) -> Self {
        Self::new(
            Vec::new(),
            input.is_clean_clean(),
            input.separator(),
            input.total_profiles() as u32,
        )
    }

    /// The blocks.
    #[inline]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks (|B|).
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether this collection was built from a clean-clean input.
    #[inline]
    pub fn is_clean_clean(&self) -> bool {
        self.clean_clean
    }

    /// The global id where the second collection starts.
    #[inline]
    pub fn separator(&self) -> u32 {
        self.separator
    }

    /// Total number of profiles in the underlying input.
    #[inline]
    pub fn total_profiles(&self) -> u32 {
        self.total_profiles
    }

    /// Aggregate cardinality ‖B‖ = Σ ‖bᵢ‖ (§2).
    pub fn aggregate_cardinality(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.cardinality(self.clean_clean))
            .sum()
    }

    /// Comparison cardinality of one block under this collection's setting.
    #[inline]
    pub fn block_cardinality(&self, block: &Block) -> u64 {
        block.cardinality(self.clean_clean)
    }

    /// Replaces the blocks (used by purging/filtering which rebuild them).
    pub fn with_blocks(&self, blocks: Vec<Block>) -> Self {
        Self {
            blocks,
            clean_clean: self.clean_clean,
            separator: self.separator,
            total_profiles: self.total_profiles,
        }
    }

    /// Calls `f` on every comparison of every block (pairs may repeat across
    /// blocks — those are the paper's *redundant* comparisons). Intended for
    /// tests and small collections; evaluation uses the profile→block index
    /// instead.
    pub fn for_each_comparison(&self, mut f: impl FnMut(ProfileId, ProfileId)) {
        for b in &self.blocks {
            b.for_each_comparison(self.clean_clean, &mut f);
        }
    }

    /// Finds a block by label (diagnostics/tests; blocks are not indexed by
    /// label).
    pub fn block_by_label(&self, label: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| &*b.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ClusterId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    fn sample() -> BlockCollection {
        let blocks = vec![
            Block::new("abram", ClusterId::GLUE, ids(&[0, 1, 2, 3]), 2),
            Block::new("ellen", ClusterId::GLUE, ids(&[1, 3]), 2),
        ];
        BlockCollection::new(blocks, true, 2, 4)
    }

    #[test]
    fn aggregate_cardinality_sums_blocks() {
        let c = sample();
        // abram: 2×2 = 4; ellen: 1×1 = 1.
        assert_eq!(c.aggregate_cardinality(), 5);
    }

    #[test]
    fn comparison_enumeration_counts_redundant() {
        let c = sample();
        let mut n = 0;
        c.for_each_comparison(|_, _| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn block_by_label_finds() {
        let c = sample();
        assert!(c.block_by_label("ellen").is_some());
        assert!(c.block_by_label("missing").is_none());
    }

    #[test]
    fn dirty_collection_counts_pairs() {
        let blocks = vec![Block::new("x", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX)];
        let c = BlockCollection::new(blocks, false, 3, 3);
        assert_eq!(c.aggregate_cardinality(), 3);
    }
}
