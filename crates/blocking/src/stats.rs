//! Diagnostics: summary statistics of a block collection.
//!
//! A library user tuning purging/filtering needs to see what their blocks
//! look like before and after each step — sizes, comparison mass, the skew
//! that stop-word keys introduce.

use crate::collection::BlockCollection;

/// Summary statistics of a block collection.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStats {
    /// Number of blocks |B|.
    pub blocks: usize,
    /// Aggregate comparisons ‖B‖.
    pub comparisons: u64,
    /// Total block assignments Σ|b|.
    pub assignments: u64,
    /// Size of the largest block.
    pub max_block_size: usize,
    /// Mean block size.
    pub mean_block_size: f64,
    /// Share of ‖B‖ contributed by the single largest-cardinality block.
    pub top_block_comparison_share: f64,
    /// Average number of blocks per profile (the redundancy the CNP/CEP
    /// budgets derive from).
    pub blocks_per_profile: f64,
}

impl BlockStats {
    /// Computes the statistics of `blocks`.
    pub fn of(blocks: &BlockCollection) -> Self {
        let n = blocks.len();
        let comparisons = blocks.aggregate_cardinality();
        let assignments: u64 = blocks.blocks().iter().map(|b| b.len() as u64).sum();
        let max_block_size = blocks.blocks().iter().map(|b| b.len()).max().unwrap_or(0);
        let top_cardinality = blocks
            .blocks()
            .iter()
            .map(|b| blocks.block_cardinality(b))
            .max()
            .unwrap_or(0);
        Self {
            blocks: n,
            comparisons,
            assignments,
            max_block_size,
            mean_block_size: if n == 0 {
                0.0
            } else {
                assignments as f64 / n as f64
            },
            top_block_comparison_share: if comparisons == 0 {
                0.0
            } else {
                top_cardinality as f64 / comparisons as f64
            },
            blocks_per_profile: if blocks.total_profiles() == 0 {
                0.0
            } else {
                assignments as f64 / blocks.total_profiles() as f64
            },
        }
    }
}

impl std::fmt::Display for BlockStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} blocks, ‖B‖ = {}, Σ|b| = {}, max |b| = {}, mean |b| = {:.1}, \
             top-block share = {:.1}%, blocks/profile = {:.1}",
            self.blocks,
            self.comparisons,
            self.assignments,
            self.max_block_size,
            self.mean_block_size,
            self.top_block_comparison_share * 100.0,
            self.blocks_per_profile
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::key::ClusterId;
    use blast_datamodel::entity::ProfileId;

    fn ids(n: u32) -> Vec<ProfileId> {
        (0..n).map(ProfileId).collect()
    }

    #[test]
    fn computes_summary() {
        let blocks = BlockCollection::new(
            vec![
                Block::new("a", ClusterId::GLUE, ids(2), u32::MAX), // 1 comparison
                Block::new("b", ClusterId::GLUE, ids(4), u32::MAX), // 6 comparisons
            ],
            false,
            10,
            10,
        );
        let s = BlockStats::of(&blocks);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.comparisons, 7);
        assert_eq!(s.assignments, 6);
        assert_eq!(s.max_block_size, 4);
        assert!((s.mean_block_size - 3.0).abs() < 1e-12);
        assert!((s.top_block_comparison_share - 6.0 / 7.0).abs() < 1e-12);
        assert!((s.blocks_per_profile - 0.6).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("2 blocks"), "{text}");
    }

    #[test]
    fn empty_collection() {
        let blocks = BlockCollection::new(vec![], true, 0, 0);
        let s = BlockStats::of(&blocks);
        assert_eq!(s.blocks, 0);
        assert_eq!(s.comparisons, 0);
        assert_eq!(s.mean_block_size, 0.0);
        assert_eq!(s.blocks_per_profile, 0.0);
    }

    /// Purging must visibly reduce the top-block share — the diagnostic this
    /// module exists for.
    #[test]
    fn purging_shows_up_in_stats() {
        use crate::purging::BlockPurging;
        let blocks = BlockCollection::new(
            vec![
                Block::new("stop", ClusterId::GLUE, ids(9), u32::MAX),
                Block::new("name", ClusterId::GLUE, ids(2), u32::MAX),
            ],
            false,
            10,
            10,
        );
        let before = BlockStats::of(&blocks);
        let after = BlockStats::of(&BlockPurging::new().purge(&blocks));
        assert!(after.max_block_size < before.max_block_size);
        assert!(after.comparisons < before.comparisons);
        assert!(after.mean_block_size < before.mean_block_size);
    }
}
