//! CSR profile → block index.
//!
//! Several components need "which blocks contain profile p": Block
//! Filtering, blocking-graph construction (node-centric edge enumeration),
//! and PC evaluation (a ground-truth pair is detected iff the block lists of
//! its profiles intersect). The index is a compressed-sparse-row layout:
//! one offsets vector and one flat block-id vector.

use crate::collection::BlockCollection;

/// CSR index from global profile id to the (sorted) ids of the blocks
/// containing it.
#[derive(Debug, Clone)]
pub struct ProfileBlockIndex {
    offsets: Vec<u32>,
    block_ids: Vec<u32>,
}

impl ProfileBlockIndex {
    /// Builds the index for `blocks`.
    pub fn build(blocks: &BlockCollection) -> Self {
        let n = blocks.total_profiles() as usize;
        let mut counts = vec![0u32; n + 1];
        for b in blocks.blocks() {
            for p in &b.profiles {
                counts[p.index() + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut block_ids = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        for (bid, b) in blocks.blocks().iter().enumerate() {
            for p in &b.profiles {
                let slot = cursor[p.index()];
                block_ids[slot as usize] = bid as u32;
                cursor[p.index()] += 1;
            }
        }
        // Block ids are appended in increasing bid order, so each profile's
        // slice is already sorted.
        Self { offsets, block_ids }
    }

    /// The sorted block ids containing profile `p`.
    #[inline]
    pub fn blocks_of(&self, p: u32) -> &[u32] {
        let start = self.offsets[p as usize] as usize;
        let end = self.offsets[p as usize + 1] as usize;
        &self.block_ids[start..end]
    }

    /// Number of blocks containing `p` (the |Bᵢ| of §3.3.1's contingency
    /// table).
    #[inline]
    pub fn block_count(&self, p: u32) -> u32 {
        self.offsets[p as usize + 1] - self.offsets[p as usize]
    }

    /// Number of profiles covered by the index.
    #[inline]
    pub fn profile_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of block assignments (Σ_b |b|; the quantity the CNP/CEP
    /// cardinality thresholds are derived from).
    #[inline]
    pub fn total_assignments(&self) -> u64 {
        self.block_ids.len() as u64
    }

    /// Size of the intersection of the block lists of `a` and `b`
    /// (the contingency-table n₁₁ = |Bᵢ ∩ Bⱼ|).
    pub fn common_blocks(&self, a: u32, b: u32) -> u32 {
        let (mut x, mut y) = (self.blocks_of(a), self.blocks_of(b));
        if x.len() > y.len() {
            std::mem::swap(&mut x, &mut y);
        }
        let mut n = 0;
        let mut j = 0;
        for &bx in x {
            while j < y.len() && y[j] < bx {
                j += 1;
            }
            if j == y.len() {
                break;
            }
            if y[j] == bx {
                n += 1;
                j += 1;
            }
        }
        n
    }

    /// Whether profiles `a` and `b` co-occur in at least one block (i.e. the
    /// pair is *detected* by the block collection).
    pub fn co_occur(&self, a: u32, b: u32) -> bool {
        self.common_blocks(a, b) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::key::ClusterId;
    use blast_datamodel::entity::ProfileId;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    fn sample() -> BlockCollection {
        let blocks = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 3]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[1, 2]), u32::MAX),
            Block::new("b2", ClusterId::GLUE, ids(&[0, 1, 2, 3]), u32::MAX),
        ];
        BlockCollection::new(blocks, false, 4, 4)
    }

    #[test]
    fn blocks_of_lists_memberships_sorted() {
        let idx = ProfileBlockIndex::build(&sample());
        assert_eq!(idx.blocks_of(0), &[0, 2]);
        assert_eq!(idx.blocks_of(1), &[0, 1, 2]);
        assert_eq!(idx.blocks_of(2), &[1, 2]);
        assert_eq!(idx.blocks_of(3), &[0, 2]);
        assert_eq!(idx.block_count(1), 3);
        assert_eq!(idx.total_assignments(), 9);
    }

    #[test]
    fn common_blocks_intersects() {
        let idx = ProfileBlockIndex::build(&sample());
        assert_eq!(idx.common_blocks(0, 1), 2);
        assert_eq!(idx.common_blocks(0, 2), 1);
        assert!(idx.co_occur(2, 3));
        assert_eq!(idx.common_blocks(0, 3), 2);
    }

    #[test]
    fn profile_without_blocks() {
        let blocks = vec![Block::new("b0", ClusterId::GLUE, ids(&[0, 2]), u32::MAX)];
        let c = BlockCollection::new(blocks, false, 3, 3);
        let idx = ProfileBlockIndex::build(&c);
        assert_eq!(idx.blocks_of(1), &[] as &[u32]);
        assert!(!idx.co_occur(0, 1));
        assert!(idx.co_occur(0, 2));
    }

    proptest! {
        /// common_blocks must agree with a naive set intersection.
        #[test]
        fn prop_common_blocks_matches_naive(
            memberships in proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 0..8), 1..12)
        ) {
            // memberships[b] = set of profiles in block b
            let blocks: Vec<Block> = memberships
                .iter()
                .enumerate()
                .map(|(i, set)| Block::new(
                    format!("b{i}"),
                    ClusterId::GLUE,
                    set.iter().map(|&p| ProfileId(p)).collect(),
                    u32::MAX,
                ))
                .collect();
            let c = BlockCollection::new(blocks, false, 12, 12);
            let idx = ProfileBlockIndex::build(&c);
            for a in 0u32..12 {
                for b in 0u32..12 {
                    let naive = memberships
                        .iter()
                        .filter(|m| m.contains(&a) && m.contains(&b))
                        .count() as u32;
                    prop_assert_eq!(idx.common_blocks(a, b), naive);
                }
            }
        }
    }
}
