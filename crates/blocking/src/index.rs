//! Mutable CSR profile → block index.
//!
//! Several components need "which blocks contain profile p": Block
//! Filtering, blocking-graph construction (node-centric edge enumeration),
//! and PC evaluation (a ground-truth pair is detected iff the block lists of
//! its profiles intersect). The index is a compressed-sparse-row layout —
//! one row descriptor per profile into a shared id arena — that supports
//! **row-level splicing**: [`ProfileBlockIndex::splice_row`] replaces one
//! profile's block list in place, relocating the row through a tombstoned
//! free-list when it outgrows its extent, so the incremental graph snapshot
//! can patch exactly the dirty rows instead of rebuilding the whole index
//! per commit.
//!
//! Row ids are whatever the caller stores — batch construction stores block
//! positions (ascending, so each row is numerically sorted), the
//! incremental snapshot stores stable block *slots* in canonical
//! `(cluster, token)` order. [`ProfileBlockIndex::common_blocks`] /
//! [`ProfileBlockIndex::co_occur`] require rows in **ascending numeric id
//! order** (their merge walks both rows by `<`), so they are only
//! meaningful on batch-built indexes — an incremental snapshot's
//! canonical-order rows are *not* numerically sorted once interning order
//! diverges from token order.

use crate::collection::BlockCollection;
use blast_obs::{names, LazyCounter};

/// Row splices applied across all mutable CSR indexes (process-wide) — the
/// incremental snapshot's patch traffic.
static CSR_SPLICES: LazyCounter = LazyCounter::new(names::CSR_SPLICES);
/// Arena compactions (process-wide) — each is an O(live) repack, so a high
/// rate relative to splices signals tombstone churn.
static CSR_COMPACTIONS: LazyCounter = LazyCounter::new(names::CSR_COMPACTIONS);

/// One row's extent in the arena: `data[start .. start + len]` holds the
/// row, `cap` slots are reserved (the slack is tombstoned capacity).
#[derive(Debug, Clone, Copy, Default)]
struct RowRef {
    start: u32,
    len: u32,
    cap: u32,
}

/// CSR index from global profile id to the ids of the blocks containing it,
/// mutable at row granularity.
#[derive(Debug, Clone)]
pub struct ProfileBlockIndex {
    rows: Vec<RowRef>,
    data: Vec<u32>,
    /// Tombstoned extents of relocated/deleted rows: `(start, cap)`.
    free: Vec<(u32, u32)>,
    /// Σ row lengths (live assignments).
    assignments: u64,
}

impl ProfileBlockIndex {
    /// An empty index with no profiles (rows are added by
    /// [`ProfileBlockIndex::ensure_profiles`]).
    pub fn new() -> Self {
        Self {
            rows: Vec::new(),
            data: Vec::new(),
            free: Vec::new(),
            assignments: 0,
        }
    }

    /// Builds the index for `blocks` (packed, no free extents).
    pub fn build(blocks: &BlockCollection) -> Self {
        let n = blocks.total_profiles() as usize;
        let mut counts = vec![0u32; n + 1];
        for b in blocks.blocks() {
            for p in &b.profiles {
                counts[p.index() + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let total = *offsets.last().unwrap_or(&0);
        let mut data = vec![0u32; total as usize];
        for (bid, b) in blocks.blocks().iter().enumerate() {
            for p in &b.profiles {
                let slot = cursor[p.index()];
                data[slot as usize] = bid as u32;
                cursor[p.index()] += 1;
            }
        }
        // Block ids are appended in increasing bid order, so each profile's
        // row is already sorted.
        let rows = (0..n)
            .map(|p| {
                let start = offsets[p];
                let len = offsets[p + 1] - start;
                RowRef {
                    start,
                    len,
                    cap: len,
                }
            })
            .collect();
        Self {
            rows,
            data,
            free: Vec::new(),
            assignments: total as u64,
        }
    }

    /// The block ids of profile `p`'s row, in the index's row order.
    #[inline]
    pub fn blocks_of(&self, p: u32) -> &[u32] {
        let r = self.rows[p as usize];
        &self.data[r.start as usize..(r.start + r.len) as usize]
    }

    /// Number of blocks containing `p` (the |Bᵢ| of §3.3.1's contingency
    /// table).
    #[inline]
    pub fn block_count(&self, p: u32) -> u32 {
        self.rows[p as usize].len
    }

    /// Number of profiles covered by the index.
    #[inline]
    pub fn profile_count(&self) -> usize {
        self.rows.len()
    }

    /// Total number of block assignments (Σ_b |b|; the quantity the CNP/CEP
    /// cardinality thresholds are derived from).
    #[inline]
    pub fn total_assignments(&self) -> u64 {
        self.assignments
    }

    /// Block assignments per owner shard under round-robin profile
    /// ownership (`shard = p mod shards`) — the CSR slice sizes of the
    /// sharded commit path, and the load figures behind its imbalance
    /// gauge. O(profiles); a diagnostics view, not a commit-path call.
    pub fn shard_assignment_counts(&self, shards: usize) -> Vec<u64> {
        let shards = shards.max(1);
        let mut counts = vec![0u64; shards];
        for (p, row) in self.rows.iter().enumerate() {
            counts[p % shards] += row.len as u64;
        }
        counts
    }

    /// Estimated resident heap footprint in bytes (row refs, the packed
    /// data arena including tombstoned extents, and the free-list).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.rows.capacity() * size_of::<RowRef>()
            + self.data.capacity() * size_of::<u32>()
            + self.free.capacity() * size_of::<(u32, u32)>()
    }

    /// Capacity currently tombstoned in the free-list plus row slack
    /// (diagnostics for the compaction heuristic).
    pub fn dead_capacity(&self) -> u64 {
        self.data.len() as u64 - self.assignments
    }

    /// Grows the index to cover at least `n` profiles (new rows empty).
    pub fn ensure_profiles(&mut self, n: usize) {
        if self.rows.len() < n {
            self.rows.resize(n, RowRef::default());
        }
    }

    /// Replaces profile `p`'s row with `ids` (already in the caller's row
    /// order). Reuses the row's extent when it fits; otherwise tombstones it
    /// onto the free-list and relocates the row (best-fit over the free
    /// extents, else the arena tail). An empty `ids` deletes the row,
    /// freeing its extent.
    pub fn splice_row(&mut self, p: u32, ids: &[u32]) {
        CSR_SPLICES.inc();
        self.ensure_profiles(p as usize + 1);
        let row = self.rows[p as usize];
        self.assignments = self.assignments - row.len as u64 + ids.len() as u64;
        if ids.is_empty() {
            if row.cap > 0 {
                self.free.push((row.start, row.cap));
            }
            self.rows[p as usize] = RowRef::default();
            return;
        }
        if ids.len() as u32 <= row.cap {
            let start = row.start as usize;
            self.data[start..start + ids.len()].copy_from_slice(ids);
            self.rows[p as usize].len = ids.len() as u32;
            return;
        }
        // Relocate: free the old extent, then best-fit from the free-list.
        if row.cap > 0 {
            self.free.push((row.start, row.cap));
        }
        let need = ids.len() as u32;
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, &(_, cap))| cap >= need)
            .min_by_key(|(_, &(_, cap))| cap)
            .map(|(i, _)| i);
        let (start, cap) = match best {
            Some(i) => self.free.swap_remove(i),
            None => {
                // Append with headroom so rows growing by one token do not
                // relocate (and tombstone) on every micro-batch.
                let cap = need.next_power_of_two();
                let start = self.data.len() as u32;
                self.data.resize(self.data.len() + cap as usize, 0);
                (start, cap)
            }
        };
        self.data[start as usize..start as usize + ids.len()].copy_from_slice(ids);
        self.rows[p as usize] = RowRef {
            start,
            len: need,
            cap,
        };
        self.maybe_compact();
    }

    /// Repacks the arena when tombstoned capacity dominates, bounding memory
    /// at ~2× the live assignments.
    fn maybe_compact(&mut self) {
        if (self.data.len() as u64) <= self.assignments * 2 + 1024 {
            return;
        }
        CSR_COMPACTIONS.inc();
        let mut data = Vec::with_capacity(self.assignments as usize);
        for row in &mut self.rows {
            let start = data.len() as u32;
            data.extend_from_slice(&self.data[row.start as usize..(row.start + row.len) as usize]);
            *row = RowRef {
                start,
                len: row.len,
                cap: row.len,
            };
        }
        self.data = data;
        self.free.clear();
    }

    /// Size of the intersection of the block lists of `a` and `b`
    /// (the contingency-table n₁₁ = |Bᵢ ∩ Bⱼ|). Requires both rows to be in
    /// ascending numeric id order — batch-built indexes always are; spliced
    /// canonical-order rows generally are **not** (see the module docs).
    pub fn common_blocks(&self, a: u32, b: u32) -> u32 {
        let (mut x, mut y) = (self.blocks_of(a), self.blocks_of(b));
        if x.len() > y.len() {
            std::mem::swap(&mut x, &mut y);
        }
        let mut n = 0;
        let mut j = 0;
        for &bx in x {
            while j < y.len() && y[j] < bx {
                j += 1;
            }
            if j == y.len() {
                break;
            }
            if y[j] == bx {
                n += 1;
                j += 1;
            }
        }
        n
    }

    /// Whether profiles `a` and `b` co-occur in at least one block (i.e. the
    /// pair is *detected* by the block collection).
    pub fn co_occur(&self, a: u32, b: u32) -> bool {
        self.common_blocks(a, b) > 0
    }
}

impl Default for ProfileBlockIndex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::key::ClusterId;
    use blast_datamodel::entity::ProfileId;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    fn sample() -> BlockCollection {
        let blocks = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 3]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[1, 2]), u32::MAX),
            Block::new("b2", ClusterId::GLUE, ids(&[0, 1, 2, 3]), u32::MAX),
        ];
        BlockCollection::new(blocks, false, 4, 4)
    }

    #[test]
    fn blocks_of_lists_memberships_sorted() {
        let idx = ProfileBlockIndex::build(&sample());
        assert_eq!(idx.blocks_of(0), &[0, 2]);
        assert_eq!(idx.blocks_of(1), &[0, 1, 2]);
        assert_eq!(idx.blocks_of(2), &[1, 2]);
        assert_eq!(idx.blocks_of(3), &[0, 2]);
        assert_eq!(idx.block_count(1), 3);
        assert_eq!(idx.total_assignments(), 9);
    }

    #[test]
    fn common_blocks_intersects() {
        let idx = ProfileBlockIndex::build(&sample());
        assert_eq!(idx.common_blocks(0, 1), 2);
        assert_eq!(idx.common_blocks(0, 2), 1);
        assert!(idx.co_occur(2, 3));
        assert_eq!(idx.common_blocks(0, 3), 2);
    }

    #[test]
    fn profile_without_blocks() {
        let blocks = vec![Block::new("b0", ClusterId::GLUE, ids(&[0, 2]), u32::MAX)];
        let c = BlockCollection::new(blocks, false, 3, 3);
        let idx = ProfileBlockIndex::build(&c);
        assert_eq!(idx.blocks_of(1), &[] as &[u32]);
        assert!(!idx.co_occur(0, 1));
        assert!(idx.co_occur(0, 2));
    }

    #[test]
    fn splice_grows_shrinks_and_deletes_rows() {
        let mut idx = ProfileBlockIndex::new();
        idx.splice_row(0, &[2, 5, 7]);
        idx.splice_row(1, &[5]);
        assert_eq!(idx.blocks_of(0), &[2, 5, 7]);
        assert_eq!(idx.blocks_of(1), &[5]);
        assert_eq!(idx.total_assignments(), 4);
        // In-place shrink.
        idx.splice_row(0, &[2, 7]);
        assert_eq!(idx.blocks_of(0), &[2, 7]);
        assert_eq!(idx.total_assignments(), 3);
        // Growth beyond the extent relocates and tombstones.
        idx.splice_row(1, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(idx.blocks_of(1), &[1, 2, 3, 4, 5, 6]);
        assert_eq!(idx.blocks_of(0), &[2, 7], "other rows untouched");
        // Deletion frees the extent for reuse.
        idx.splice_row(1, &[]);
        assert_eq!(idx.blocks_of(1), &[] as &[u32]);
        assert_eq!(idx.block_count(1), 0);
        let dead_before = idx.dead_capacity();
        idx.splice_row(2, &[9, 10, 11]);
        assert!(
            idx.dead_capacity() < dead_before + 3,
            "freed extent reused for the new row"
        );
        assert_eq!(idx.blocks_of(2), &[9, 10, 11]);
    }

    #[test]
    fn compaction_bounds_dead_capacity() {
        let mut idx = ProfileBlockIndex::new();
        // Repeatedly rewrite a handful of rows with growing lists to force
        // relocations, then shrink them, leaving holes.
        for round in 1u32..40 {
            for p in 0..4u32 {
                let ids: Vec<u32> = (0..round + p).collect();
                idx.splice_row(p, &ids);
            }
        }
        for p in 0..4u32 {
            idx.splice_row(p, &[1, 2]);
        }
        idx.splice_row(9, &(0..2048).collect::<Vec<u32>>());
        assert!(
            idx.dead_capacity() <= idx.total_assignments() * 2 + 1024,
            "dead {} vs assignments {}",
            idx.dead_capacity(),
            idx.total_assignments()
        );
        for p in 0..4u32 {
            assert_eq!(idx.blocks_of(p), &[1, 2], "row {p} survives compaction");
        }
    }

    proptest! {
        /// common_blocks must agree with a naive set intersection.
        #[test]
        fn prop_common_blocks_matches_naive(
            memberships in proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 0..8), 1..12)
        ) {
            // memberships[b] = set of profiles in block b
            let blocks: Vec<Block> = memberships
                .iter()
                .enumerate()
                .map(|(i, set)| Block::new(
                    format!("b{i}"),
                    ClusterId::GLUE,
                    set.iter().map(|&p| ProfileId(p)).collect(),
                    u32::MAX,
                ))
                .collect();
            let c = BlockCollection::new(blocks, false, 12, 12);
            let idx = ProfileBlockIndex::build(&c);
            for a in 0u32..12 {
                for b in 0u32..12 {
                    let naive = memberships
                        .iter()
                        .filter(|m| m.contains(&a) && m.contains(&b))
                        .count() as u32;
                    prop_assert_eq!(idx.common_blocks(a, b), naive);
                }
            }
        }

        /// A row spliced through arbitrary rewrite sequences always reads
        /// back the latest content, and the assignment count stays exact.
        #[test]
        fn prop_splice_reads_back(
            writes in proptest::collection::vec(
                (0u32..6, proptest::collection::vec(0u32..50, 0..12)), 1..40)
        ) {
            let mut idx = ProfileBlockIndex::new();
            let mut mirror: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
            for (p, ids) in &writes {
                idx.splice_row(*p, ids);
                mirror.insert(*p, ids.clone());
            }
            let expect_total: u64 = mirror.values().map(|v| v.len() as u64).sum();
            prop_assert_eq!(idx.total_assignments(), expect_total);
            for (p, ids) in &mirror {
                prop_assert_eq!(idx.blocks_of(*p), ids.as_slice());
            }
        }
    }
}
