//! Block Filtering (§4.1, following \[20\]).
//!
//! Block Filtering restructures a block collection by removing each profile
//! from the blocks that are *least important for it*: a profile's blocks are
//! ranked by comparison cardinality (smaller blocks are more distinctive),
//! and the profile is kept only in the top `ratio` fraction. The paper
//! filters out the 20 % least significant blocks per profile (ratio = 0.8),
//! reporting that this "almost does not affect PC".

use crate::block::Block;
use crate::collection::BlockCollection;
use crate::index::ProfileBlockIndex;

/// Removes each profile from its largest (least significant) blocks.
#[derive(Debug, Clone)]
pub struct BlockFiltering {
    ratio: f64,
}

impl Default for BlockFiltering {
    /// The paper's configuration: keep each profile in the 80 % smallest of
    /// its blocks.
    fn default() -> Self {
        Self { ratio: 0.8 }
    }
}

impl BlockFiltering {
    /// Filtering with the paper's ratio (0.8).
    pub fn new() -> Self {
        Self::default()
    }

    /// Filtering keeping `ratio` of each profile's blocks (in `(0, 1]`).
    pub fn with_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        Self { ratio }
    }

    /// Returns the filtered collection. Block order is preserved; blocks
    /// that no longer imply any comparison are dropped.
    pub fn filter(&self, blocks: &BlockCollection) -> BlockCollection {
        let index = ProfileBlockIndex::build(blocks);
        let clean_clean = blocks.is_clean_clean();

        // Pre-compute each block's cardinality once.
        let cardinalities: Vec<u64> = blocks
            .blocks()
            .iter()
            .map(|b| b.cardinality(clean_clean))
            .collect();

        // For every profile, rank its blocks by (cardinality asc, id asc)
        // and schedule removal from the blocks beyond the kept prefix.
        let mut removals: Vec<Vec<u32>> = vec![Vec::new(); blocks.len()];
        let mut ranked: Vec<u32> = Vec::new();
        for p in 0..index.profile_count() as u32 {
            let bs = index.blocks_of(p);
            if bs.is_empty() {
                continue;
            }
            let keep = ((bs.len() as f64) * self.ratio).ceil() as usize;
            if keep >= bs.len() {
                continue;
            }
            ranked.clear();
            ranked.extend_from_slice(bs);
            ranked.sort_unstable_by_key(|&b| (cardinalities[b as usize], b));
            for &b in &ranked[keep..] {
                removals[b as usize].push(p);
            }
        }

        let kept: Vec<Block> = blocks
            .blocks()
            .iter()
            .enumerate()
            .filter_map(|(bid, block)| {
                let to_remove = &mut removals[bid];
                if to_remove.is_empty() {
                    return Some(block.clone());
                }
                to_remove.sort_unstable();
                let profiles: Vec<_> = block
                    .profiles
                    .iter()
                    .filter(|p| to_remove.binary_search(&p.0).is_err())
                    .copied()
                    .collect();
                let rebuilt = Block::new(
                    block.label.clone(),
                    block.cluster,
                    profiles,
                    blocks.separator(),
                );
                rebuilt.is_valid(clean_clean).then_some(rebuilt)
            })
            .collect();

        blocks.with_blocks(kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::ClusterId;
    use blast_datamodel::entity::ProfileId;

    fn ids(v: &[u32]) -> Vec<ProfileId> {
        v.iter().map(|&i| ProfileId(i)).collect()
    }

    #[test]
    fn removes_profile_from_largest_blocks() {
        // Profile 0 sits in 5 blocks of growing size; ratio 0.8 keeps it in
        // the 4 smallest.
        let blocks = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
            Block::new("b2", ClusterId::GLUE, ids(&[0, 1, 2, 3]), u32::MAX),
            Block::new("b3", ClusterId::GLUE, ids(&[0, 1, 2, 3, 4]), u32::MAX),
            Block::new("b4", ClusterId::GLUE, ids(&[0, 1, 2, 3, 4, 5]), u32::MAX),
        ];
        let c = BlockCollection::new(blocks, false, 6, 6);
        let filtered = BlockFiltering::new().filter(&c);
        let b4 = filtered.block_by_label("b4").unwrap();
        // All 6 profiles have b4 as their largest block, and all have ≥2
        // blocks except 4 and 5.
        assert!(!b4.profiles.contains(&ProfileId(0)));
        assert!(!b4.profiles.contains(&ProfileId(1)));
        // Profile 5 has a single block → kept everywhere.
        assert!(b4.profiles.contains(&ProfileId(5)));
    }

    #[test]
    fn ratio_one_is_identity() {
        let blocks = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[1, 2, 3]), u32::MAX),
        ];
        let c = BlockCollection::new(blocks, false, 4, 4);
        let filtered = BlockFiltering::with_ratio(1.0).filter(&c);
        assert_eq!(filtered.aggregate_cardinality(), c.aggregate_cardinality());
        assert_eq!(filtered.len(), c.len());
    }

    #[test]
    fn filtering_never_adds_comparisons() {
        let blocks = vec![
            Block::new("b0", ClusterId::GLUE, ids(&[0, 1, 2, 3, 4]), u32::MAX),
            Block::new("b1", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("b2", ClusterId::GLUE, ids(&[2, 3]), u32::MAX),
        ];
        let c = BlockCollection::new(blocks, false, 5, 5);
        let filtered = BlockFiltering::with_ratio(0.5).filter(&c);
        assert!(filtered.aggregate_cardinality() <= c.aggregate_cardinality());
        // Filtering only removes profiles from blocks; every surviving
        // (block label, profile) membership existed before.
        for b in filtered.blocks() {
            let orig = c.block_by_label(&b.label).unwrap();
            for p in &b.profiles {
                assert!(orig.profiles.contains(p));
            }
        }
    }

    #[test]
    fn invalid_blocks_dropped_after_filtering() {
        // b_big loses both members (each has 2 smaller blocks), leaving an
        // empty/singleton block that must disappear.
        let blocks = vec![
            Block::new("s1", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("s2", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("s3", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("s4", ClusterId::GLUE, ids(&[0, 1]), u32::MAX),
            Block::new("big", ClusterId::GLUE, ids(&[0, 1, 2]), u32::MAX),
        ];
        let c = BlockCollection::new(blocks, false, 3, 3);
        let filtered = BlockFiltering::new().filter(&c);
        // 5 blocks × 0.8 = 4 kept per profile 0/1 → both removed from "big";
        // profile 2 alone cannot form a comparison.
        assert!(filtered.block_by_label("big").is_none());
    }

    #[test]
    fn clean_clean_split_recomputed() {
        let blocks = vec![
            Block::new("k", ClusterId::GLUE, ids(&[0, 1, 2, 3]), 2),
            Block::new("s1", ClusterId::GLUE, ids(&[0, 2]), 2),
            Block::new("s2", ClusterId::GLUE, ids(&[0, 2]), 2),
            Block::new("s3", ClusterId::GLUE, ids(&[0, 3]), 2),
            Block::new("s4", ClusterId::GLUE, ids(&[0, 3]), 2),
        ];
        let c = BlockCollection::new(blocks, true, 2, 4);
        let filtered = BlockFiltering::new().filter(&c);
        for b in filtered.blocks() {
            let split = b.profiles.partition_point(|p| p.0 < 2) as u32;
            assert_eq!(b.split, split, "split must stay consistent");
        }
    }
}
