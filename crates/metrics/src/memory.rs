//! Process-memory probes for the memory-diet benchmarks.
//!
//! Reads the kernel's accounting from `/proc/self/status` (Linux): `VmRSS`
//! is the current resident set, `VmHWM` its high-water mark — the peak the
//! process ever held, which is what a "does 10⁶ profiles fit" budget
//! actually constrains. On platforms without procfs the probes return
//! `None` and the benchmark reports only the structure-level estimates.

/// Current resident set size in bytes, if the platform exposes it.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_kb("VmRSS:").map(|kb| kb * 1024)
}

/// Peak resident set size (high-water mark) in bytes, if available.
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_kb("VmHWM:").map(|kb| kb * 1024)
}

fn read_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kb(&status, field)
}

/// Extracts a `kB`-denominated field from `/proc/self/status` content.
/// Lines look like `VmHWM:     123456 kB`.
fn parse_status_kb(status: &str, field: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|line| line.strip_prefix(field))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|num| num.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_fields() {
        let status = "Name:\tblast\nVmPeak:\t  999 kB\nVmRSS:\t  2048 kB\nVmHWM:\t 4096 kB\n";
        assert_eq!(parse_status_kb(status, "VmRSS:"), Some(2048));
        assert_eq!(parse_status_kb(status, "VmHWM:"), Some(4096));
        assert_eq!(parse_status_kb(status, "VmSwap:"), None);
    }

    #[test]
    fn rejects_malformed_values() {
        assert_eq!(parse_status_kb("VmRSS:\tnot-a-number kB\n", "VmRSS:"), None);
        assert_eq!(parse_status_kb("", "VmRSS:"), None);
    }

    #[test]
    fn live_probe_is_sane_on_linux() {
        if let Some(rss) = current_rss_bytes() {
            let peak = peak_rss_bytes().expect("VmHWM accompanies VmRSS");
            assert!(rss > 0);
            assert!(peak >= rss / 2, "HWM should be near or above current RSS");
        }
    }
}
