//! Process-memory probes for the memory-diet benchmarks.
//!
//! Reads the kernel's accounting from `/proc/self/status` (Linux): `VmRSS`
//! is the current resident set, `VmHWM` its high-water mark — the peak the
//! process ever held, which is what a "does 10⁶ profiles fit" budget
//! actually constrains. On platforms without procfs the probes return
//! `None` and the benchmark reports only the structure-level estimates.

/// Current resident set size in bytes, if the platform exposes it.
pub fn current_rss_bytes() -> Option<u64> {
    read_status_kb("VmRSS:").map(|kb| kb * 1024)
}

/// Peak resident set size (high-water mark) in bytes, if available.
pub fn peak_rss_bytes() -> Option<u64> {
    read_status_kb("VmHWM:").map(|kb| kb * 1024)
}

/// Resets the peak-RSS high-water mark (`VmHWM`) to the current RSS by
/// writing `5` to `/proc/self/clear_refs`, so per-phase peaks can be
/// measured in one process. Returns whether the reset took: `false` off
/// Linux or when the kernel rejects the write — callers must then treat a
/// subsequent [`peak_rss_bytes`] as a process-lifetime peak, not a phase
/// peak.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

fn read_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kb(&status, field)
}

/// Extracts a `kB`-denominated field from `/proc/self/status` content.
/// Lines look like `VmHWM:     123456 kB`. Degrades to `None` — never a
/// wrong number — on anything unexpected: a missing line, a non-numeric
/// value, or a unit other than the `kB` the kernel has always printed (if
/// that ever changes, silently treating the value as kB would mis-scale
/// every RSS figure the memory benchmark records).
fn parse_status_kb(status: &str, field: &str) -> Option<u64> {
    let rest = status.lines().find_map(|line| line.strip_prefix(field))?;
    let mut tokens = rest.split_whitespace();
    let value: u64 = tokens.next()?.parse().ok()?;
    match tokens.next() {
        Some("kB") => Some(value),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_fields() {
        let status = "Name:\tblast\nVmPeak:\t  999 kB\nVmRSS:\t  2048 kB\nVmHWM:\t 4096 kB\n";
        assert_eq!(parse_status_kb(status, "VmRSS:"), Some(2048));
        assert_eq!(parse_status_kb(status, "VmHWM:"), Some(4096));
        assert_eq!(parse_status_kb(status, "VmSwap:"), None);
    }

    #[test]
    fn rejects_malformed_values() {
        assert_eq!(parse_status_kb("VmRSS:\tnot-a-number kB\n", "VmRSS:"), None);
        assert_eq!(parse_status_kb("", "VmRSS:"), None);
    }

    #[test]
    fn missing_lines_degrade_to_none() {
        // A kernel/status format without the field at all.
        let status = "Name:\tblast\nState:\tR (running)\nThreads:\t4\n";
        assert_eq!(parse_status_kb(status, "VmRSS:"), None);
        assert_eq!(parse_status_kb(status, "VmHWM:"), None);
    }

    #[test]
    fn unexpected_units_degrade_to_none() {
        // A unit change must not be silently mis-scaled as kB.
        assert_eq!(parse_status_kb("VmRSS:\t  2048 mB\n", "VmRSS:"), None);
        assert_eq!(parse_status_kb("VmRSS:\t  2048 KB\n", "VmRSS:"), None);
        // ... and a missing unit token likewise.
        assert_eq!(parse_status_kb("VmRSS:\t  2048\n", "VmRSS:"), None);
        // Trailing tokens beyond the unit are tolerated.
        assert_eq!(
            parse_status_kb("VmRSS:\t 2048 kB extra\n", "VmRSS:"),
            Some(2048)
        );
    }

    #[test]
    fn live_probe_is_sane_on_linux() {
        if let Some(rss) = current_rss_bytes() {
            let peak = peak_rss_bytes().expect("VmHWM accompanies VmRSS");
            assert!(rss > 0);
            assert!(peak >= rss / 2, "HWM should be near or above current RSS");
        }
    }
}
