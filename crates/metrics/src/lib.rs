//! Blocking-quality metrics (§2): Pair Completeness, Pair Quality, F1, and
//! the Δ comparisons used throughout the evaluation (§4).
//!
//! PC and PQ are *surrogates* of recall and precision for block collections:
//! PC(B) = |D_B|/|D_E| (fraction of known duplicates co-occurring in ≥1
//! block), PQ(B) = |D_B|/‖B‖ (useful fraction of the comparisons). Both are
//! computed without enumerating comparisons: PC intersects the block lists
//! of each ground-truth pair (CSR index), ‖B‖ is arithmetic.

pub mod delta;
pub mod memory;
pub mod quality;
pub mod report;
pub mod timing;

pub use delta::{delta_pc, delta_pq};
pub use memory::{current_rss_bytes, peak_rss_bytes, reset_peak_rss};
pub use quality::{evaluate_blocks, evaluate_pairs, BlockQuality};
pub use report::{fmt_card, fmt_pct};
pub use timing::Stopwatch;
