//! The Δ comparisons of §4: relative change of PC/PQ between a baseline
//! block collection B and a compared collection B′.
//!
//! ΔPC(B,B′) = (PC(B′) − PC(B)) / PC(B); positive values mean B′ (by the
//! paper's convention, BLAST) performs better.

/// Relative PC change from `baseline` to `compared`.
pub fn delta_pc(baseline: f64, compared: f64) -> f64 {
    if baseline == 0.0 {
        if compared == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (compared - baseline) / baseline
    }
}

/// Relative PQ change from `baseline` to `compared`.
pub fn delta_pq(baseline: f64, compared: f64) -> f64 {
    delta_pc(baseline, compared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_when_compared_wins() {
        assert!((delta_pc(0.5, 0.6) - 0.2).abs() < 1e-12);
        assert!(delta_pq(0.001, 0.1) > 0.0);
    }

    #[test]
    fn negative_when_compared_loses() {
        // The paper: ΔPC in the range (0 %, −6 %) for all datasets.
        let d = delta_pc(1.0, 0.94);
        assert!((d + 0.06).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_edge_cases() {
        assert_eq!(delta_pc(0.0, 0.0), 0.0);
        assert_eq!(delta_pc(0.0, 0.5), f64::INFINITY);
    }

    #[test]
    fn paper_scale_pq_gain() {
        // "+14,511 %" style gains: PQ 0.18 % → 26.3 %.
        let d = delta_pq(0.0018, 0.263);
        assert!(d > 100.0, "two-order-of-magnitude gain, Δ = {d}");
    }
}
