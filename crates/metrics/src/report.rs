//! Small formatting helpers so the experiment binaries print tables in the
//! paper's style.

/// Formats a ratio as a percentage with `digits` decimals (e.g. `99.6`).
pub fn fmt_pct(value: f64, digits: usize) -> String {
    format!("{:.*}", digits, value * 100.0)
}

/// Formats a comparison cardinality in the paper's scientific style
/// (`6.7e6` for 6.7·10⁶); exact below 10 000.
pub fn fmt_card(value: u64) -> String {
    if value < 10_000 {
        value.to_string()
    } else {
        let exp = (value as f64).log10().floor() as i32;
        let mantissa = value as f64 / 10f64.powi(exp);
        format!("{mantissa:.1}e{exp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        assert_eq!(fmt_pct(0.996, 1), "99.6");
        assert_eq!(fmt_pct(0.052, 1), "5.2");
        assert_eq!(fmt_pct(0.00034, 4), "0.0340");
    }

    #[test]
    fn cardinalities() {
        assert_eq!(fmt_card(42), "42");
        assert_eq!(fmt_card(6_700_000), "6.7e6");
        assert_eq!(fmt_card(13_000_000_000), "1.3e10");
    }

    #[test]
    fn boundary_between_exact_and_scientific() {
        assert_eq!(fmt_card(9_999), "9999");
        assert_eq!(fmt_card(10_000), "1.0e4");
    }
}
