//! Wall-clock measurement of the overhead time tₒ reported in Tables 4–7.

use std::time::{Duration, Instant};

/// A simple stopwatch accumulating named phases.
#[derive(Debug, Clone, Default)]
pub struct Stopwatch {
    phases: Vec<(String, Duration)>,
}

impl Stopwatch {
    /// Creates an empty stopwatch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, recording it under `name`, and returns its result.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.phases.push((name.to_string(), start.elapsed()));
        out
    }

    /// Records an externally measured duration.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        self.phases.push((name.to_string(), elapsed));
    }

    /// Total time across all phases (the tₒ column).
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Duration of one phase (the last record with that name).
    pub fn phase(&self, name: &str) -> Option<Duration> {
        self.phases
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
    }

    /// All recorded phases in order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Total in seconds, for table printing.
    pub fn total_secs(&self) -> f64 {
        self.total().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_phases_and_totals() {
        let mut sw = Stopwatch::new();
        let x = sw.time("work", || 21 * 2);
        assert_eq!(x, 42);
        sw.record("extra", Duration::from_millis(5));
        assert!(sw.phase("work").is_some());
        assert_eq!(sw.phase("extra"), Some(Duration::from_millis(5)));
        assert!(sw.total() >= Duration::from_millis(5));
        assert_eq!(sw.phases().len(), 2);
    }

    #[test]
    fn missing_phase_is_none() {
        let sw = Stopwatch::new();
        assert!(sw.phase("nope").is_none());
        assert_eq!(sw.total(), Duration::ZERO);
    }
}
